"""repro — distributed MaxIS approximation (Kawarabayashi–Khoury–Schild–
Schwartzman, PODC 2020) on an executable CONGEST/LOCAL simulator.

Quickstart — the blessed entry point is :func:`repro.solve`::

    from repro import gnp, uniform_weights, solve

    graph = uniform_weights(gnp(500, 0.02, seed=1), 1, 100, seed=2)
    report = solve(graph, "thm2", seed=3, eps=0.5)
    print(report.size, report.rounds, report.weight)

The same request served over HTTP (``repro serve``) returns the same
canonical report, byte for byte.  Algorithm pipelines remain importable
directly (``theorem2_maxis`` et al.) for callers that want the raw
:class:`~repro.results.AlgorithmResult`.

Package map:

* :mod:`repro.simulator` — the CONGEST/LOCAL round simulator;
* :mod:`repro.graphs` — graphs, generators, arboricity;
* :mod:`repro.mis` — MIS black boxes (Luby, Ghaffari, deterministic);
* :mod:`repro.core` — the paper's algorithms (Theorems 1, 2, 3, 5, 8, 9,
  10, 12) plus baselines, an exact solver, and verification;
* :mod:`repro.lowerbound` — the Theorem 4 reduction (Figure 1);
* :mod:`repro.analysis` — concentration bounds and trial statistics;
* :mod:`repro.bench` — the E1–E13 experiment suite;
* :mod:`repro.api` — the stable solve/report contract (schema v1);
* :mod:`repro.service` — the solver daemon behind ``repro serve``.
"""

from repro._version import __version__
from repro.results import AlgorithmResult

# The blessed public surface: one call, one versioned contract, shared
# verbatim by the Python facade and the HTTP service.
from repro.api import (
    SolveReport,
    SolveRequest,
    solve,
    sweep,
)
from repro.registry import algorithm_registry

# Re-export the most used surface at the top level.
from repro.graphs import (
    WeightedGraph,
    cycle,
    cycle_of_cliques,
    gnp,
    grid_2d,
    integer_weights,
    random_regular,
    random_tree,
    uniform_weights,
    unit_weights,
)
from repro.core import (
    bar_yehuda_maxis,
    boppana_is,
    certify_fraction_bound,
    certify_ratio,
    exact_max_weight_is,
    good_nodes_approx,
    greedy_maxis,
    low_arboricity_maxis,
    low_degree_maxis,
    sparsified_approx,
    theorem1_maxis,
    theorem2_maxis,
)
from repro.mis import ghaffari_mis, local_minima_mis, luby_mis
from repro.simulator import BandwidthPolicy, CommunicationModel

__all__ = [
    "__version__",
    "AlgorithmResult",
    "SolveReport",
    "SolveRequest",
    "algorithm_registry",
    "solve",
    "sweep",
    "WeightedGraph",
    "cycle",
    "cycle_of_cliques",
    "gnp",
    "grid_2d",
    "integer_weights",
    "random_regular",
    "random_tree",
    "uniform_weights",
    "unit_weights",
    "theorem1_maxis",
    "theorem2_maxis",
    "low_arboricity_maxis",
    "low_degree_maxis",
    "good_nodes_approx",
    "sparsified_approx",
    "boppana_is",
    "bar_yehuda_maxis",
    "greedy_maxis",
    "exact_max_weight_is",
    "certify_fraction_bound",
    "certify_ratio",
    "luby_mis",
    "ghaffari_mis",
    "local_minima_mis",
    "BandwidthPolicy",
    "CommunicationModel",
]
