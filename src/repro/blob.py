"""Aligned binary container for named numpy arrays.

This is the one low-level format shared by the zero-copy graph plane:
the binary graph codec (``repro.graphs.io``), the content-addressed
graph store (``repro.graphs.store``), and the binary tier of the batch
disk cache all serialize through :func:`pack` / :func:`unpack`.

Layout (all integers little-endian)::

    offset 0   magic       8 bytes   b"REPROBLB"
    offset 8   version     u32       currently 1
    offset 12  header_len  u32       byte length of the JSON header
    offset 16  header      JSON      {"meta": {...}, "arrays": [...]}
    ...        padding     zeros     up to the first 64-byte boundary
    ...        array data  raw       each array starts 64-byte aligned

Each ``arrays`` entry records ``{"name", "dtype", "shape", "offset",
"nbytes"}`` with ``offset`` absolute from the start of the buffer.
Arrays are stored as C-contiguous little-endian raw bytes, so
:func:`unpack` can hand back zero-copy ``np.frombuffer`` views into
*any* buffer-protocol object — ``bytes``, ``mmap.mmap``, or a
``multiprocessing.shared_memory`` buffer.  Views over writable buffers
are marked read-only: every consumer of the graph plane treats the
arrays as immutable, and a shared arena must never be scribbled on.

The 64-byte alignment matches cache lines (and exceeds every numpy
dtype alignment requirement), so attached views are as fast to scan as
freshly allocated arrays.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["pack", "unpack", "BlobFormatError", "MAGIC", "VERSION"]

MAGIC = b"REPROBLB"
VERSION = 1
_ALIGN = 64


class BlobFormatError(ValueError):
    """Raised when a buffer is not a valid blob container (torn, truncated,
    foreign magic, or an unsupported version)."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack(meta: Mapping[str, Any],
         arrays: Sequence[Tuple[str, np.ndarray]]) -> bytes:
    """Serialize ``meta`` (JSON-compatible) plus named arrays into one blob.

    Array order is preserved; names must be unique.  Arrays are converted
    to C-contiguous little-endian before writing, so the on-disk bytes are
    platform-independent.
    """
    prepared = []
    seen = set()
    for name, arr in arrays:
        if name in seen:
            raise ValueError(f"duplicate array name {name!r}")
        seen.add(name)
        a = np.ascontiguousarray(arr)
        le = a.dtype.newbyteorder("<")
        if a.dtype != le:
            a = a.astype(le)
        prepared.append((name, a))

    # Two-pass header: entry offsets depend on the header length, which
    # depends on the digits in the offsets.  Fixed-width offset fields
    # would also work, but recomputing converges immediately because the
    # second pass only shrinks/grows by a few digits and is re-padded.
    def build_header(entries):
        doc = {"meta": dict(meta), "arrays": entries}
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    entries = [
        {"name": name, "dtype": a.dtype.str, "shape": list(a.shape),
         "offset": 0, "nbytes": int(a.nbytes)}
        for name, a in prepared
    ]
    header = build_header(entries)
    while True:
        data_start = _align(16 + len(header))
        offset = data_start
        for entry, (_, a) in zip(entries, prepared):
            entry["offset"] = offset
            offset = _align(offset + a.nbytes)
        new_header = build_header(entries)
        if len(new_header) == len(header):
            header = new_header
            break
        header = new_header

    total = offset if prepared else data_start
    out = bytearray(total)
    out[0:8] = MAGIC
    out[8:12] = VERSION.to_bytes(4, "little")
    out[12:16] = len(header).to_bytes(4, "little")
    out[16:16 + len(header)] = header
    for entry, (_, a) in zip(entries, prepared):
        start = entry["offset"]
        out[start:start + a.nbytes] = a.tobytes()
    return bytes(out)


def unpack(buf) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Parse a blob, returning ``(meta, {name: array})``.

    The arrays are zero-copy, read-only views into ``buf`` (which may be
    ``bytes``, an ``mmap``, or a shared-memory buffer) — the caller must
    keep the underlying buffer alive as long as the views are in use.
    Raises :class:`BlobFormatError` on anything malformed.
    """
    view = memoryview(buf)
    try:
        if len(view) < 16 or bytes(view[0:8]) != MAGIC:
            raise BlobFormatError("bad magic: not a repro blob")
        version = int.from_bytes(view[8:12], "little")
        if version != VERSION:
            raise BlobFormatError(f"unsupported blob version {version}")
        header_len = int.from_bytes(view[12:16], "little")
        if 16 + header_len > len(view):
            raise BlobFormatError("truncated blob header")
        try:
            doc = json.loads(bytes(view[16:16 + header_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BlobFormatError(f"corrupt blob header: {exc}") from exc
        if not isinstance(doc, dict) or "arrays" not in doc:
            raise BlobFormatError("blob header missing arrays")
        out: Dict[str, np.ndarray] = {}
        for entry in doc["arrays"]:
            try:
                name = entry["name"]
                dtype = np.dtype(entry["dtype"])
                shape = tuple(int(s) for s in entry["shape"])
                offset = int(entry["offset"])
                nbytes = int(entry["nbytes"])
            except (KeyError, TypeError, ValueError) as exc:
                raise BlobFormatError(f"corrupt array entry: {exc}") from exc
            if offset < 0 or offset + nbytes > len(view):
                raise BlobFormatError(
                    f"array {name!r} extends past end of blob")
            arr = np.frombuffer(view, dtype=dtype, count=nbytes // dtype.itemsize,
                                offset=offset).reshape(shape)
            arr.flags.writeable = False
            out[name] = arr
        return dict(doc.get("meta", {})), out
    finally:
        # memoryview goes out of scope naturally; numpy views keep their
        # own references to the underlying buffer.
        del view
