"""The algorithm registry: one stable catalogue of named solvers.

Every entry point that names an algorithm — ``repro.api.solve``, the
batch engine, the solver service, the CLI — resolves the name here, so
a registry name is a stable public identifier: it appears in cache
keys, sweep cells, service requests, and benchmark baselines.

Every registry entry is called with the uniform batch signature::

    fn(graph, seed=..., policy=..., **params) -> AlgorithmResult

Imports are local so that importing :mod:`repro.registry` (which the
simulator package does) never pulls in the whole algorithm stack.

.. note::
   This module is the canonical home of :func:`algorithm_registry`
   (moved from ``repro.simulator.batch``, which keeps a
   ``DeprecationWarning`` shim).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

__all__ = ["AlgorithmFn", "algorithm_registry"]

AlgorithmFn = Callable[..., Any]  # (graph, *, seed, ...) -> AlgorithmResult


def algorithm_registry() -> Dict[str, AlgorithmFn]:
    """Named algorithm wrappers with the uniform batch signature.

    Every entry is called as ``fn(graph, seed=..., policy=..., **params)``.
    Workers of the batch engine call this on their side of the process
    boundary, so entries must be resolvable by name alone.
    """
    from repro.core import (
        bar_yehuda_maxis,
        boppana_is,
        good_nodes_approx,
        low_arboricity_maxis,
        low_degree_maxis,
        sparsified_approx,
        theorem1_maxis,
        theorem2_maxis,
        weighted_greedy_maxis,
    )
    from repro.mis import ghaffari_mis, local_minima_mis, luby_mis

    def thm1(g, *, seed=None, policy=None, eps=0.5, **kw):
        return theorem1_maxis(g, eps, seed=seed, policy=policy, **kw)

    def thm2(g, *, seed=None, policy=None, eps=0.5, **kw):
        return theorem2_maxis(g, eps, seed=seed, policy=policy, **kw)

    def thm3(g, *, seed=None, policy=None, eps=0.5, **kw):
        # low_arboricity_maxis manages bandwidth internally; no policy knob.
        return low_arboricity_maxis(g, eps, seed=seed, **kw)

    def thm5(g, *, seed=None, policy=None, eps=0.5, **kw):
        return low_degree_maxis(g, eps, seed=seed, policy=policy, **kw)

    def thm8(g, *, seed=None, policy=None, **kw):
        return good_nodes_approx(g, seed=seed, policy=policy, **kw)

    def thm9(g, *, seed=None, policy=None, **kw):
        return sparsified_approx(g, seed=seed, policy=policy, **kw)

    def ranking(g, *, seed=None, policy=None, **kw):
        return boppana_is(g, seed=seed, policy=policy, **kw)

    def bar_yehuda(g, *, seed=None, policy=None, **kw):
        return bar_yehuda_maxis(g, seed=seed, policy=policy, **kw)

    def weighted_greedy(g, *, seed=None, policy=None, **kw):
        return weighted_greedy_maxis(g, seed=seed, policy=policy, **kw)

    def mis_luby(g, *, seed=None, policy=None, **kw):
        return luby_mis(g, seed=seed, **kw)

    def mis_ghaffari(g, *, seed=None, policy=None, **kw):
        return ghaffari_mis(g, seed=seed, **kw)

    def mis_det(g, *, seed=None, policy=None, **kw):
        return local_minima_mis(g, seed=seed, **kw)

    return {
        "thm1": thm1,
        "thm2": thm2,
        "thm3": thm3,
        "thm5": thm5,
        "thm8": thm8,
        "thm9": thm9,
        "ranking": ranking,
        "bar-yehuda": bar_yehuda,
        "weighted-greedy": weighted_greedy,
        "mis-luby": mis_luby,
        "mis-ghaffari": mis_ghaffari,
        "mis-det": mis_det,
    }
