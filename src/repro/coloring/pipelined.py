"""Pipelined colour-class aggregation: ``Θ(D + C)`` rounds.

The naive schedule in :mod:`repro.coloring.to_maxis` runs one convergecast
per colour (``Θ(D·C)`` rounds).  CONGEST folklore pipelines the ``C``
per-colour sums up a single BFS tree: each tree edge carries one
``(colour, partial_sum)`` message per round, in increasing colour order,
so the root has every class weight after ``depth + C`` rounds.  The
winning colour is then flooded back down the tree.

This does not beat the ``Ω(D)`` barrier of §8 — nothing can, which is the
paper's point — but it shows the barrier is *exactly* ``D``-shaped, not an
artifact of the naive schedule.

The tree (parents/children) comes from a prior
:func:`repro.primitives.bfs_tree` run whose cost is charged by the caller.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.coloring.greedy import verify_coloring
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs.spans import span
from repro.primitives.bfs import bfs_tree, flood_value
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["PipelinedClassSums", "pipelined_color_class_maxis"]

_SUM = 0


class PipelinedClassSums(NodeAlgorithm):
    """Converge-cast all colour-class sums up a fixed tree, pipelined.

    Constructor inputs (each node reads only its own entries):
        parent: tree parent per node (root absent).
        children: tree children per node.
        colors: the proper colouring.
        num_colors: ``C`` — the pipeline length, known to all (an upper
            bound like ``Δ+1`` works too; idle colours just carry zero).

    A node accumulates, per colour, its own contribution plus everything
    its children sent.  Colour ``c``'s subtotal is *complete* at a node of
    height ``h`` by round ``h + c``, and the pipeline sends exactly one
    colour per round upward: colour ``c`` travels in round ``h + c + 1``.
    The root halts with the full vector after ``depth + C`` rounds; other
    nodes halt once their last colour is sent.
    """

    def __init__(self, parent: Mapping[int, int], children: Mapping[int, Sequence[int]],
                 colors: Mapping[int, int], num_colors: int) -> None:
        self._parent = parent
        self._children = children
        self._colors = colors
        self._num_colors = num_colors
        self._sums: List[float] = []
        self._received: List[int] = []   # per colour: how many children reported
        self._next_to_send = 0

    def on_start(self, ctx: NodeContext) -> None:
        self._sums = [0.0] * self._num_colors
        self._received = [0] * self._num_colors
        self._sums[self._colors[ctx.node_id]] += ctx.weight
        self._my_children = tuple(self._children.get(ctx.node_id, ()))
        self._is_root = ctx.node_id not in self._parent
        self._maybe_send(ctx)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for sender, msg in inbox.items():
            kind, color, value = msg
            if kind == _SUM:
                self._sums[color] += value
                self._received[color] += 1
        self._maybe_send(ctx)

    def _maybe_send(self, ctx: NodeContext) -> None:
        # Send (or, at the root, finalise) the next colour once every
        # child has contributed to it.
        while (self._next_to_send < self._num_colors
               and self._received[self._next_to_send] == len(self._my_children)):
            c = self._next_to_send
            self._next_to_send += 1
            if self._is_root:
                continue
            ctx.send(self._parent[ctx.node_id], (_SUM, c, self._sums[c]))
            return  # one message per round on the tree edge (CONGEST)
        if self._next_to_send >= self._num_colors:
            if self._is_root:
                ctx.halt(tuple(self._sums))
            else:
                ctx.halt(None)


def pipelined_color_class_maxis(
    graph: WeightedGraph,
    colors: Dict[int, int],
    *,
    root: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    check: bool = True,
) -> AlgorithmResult:
    """Heaviest colour class in ``Θ(D + C)`` rounds (tree + pipeline + flood)."""
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "color-class-pipelined"})
    if check:
        verify_coloring(graph, colors)
    if root is None:
        root = min(graph.nodes)
    num_colors = max(colors[v] for v in graph.nodes) + 1

    with span("color-class-pipelined") as sp:
        tree = bfs_tree(graph, root, policy=policy, n_bound=n_bound)
        children: Dict[int, List[int]] = {}
        for v, p in tree.parent.items():
            children.setdefault(p, []).append(v)
        sp.add(tree.metrics, name="bfs-tree")

        bound = Network.of(graph, n_bound).n_bound
        pipeline = run(
            Network.of(graph, bound),
            lambda: PipelinedClassSums(tree.parent, children, colors, num_colors),
            policy=policy,
            seed=0,
        )
        # The BFS-tree build overlaps the pipelined aggregation in the
        # standard schedule (leaves start reporting as soon as their
        # subtree is wired), which is what makes the protocol Θ(D + C)
        # instead of Θ(2D + C): compose those two phases in parallel.
        sp.add_parallel(pipeline.metrics, name="pipelined-sums")

        sums = pipeline.outputs[root]
        best = min(c for c in range(num_colors) if sums[c] == max(sums))
        # The announcement flood only starts after the root knows the
        # winner, so it stays sequential.
        _, flood_metrics = flood_value(graph, root, best, policy=policy,
                                       n_bound=bound)
        sp.add(flood_metrics, name="announce-flood")
    chosen = frozenset(v for v in graph.nodes if colors[v] == best)
    return AlgorithmResult(
        independent_set=chosen,
        metrics=sp.metrics(),
        metadata={
            "algorithm": "color-class-pipelined",
            "num_colors": num_colors,
            "winning_color": best,
            "tree_depth": tree.depth,
            "tree_rounds": tree.metrics.rounds,
            "pipeline_rounds": pipeline.metrics.rounds,
            "flood_rounds": flood_metrics.rounds,
            "class_weights": {c: sums[c] for c in range(num_colors)},
        },
    )
