"""Centralized greedy colouring — the sequential reference of §1/§8."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.exceptions import VerificationError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["greedy_coloring", "verify_coloring"]


def greedy_coloring(graph: WeightedGraph,
                    order: Optional[Sequence[int]] = None) -> Dict[int, int]:
    """First-fit colouring along ``order`` (default ascending id).

    Uses at most ``Δ+1`` colours — the §8 observation that a sequential
    ``(Δ+1)``-colouring (hence a ``(Δ+1)``-approximate MaxIS via the best
    colour class) is trivial *centrally*.
    """
    if order is None:
        order = graph.nodes
    colors: Dict[int, int] = {}
    for v in order:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def verify_coloring(graph: WeightedGraph, colors: Dict[int, int],
                    max_colors: Optional[int] = None) -> None:
    """Raise :class:`VerificationError` unless ``colors`` is proper (and,
    if given, uses at most ``max_colors`` colours)."""
    missing = [v for v in graph.nodes if v not in colors]
    if missing:
        raise VerificationError(f"nodes without colour: {missing[:5]}")
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise VerificationError(
                f"edge ({u}, {v}) is monochromatic (colour {colors[u]})"
            )
    if max_colors is not None:
        used = len(set(colors[v] for v in graph.nodes))
        if used > max_colors:
            raise VerificationError(
                f"{used} colours used, only {max_colors} allowed"
            )
