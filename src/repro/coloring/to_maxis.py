"""Open Question 2 (§8): from a ``(Δ+1)``-colouring to a MaxIS approximation.

Centrally this is trivial: the heaviest colour class is independent and
carries at least ``w(V)/(Δ+1)`` — a ``(Δ+1)``-approximation.  The paper's
point is that *distributedly* it is not: "finding the colour class of
maximum weight requires ``Ω(D)`` rounds, where ``D`` is the diameter".

:func:`distributed_color_class_maxis` implements the obvious distributed
realisation — per-colour convergecast of class weights up a BFS tree,
argmax at the root, decision flooded back down — so experiment E11 can
*measure* the ``Θ(D + #colours)`` cost against Theorem 2's
diameter-independent rounds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.coloring.greedy import verify_coloring
from repro.graphs.weighted_graph import WeightedGraph
from repro.primitives.bfs import bfs_tree, flood_value
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy

__all__ = ["best_color_class", "distributed_color_class_maxis"]


def best_color_class(graph: WeightedGraph,
                     colors: Dict[int, int]) -> Tuple[FrozenSet[int], float]:
    """Centralized reference: the heaviest colour class and its weight."""
    totals: Dict[int, float] = {}
    for v in graph.nodes:
        totals[colors[v]] = totals.get(colors[v], 0.0) + graph.weight(v)
    if not totals:
        return frozenset(), 0.0
    best = min(c for c, t in totals.items() if t == max(totals.values()))
    chosen = frozenset(v for v in graph.nodes if colors[v] == best)
    return chosen, totals[best]


def distributed_color_class_maxis(
    graph: WeightedGraph,
    colors: Dict[int, int],
    *,
    root: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    check: bool = True,
) -> AlgorithmResult:
    """Select the heaviest colour class distributedly.

    One convergecast per colour (CONGEST: a per-colour sum fits in one
    ``O(log n)``-bit message), then one flood of the winning colour.
    Round cost ``Θ(#colours · D)`` with this naive schedule — pipelining
    would give ``Θ(#colours + D)``, still ``Ω(D)``, which is the point of
    the paper's §8 discussion: no colouring-based approach known beats
    the diameter barrier, while Theorem 2 is diameter-independent.

    Requires a connected graph (the convergecast must reach everything).
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "color-class"})
    if check:
        verify_coloring(graph, colors)
    if root is None:
        root = min(graph.nodes)

    metrics = RunMetrics()
    palette = sorted(set(colors[v] for v in graph.nodes))
    totals: Dict[int, float] = {}
    depth = 0
    for c in palette:
        contribution = {
            v: (graph.weight(v) if colors[v] == c else 0.0) for v in graph.nodes
        }
        res = bfs_tree(graph, root, values=contribution, op="sum",
                       policy=policy, n_bound=n_bound)
        metrics = metrics.merge(res.metrics)
        totals[c] = res.aggregate
        depth = max(depth, res.depth)

    best = min(c for c, t in totals.items() if t == max(totals.values()))
    _, flood_metrics = flood_value(graph, root, best, policy=policy,
                                   n_bound=n_bound)
    metrics = metrics.merge(flood_metrics)

    chosen = frozenset(v for v in graph.nodes if colors[v] == best)
    return AlgorithmResult(
        independent_set=chosen,
        metrics=metrics,
        metadata={
            "algorithm": "color-class",
            "num_colors": len(palette),
            "winning_color": best,
            "tree_depth": depth,
            "class_weights": totals,
        },
    )
