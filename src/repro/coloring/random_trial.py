"""Distributed (deg+1)-list colouring by random colour trials.

The §8 discussion relates ``(Δ+1)``-colouring to MaxIS approximation
(Open Question 2).  This module supplies the colouring half: the classic
random-trial algorithm (Johansson; see also Barenboim–Elkin §10), which
properly colours every graph with colours ``{0, ..., deg(v)}`` per node —
hence at most ``Δ+1`` colours overall — in ``O(log n)`` rounds w.h.p.

Each two-round phase:

* **propose** — an uncoloured node picks a uniform colour from its palette
  minus the colours its neighbours have already finalised, and announces it;
* **decide** — if no neighbour proposed the same colour, the colour is
  final: announce and halt.

A finalised announcement removes that colour from the neighbours'
palettes.  Palettes never empty (``deg(v)+1`` colours vs at most
``deg(v)`` finalised neighbours), so the algorithm cannot deadlock.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.runner import run

__all__ = ["RandomTrialColoring", "ColoringResult", "random_coloring"]

_PROP = 0
_FINAL = 1


class RandomTrialColoring(NodeAlgorithm):
    """Node program for random-trial (deg+1)-list colouring.

    Halt output: the node's final colour (an int in ``0..deg(v)``).
    """

    def __init__(self) -> None:
        self._forbidden: set = set()
        self._proposal: Optional[int] = None

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(0)
            return
        self._propose(ctx)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index % 2 == 1:
            self._decide(ctx, inbox)
        else:
            self._propose_round(ctx, inbox)

    # ------------------------------------------------------------------ #

    def _propose(self, ctx: NodeContext) -> None:
        palette = [c for c in range(ctx.degree + 1) if c not in self._forbidden]
        self._proposal = int(palette[int(ctx.rng.integers(0, len(palette)))])
        ctx.broadcast((_PROP, self._proposal))

    def _propose_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for msg in inbox.values():
            if msg[0] == _FINAL:
                self._forbidden.add(msg[1])
        self._propose(ctx)

    def _decide(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        conflict = any(
            msg[0] == _PROP and msg[1] == self._proposal
            for msg in inbox.values()
        )
        if not conflict:
            ctx.broadcast((_FINAL, self._proposal))
            ctx.halt(self._proposal)


class ColoringResult:
    """A proper colouring plus its distributed cost."""

    def __init__(self, colors: Dict[int, int], metrics: RunMetrics):
        self.colors = colors
        self.metrics = metrics

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def num_colors(self) -> int:
        return len(set(self.colors.values())) if self.colors else 0

    def color_classes(self) -> Dict[int, frozenset]:
        """Mapping ``color -> set of nodes with that colour``."""
        classes: Dict[int, set] = {}
        for v, c in self.colors.items():
            classes.setdefault(c, set()).add(v)
        return {c: frozenset(s) for c, s in classes.items()}


def random_coloring(
    graph: WeightedGraph,
    *,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> ColoringResult:
    """Colour ``graph`` with at most ``Δ+1`` colours in O(log n) rounds w.h.p."""
    if graph.n == 0:
        return ColoringResult({}, RunMetrics())
    from repro.simulator.network import Network

    network = Network.of(graph, n_bound)
    limit = max_rounds if max_rounds is not None else 400 * (graph.n.bit_length() + 2)
    result = run(network, RandomTrialColoring, policy=policy, seed=seed,
                 max_rounds=limit)
    return ColoringResult(dict(result.outputs), result.metrics)
