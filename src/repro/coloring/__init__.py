"""(Δ+1)-colouring and the §8 colouring-to-MaxIS pipeline (Open Question 2)."""

from repro.coloring.greedy import greedy_coloring, verify_coloring
from repro.coloring.random_trial import (
    ColoringResult,
    RandomTrialColoring,
    random_coloring,
)
from repro.coloring.pipelined import PipelinedClassSums, pipelined_color_class_maxis
from repro.coloring.to_maxis import best_color_class, distributed_color_class_maxis

__all__ = [
    "greedy_coloring",
    "verify_coloring",
    "random_coloring",
    "RandomTrialColoring",
    "ColoringResult",
    "best_color_class",
    "distributed_color_class_maxis",
    "pipelined_color_class_maxis",
    "PipelinedClassSums",
]
