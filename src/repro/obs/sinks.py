"""Concrete event sinks for the simulator's instrumentation hooks.

Every sink implements the duck-typed protocol of
:mod:`repro.simulator.instrument`: a ``record(round_index, kind, node,
detail=None)`` method, optionally ``on_round_profile(profile)``.  The
legacy :class:`repro.simulator.tracing.Trace` already satisfies it; the
sinks here cover the remaining recording disciplines:

* :class:`NullSink` — swallows everything; the overhead baseline.
* :class:`RingBufferSink` — keeps only the *last* ``capacity`` events
  (``Trace`` keeps the first), for long runs where the tail matters.
* :class:`RoundSeriesSink` — per-round aggregates (messages, bits, drops,
  halts, compute/delivery seconds) instead of individual events.
* :class:`JsonlStreamSink` — streams every event to disk as one JSON
  object per line; what ``repro run --record`` writes and
  ``repro inspect`` reads back.
* :class:`TelemetrySink` — mirrors the event stream into a
  :class:`~repro.obs.telemetry.MetricRegistry` (the process-global one
  by default), so simulator traffic lands next to kernel timings and
  fallback counters in Prometheus exposition.
* :class:`MultiSink` — fans one event stream out to several sinks.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.simulator.instrument import RoundProfile
from repro.simulator.tracing import TraceEvent

__all__ = [
    "NullSink",
    "RingBufferSink",
    "RoundSeriesSink",
    "JsonlStreamSink",
    "TelemetrySink",
    "MultiSink",
]


class NullSink:
    """Accepts events and discards them.

    Installing it exercises the full dispatch path at (near-)zero cost —
    the benchmark suite uses it to measure instrumentation overhead.
    Deliberately does *not* implement ``on_round_profile``, so the runner
    skips wall-clock profiling entirely.
    """

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events, counting evictions."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.evicted_events = 0

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        if len(self._events) == self.capacity:
            self.evicted_events += 1
        self._events.append(TraceEvent(round_index, kind, node, detail))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class RoundSeriesSink:
    """Aggregates the event stream into one row per round.

    Rows carry message/bit/drop/halt counts; when the runner also delivers
    :class:`RoundProfile` records (it does whenever this sink is
    attached), the per-round compute and delivery wall-clock land in the
    same row.  Memory is ``O(rounds)`` regardless of traffic.
    """

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[str, Any]] = {}

    def _row(self, round_index: int) -> Dict[str, Any]:
        return self._rows.setdefault(round_index, {
            "round": round_index,
            "messages": 0, "bits": 0, "drops": 0, "dropped_bits": 0,
            "halts": 0,
            "fault_drops": 0, "fault_dropped_bits": 0,
            "fault_delays": 0, "fault_dups": 0,
            "crashes": 0, "restarts": 0,
            "compute_seconds": 0.0, "delivery_seconds": 0.0,
            "active_nodes": 0,
        })

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        row = self._row(round_index)
        if kind == "send":
            row["messages"] += 1
            row["bits"] += detail[1]
        elif kind == "drop":
            row["drops"] += 1
            row["dropped_bits"] += detail[1]
            row["bits"] += detail[1]  # charged on the wire, like sends
        elif kind == "halt":
            row["halts"] += 1
        elif kind == "fault_drop":
            row["fault_drops"] += 1
            row["fault_dropped_bits"] += detail[1]
            row["bits"] += detail[1]  # charged on the wire, never read
        elif kind == "fault_delay":
            row["fault_delays"] += 1
        elif kind == "fault_dup":
            row["fault_dups"] += 1
            row["messages"] += 1
            row["bits"] += detail[1]  # an injected copy is a real message
        elif kind == "crash":
            row["crashes"] += 1
        elif kind == "restart":
            row["restarts"] += 1

    def on_round_profile(self, profile: RoundProfile) -> None:
        row = self._row(profile.round_index)
        row["compute_seconds"] += profile.compute_seconds
        row["delivery_seconds"] += profile.delivery_seconds
        row["active_nodes"] = max(row["active_nodes"], profile.active_nodes)

    def rows(self) -> List[Dict[str, Any]]:
        """Rows in round order."""
        return [self._rows[r] for r in sorted(self._rows)]

    @property
    def total_compute_seconds(self) -> float:
        return sum(r["compute_seconds"] for r in self._rows.values())

    @property
    def total_delivery_seconds(self) -> float:
        return sum(r["delivery_seconds"] for r in self._rows.values())


class JsonlStreamSink:
    """Streams events (and round profiles) to a JSONL file as they happen.

    Unlike an in-memory trace this never truncates: memory stays O(1) no
    matter how many events a run produces.  Non-JSON payload details are
    stringified via ``repr`` rather than failing the run.  Also exposes
    :meth:`write` for arbitrary extra records (metadata, final metrics);
    usable as a context manager.
    """

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self.records_written = 0

    def write(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, default=repr))
        self._fh.write("\n")
        self.records_written += 1

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        self.write({"type": "event", "round": round_index, "kind": kind,
                    "node": node, "detail": detail})

    def on_round_profile(self, profile: RoundProfile) -> None:
        self.write({"type": "round_profile", **profile.to_dict()})

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlStreamSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TelemetrySink:
    """Mirrors the event stream into a metric registry.

    Counters: ``sim_events_total{kind}`` for every instrumentation event,
    ``sim_bits_total`` for bits charged on the wire (sends, drops,
    fault-injected copies — the same charging discipline as
    :class:`RoundSeriesSink`), and cumulative compute/delivery wall-clock
    when round profiles are delivered.  Defaults to the process-global
    registry (:func:`repro.obs.telemetry.global_registry`) so a recorded
    run's traffic shows up in the same exposition as kernel timings and
    columnar fallbacks.
    """

    # Event kinds whose detail[1] is a bit count charged on the wire.
    _BIT_KINDS = frozenset({"send", "drop", "fault_drop", "fault_dup"})

    def __init__(self, registry: Optional[Any] = None) -> None:
        if registry is None:
            from repro.obs.telemetry import global_registry
            registry = global_registry()
        self.registry = registry
        self._events = registry.counter(
            "sim_events_total",
            "Simulator instrumentation events, by kind.",
            labelnames=("kind",),
        )
        self._bits = registry.counter(
            "sim_bits_total",
            "Bits charged on the wire by the simulator event stream.",
        )
        self._compute = registry.counter(
            "sim_compute_seconds_total",
            "Cumulative per-round node-compute wall-clock seconds.",
        )
        self._delivery = registry.counter(
            "sim_delivery_seconds_total",
            "Cumulative per-round message-delivery wall-clock seconds.",
        )

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        self._events.inc(kind=kind)
        if kind in self._BIT_KINDS and detail is not None:
            self._bits.inc(int(detail[1]))

    def on_round_profile(self, profile: RoundProfile) -> None:
        self._compute.inc(profile.compute_seconds)
        self._delivery.inc(profile.delivery_seconds)


class MultiSink:
    """Fans one event stream out to several sinks."""

    def __init__(self, sinks: Iterable[Any]) -> None:
        self.sinks = tuple(sinks)
        self._profiled = tuple(
            s for s in self.sinks
            if getattr(s, "on_round_profile", None) is not None
        )

    def record(self, round_index: int, kind: str, node: int,
               detail: Any = None) -> None:
        for s in self.sinks:
            s.record(round_index, kind, node, detail)

    def on_round_profile(self, profile: RoundProfile) -> None:
        for s in self._profiled:
            s.on_round_profile(profile)
