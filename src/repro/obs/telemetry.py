"""Request/run telemetry: metric registry, traces, and run collectors.

Three cooperating pieces, all stdlib + the conventions the rest of the
observability layer already uses:

* **Metric registry** — :class:`Counter`, :class:`Gauge`, and
  fixed-bucket :class:`Histogram` primitives behind one
  :class:`MetricRegistry`, with two read-side renderings: a JSON
  ``snapshot()`` (what ``GET /v1/metrics`` embeds) and Prometheus text
  exposition format 0.0.4 (``GET /v1/metrics?format=prometheus``).
  Mutation is lock-guarded so the engine's event-loop thread, the
  dispatch thread, and test threads can share one registry.
* **Traces** — :func:`new_trace_id` plus :class:`TraceContext`, the
  request-scoped identity the service threads from the HTTP edge through
  coalescing and batching down to the runner.  A context accumulates a
  per-stage latency breakdown (``queue_wait``, ``cache_lookup``,
  ``solve``, ``serialize``, ...) and, for coalesced followers, records
  the primary trace that actually computed the report.
* **Run collectors** — an ambient, thread-local stack of
  :class:`RunTelemetry` objects (:func:`collect_run_telemetry`).  The
  columnar backend and the runner report fleet-kernel wall time,
  ``FleetFallback`` occurrences *with reasons*, and backend run counts
  to the innermost collector; the batch engine attaches the collected
  document to the job outcome as non-canonical provenance.  Like the
  sink/fault registries in :mod:`repro.simulator.instrument`, the stack
  is per-process (and here per-thread): batch workers start empty and
  ship their collection back inside the pickled outcome.

None of this ever touches canonical results: reports, metrics dicts, and
cache entries stay byte-identical with telemetry enabled — telemetry is
wall-clock provenance, stripped exactly like ``wall_seconds`` in
:mod:`repro.api`.

Percentile estimation for the service uses :class:`ReservoirSample` —
Vitter's Algorithm R: after ``t`` observations, each of the ``t`` seen
values is in the reservoir with equal probability ``k/t``, so p50/p95/p99
estimates stay unbiased under sustained load (a bounded deque, by
contrast, only ever sees the newest window).
"""

from __future__ import annotations

import random
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ReservoirSample",
    "TraceContext",
    "RunTelemetry",
    "collect_run_telemetry",
    "current_collector",
    "global_registry",
    "new_trace_id",
    "record_backend_run",
    "record_fallback",
    "record_kernel_time",
    "record_stage",
    "reset_global_registry",
]

# Log-spaced 1 ms .. 60 s: the service's latency regime spans cache hits
# (~1 ms) to cold multi-phase solves (seconds); the tail buckets catch
# queueing collapse under overload.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _fmt_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _fmt_value(bound)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape_label(v)}"'
                     for n, v in zip(names, values))
    return "{" + inner + "}"


class _Metric:
    """Shared label bookkeeping of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        with self._lock:
            items = sorted(self._values.items()) or [((), 0.0)] * (
                0 if self.labelnames else 1)
            for key, value in items:
                lines.append(f"{self.name}"
                             f"{_label_str(self.labelnames, key)} "
                             f"{_fmt_value(value)}")
        return lines


class Gauge(_Metric):
    """A value that goes up and down (queue depth, in-flight)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} gauge"]
        with self._lock:
            for key, value in sorted(self._values.items()):
                lines.append(f"{self.name}"
                             f"{_label_str(self.labelnames, key)} "
                             f"{_fmt_value(value)}")
        return lines


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus cumulative semantics.

    Buckets are upper bounds; internally counts are stored per bucket
    and cumulated at render time, so ``observe`` is O(log buckets)
    (binary search) and render is O(buckets).
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if any(b != b or b == float("inf") for b in bounds):
            raise ValueError("finite bucket bounds only (+Inf is implicit)")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # per label-key: [per-bucket counts ... , +Inf count], sum, count
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        # binary search for the first bound >= value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
                self._sums[key] = 0.0
            counts[lo] += 1
            self._sums[key] += float(value)

    def count(self, **labels: str) -> int:
        counts = self._counts.get(self._key(labels))
        return sum(counts) if counts else 0

    def sum(self, **labels: str) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def series(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        with self._lock:
            for key in sorted(self._counts):
                counts = self._counts[key]
                cumulative: List[Tuple[str, int]] = []
                running = 0
                for bound, n in zip(self.bounds, counts):
                    running += n
                    cumulative.append((_fmt_le(bound), running))
                cumulative.append(("+Inf", running + counts[-1]))
                out.append({
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": cumulative,
                    "sum": self._sums[key],
                    "count": running + counts[-1],
                })
        return out

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        for entry in self.series():
            labels = entry["labels"]
            names = tuple(labels)
            values = tuple(labels.values())
            for le, cum in entry["buckets"]:
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_str(names + ('le',), values + (le,))} {cum}"
                )
            base = _label_str(names, values)
            lines.append(f"{self.name}_sum{base} "
                         f"{_fmt_value(entry['sum'])}")
            lines.append(f"{self.name}_count{base} {entry['count']}")
        return lines


class MetricRegistry:
    """A named collection of metrics with one JSON and one Prometheus view.

    Registration is idempotent by name (asking again returns the existing
    metric); re-registering under a different kind or label set raises —
    that is always a naming bug, never a legitimate override.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, metric_cls, name: str, help_text: str,
                  labelnames: Sequence[str], **kwargs: Any) -> Any:
        full = self._full_name(name)
        with self._lock:
            existing = self._metrics.get(full)
            if existing is not None:
                if (type(existing) is not metric_cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {full!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = metric_cls(full, help_text, labelnames=labelnames,
                                **kwargs)
            self._metrics[full] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labelnames: Sequence[str] = ()) -> Histogram:
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(self._full_name(name))

    def snapshot(self) -> Dict[str, Any]:
        """JSON document: ``{full_name: {kind, help, series}}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {"kind": m.kind, "help": m.help, "series": m.series()}
            for name, m in metrics
        }

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4; one family per registered metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _name, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# reservoir sampling
# --------------------------------------------------------------------- #

class ReservoirSample:
    """Uniform sample of an unbounded stream (Vitter's Algorithm R).

    The first ``capacity`` observations fill the reservoir; observation
    ``t > capacity`` replaces a uniformly random slot with probability
    ``capacity/t``.  Every value ever observed therefore has the same
    ``capacity/t`` chance of being in the sample — percentiles computed
    over it estimate the *whole run*, not just the newest window.  The
    RNG is private and fixed-seed by default so service snapshots are
    reproducible under a replayed request sequence.
    """

    def __init__(self, capacity: int = 4096, rng_seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.observed_total = 0
        self._values: List[float] = []
        self._rng = random.Random(rng_seed)

    def observe(self, value: float) -> None:
        self.observed_total += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = self._rng.randrange(self.observed_total)
        if slot < self.capacity:
            self._values[slot] = float(value)

    def values(self) -> List[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)


# --------------------------------------------------------------------- #
# traces
# --------------------------------------------------------------------- #

def new_trace_id() -> str:
    """A fresh 128-bit request identity, hex-encoded."""
    return uuid.uuid4().hex


@dataclass
class TraceContext:
    """One request's identity and per-stage latency breakdown.

    ``primary_trace_id`` is set on coalesced followers: the trace of the
    leader whose computation actually produced the report.  Stage values
    are seconds and accumulate (re-entering a stage adds to it).
    """

    trace_id: str = field(default_factory=new_trace_id)
    primary_trace_id: str = ""
    stages: Dict[str, float] = field(default_factory=dict)

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, perf_counter() - t0)

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"trace_id": self.trace_id,
                               "stages": dict(self.stages)}
        if self.primary_trace_id:
            doc["primary_trace_id"] = self.primary_trace_id
        return doc


# --------------------------------------------------------------------- #
# ambient run collectors
# --------------------------------------------------------------------- #

class RunTelemetry:
    """What one job's execution reported: backend runs, kernel wall
    time, and fallbacks with reasons.  ``to_doc()`` is the JSON form that
    rides on ``JobOutcome.telemetry`` (non-canonical — never part of
    signatures, reports, or cache entries)."""

    def __init__(self) -> None:
        self.backend_runs: Dict[str, int] = {}
        self.kernels: Dict[str, Dict[str, float]] = {}
        self.fallbacks: Dict[Tuple[str, str], int] = {}
        self.fallback_details: Dict[Tuple[str, str], str] = {}
        self.stages: Dict[str, float] = {}

    def record_backend_run(self, backend: str) -> None:
        self.backend_runs[backend] = self.backend_runs.get(backend, 0) + 1

    def record_kernel_time(self, kernel: str, seconds: float) -> None:
        entry = self.kernels.setdefault(kernel, {"runs": 0, "seconds": 0.0})
        entry["runs"] += 1
        entry["seconds"] += float(seconds)

    def record_fallback(self, algorithm: str, reason: str,
                        detail: str = "") -> None:
        key = (algorithm, reason)
        self.fallbacks[key] = self.fallbacks.get(key, 0) + 1
        if detail:
            self.fallback_details[key] = detail

    def record_stage(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    @property
    def fallback_count(self) -> int:
        return sum(self.fallbacks.values())

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        if self.backend_runs:
            doc["runs"] = dict(sorted(self.backend_runs.items()))
        if self.kernels:
            doc["kernels"] = {
                k: {"runs": int(v["runs"]), "seconds": v["seconds"]}
                for k, v in sorted(self.kernels.items())
            }
        if self.fallbacks:
            doc["fallbacks"] = [
                {"algorithm": algorithm, "reason": reason, "count": count,
                 **({"detail": self.fallback_details[key]}
                    if key in self.fallback_details else {})}
                for key, count in sorted(self.fallbacks.items())
                for algorithm, reason in [key]
            ]
        if self.stages:
            doc["stages"] = dict(sorted(self.stages.items()))
        return doc


_LOCAL = threading.local()


def _stack() -> List[RunTelemetry]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


@contextmanager
def collect_run_telemetry() -> Iterator[RunTelemetry]:
    """Collect backend/kernel/fallback records from every ``run()``
    inside the block (this thread only; innermost collector wins)."""
    collector = RunTelemetry()
    stack = _stack()
    stack.append(collector)
    try:
        yield collector
    finally:
        stack.remove(collector)


def current_collector() -> Optional[RunTelemetry]:
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


# Process-global registry: long-lived in-process view of the same
# signals (what `repro inspect`/tests read without a service running).
_GLOBAL_LOCK = threading.Lock()
_GLOBAL_REGISTRY: Optional[MetricRegistry] = None


def global_registry() -> MetricRegistry:
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricRegistry(namespace="repro")
        return _GLOBAL_REGISTRY


def reset_global_registry() -> None:
    """Drop all process-global telemetry (test isolation)."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        _GLOBAL_REGISTRY = None


def record_backend_run(backend: str) -> None:
    """Count one ``runner.run`` execution on ``backend`` (collector
    only — this sits on the hot path, so no global work without an
    installed collector)."""
    collector = current_collector()
    if collector is not None:
        collector.record_backend_run(backend)


def record_kernel_time(kernel: str, seconds: float) -> None:
    collector = current_collector()
    if collector is not None:
        collector.record_kernel_time(kernel, seconds)
    registry = global_registry()
    registry.histogram(
        "fleet_kernel_seconds",
        "Wall-clock seconds of one fleet-kernel execution.",
        labelnames=("kernel",),
    ).observe(seconds, kernel=kernel)


def record_fallback(algorithm: str, reason: str, detail: str = "") -> None:
    """One columnar→per-node fallback, always attributed to a reason
    (``no-kernel``, ``faults``, ``sinks``, ``codec-check``,
    ``over-budget``, ``dense-state``, ...)."""
    collector = current_collector()
    if collector is not None:
        collector.record_fallback(algorithm, reason, detail)
    registry = global_registry()
    registry.counter(
        "fleet_fallback_total",
        "Columnar-backend fallbacks to the per-node scheduler, by reason.",
        labelnames=("algorithm", "reason"),
    ).inc(algorithm=algorithm, reason=reason)


def record_stage(name: str, seconds: float) -> None:
    collector = current_collector()
    if collector is not None:
        collector.record_stage(name, seconds)
