"""Sweep-level metrics aggregation: per-job records → p50/p95 summaries.

The batch engine (``repro sweep --emit-metrics PATH``, or any experiment
run with an ambient outcome emitter installed) writes one JSON record per
job.  This module turns those records — live dicts or a JSONL file —
into per-``(graph, algorithm)`` cells with p50/p95 rounds, bits, and
wall-clock, which is the level at which the paper's w.h.p. round claims
are actually checked.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "percentile",
    "cell_key",
    "aggregate_jobs",
    "read_jsonl",
    "aggregate_jsonl",
    "render_cells",
]


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a list.

    Implemented directly (rather than via numpy) so aggregation works on
    whatever plain-python lists the JSONL round-trip produces.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def cell_key(doc: Dict[str, Any]) -> Tuple[str, str]:
    """Group a job record into its ``(graph, algorithm)`` cell.

    The graph component prefers the fingerprint the batch engine attached
    at emit time, falling back to the job label (experiments use labels to
    name instances) and finally the empty string.
    """
    graph = doc.get("graph") or {}
    gid = str(graph.get("fingerprint") or doc.get("label") or "")
    return (gid, str(doc.get("algorithm", "")))


def aggregate_jobs(
    docs: Iterable[Dict[str, Any]],
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Fold per-job records into per-cell p50/p95 summaries.

    Only records with ``ok`` true contribute to the percentiles; failures
    are counted per cell so a sweep with crashes cannot masquerade as a
    clean one.  Accepts a whole recording: records without an
    ``algorithm`` field (metadata lines, events) are skipped.
    """
    cells: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    failures: Dict[Tuple[str, str], int] = {}
    for doc in docs:
        if "algorithm" not in doc:
            continue
        key = cell_key(doc)
        if not doc.get("ok", False):
            failures[key] = failures.get(key, 0) + 1
            cells.setdefault(key, {"rounds": [], "bits": [], "seconds": [],
                                   "weight": []})
            continue
        bucket = cells.setdefault(key, {"rounds": [], "bits": [],
                                        "seconds": [], "weight": []})
        metrics = doc.get("metrics") or {}
        bucket["rounds"].append(float(metrics.get("rounds", 0)))
        bucket["bits"].append(float(metrics.get("total_bits", 0)))
        bucket["seconds"].append(float(doc.get("seconds", 0.0)))
        bucket["weight"].append(float(doc.get("weight", 0.0)))

    out: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for key, bucket in cells.items():
        ok = len(bucket["rounds"])
        out[key] = {
            "graph": key[0],
            "algorithm": key[1],
            "jobs": ok + failures.get(key, 0),
            "ok": ok,
            "failed": failures.get(key, 0),
            "p50_rounds": percentile(bucket["rounds"], 50),
            "p95_rounds": percentile(bucket["rounds"], 95),
            "p50_bits": percentile(bucket["bits"], 50),
            "p95_bits": percentile(bucket["bits"], 95),
            "p50_seconds": percentile(bucket["seconds"], 50),
            "p95_seconds": percentile(bucket["seconds"], 95),
            "mean_weight": (sum(bucket["weight"]) / ok) if ok else 0.0,
        }
    return out


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """All records of a JSONL file (blank lines skipped).

    A malformed or truncated line — e.g. a recording cut off mid-write —
    raises :class:`ValueError` naming the file and line number, instead
    of surfacing a bare ``json.JSONDecodeError`` with no file context.
    Records that parse but are not JSON objects are rejected the same
    way.
    """
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed JSONL record "
                    f"(truncated write?): {exc}"
                ) from exc
            if not isinstance(doc, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object per line, "
                    f"got {type(doc).__name__}"
                )
            records.append(doc)
    return records


def aggregate_jsonl(path: str) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Round-trip an ``--emit-metrics`` file into p50/p95 cell summaries."""
    return aggregate_jobs(read_jsonl(path))


def render_cells(
    cells: Dict[Tuple[str, str], Dict[str, Any]],
    graph_chars: Optional[int] = 12,
) -> str:
    """Cell summaries as a text table (graph ids abbreviated)."""
    if not cells:
        return "(no job records)"
    lines = []
    header = (f"{'graph':<{graph_chars}}  {'algorithm':<16}  {'jobs':>5}  "
              f"{'ok':>4}  {'p50 rounds':>10}  {'p95 rounds':>10}  "
              f"{'p50 bits':>12}  {'p95 bits':>12}  {'p50 s':>8}  {'p95 s':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(cells):
        c = cells[key]
        gid = c["graph"][:graph_chars] if graph_chars else c["graph"]
        lines.append(
            f"{gid:<{graph_chars}}  {c['algorithm']:<16}  {c['jobs']:>5}  "
            f"{c['ok']:>4}  {c['p50_rounds']:>10.1f}  {c['p95_rounds']:>10.1f}  "
            f"{c['p50_bits']:>12.0f}  {c['p95_bits']:>12.0f}  "
            f"{c['p50_seconds']:>8.4f}  {c['p95_seconds']:>8.4f}"
        )
    return "\n".join(lines)
