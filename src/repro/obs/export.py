"""Render recorded observability data for humans and trace viewers.

Three views of the same run:

* :func:`chrome_trace` — the span tree as Chrome-trace JSON ("X"
  complete events), openable in Perfetto / ``chrome://tracing``.  The
  timebase is *simulated rounds* (1 round = 1 trace microsecond), since
  that is the unit the paper's theorems are stated in; wall-clock seconds
  ride along in each event's ``args``.
* :func:`render_phase_table` — the span tree as an indented text table
  with per-phase rounds, share of the total, messages, and bits.
* :func:`render_round_timeline` — per-round rows (from a
  :class:`~repro.obs.sinks.RoundSeriesSink` or recorded event stream)
  as a compact text timeline, drops and wall-clock included.
* :func:`render_telemetry` — execution telemetry (backend runs, fleet
  kernels, fallbacks with reasons, stage timings) aggregated across the
  per-job records of a ``sweep --emit-metrics`` recording
  (``repro inspect --format telemetry``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.simulator.metrics import SpanNode

__all__ = [
    "chrome_trace",
    "phase_rows",
    "render_phase_table",
    "rows_from_events",
    "render_round_timeline",
    "telemetry_summary",
    "render_telemetry",
]

# One simulated round maps to this many Chrome-trace "microseconds".
_ROUND_TICKS = 1


def chrome_trace(span: SpanNode, *, pid: int = 0) -> Dict[str, Any]:
    """Lay the span tree out on a round-number timeline.

    Sequential children start where the previous sibling ended; parallel
    children start where the previous sibling *started*.  Children are
    drawn one track (``tid``) below their parent, so nesting survives
    viewers that stack overlapping slices.
    """
    events: List[Dict[str, Any]] = []

    def emit(node: SpanNode, start: int, depth: int) -> None:
        events.append({
            "name": node.name,
            "ph": "X",
            "ts": start * _ROUND_TICKS,
            "dur": max(node.rounds, 0) * _ROUND_TICKS,
            "pid": pid,
            "tid": depth,
            "args": {
                "rounds": node.rounds,
                "messages": node.messages,
                "total_bits": node.total_bits,
                "dropped_messages": node.dropped_messages,
                "dropped_bits": node.dropped_bits,
                "wall_seconds": node.wall_seconds,
                "mode": node.mode,
                **({"fault_dropped_messages": node.fault_dropped_messages,
                    "fault_dropped_bits": node.fault_dropped_bits,
                    "fault_delayed_messages": node.fault_delayed_messages,
                    "fault_duplicated_messages": node.fault_duplicated_messages}
                   if any(node.fault_counts) else {}),
            },
        })
        cursor = start
        prev_start = start
        for child in node.children:
            child_start = prev_start if child.mode == "par" else cursor
            emit(child, child_start, depth + 1)
            prev_start = child_start
            cursor = max(cursor, child_start + child.rounds)

    emit(span, 0, 0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"timebase": f"1 round = {_ROUND_TICKS} us"},
    }


def phase_rows(span: SpanNode) -> List[Dict[str, Any]]:
    """Flatten the tree into table rows (depth-first, indented names).

    Fault columns (lost / delayed / duplicated) appear only when the run
    actually injected faults, so fault-free tables render exactly as
    before.
    """
    total_rounds = max(span.rounds, 1)
    faulty = any(any(node.fault_counts) for node, _ in span.walk())
    rows = []
    for node, depth in span.walk():
        row = {
            "phase": "  " * depth + node.name,
            "mode": node.mode if depth else "-",
            "rounds": node.rounds,
            "share": f"{100.0 * node.rounds / total_rounds:.1f}%",
            "messages": node.messages,
            "bits": node.total_bits,
            "dropped": node.dropped_messages,
        }
        if faulty:
            row["lost"] = node.fault_dropped_messages
            row["delayed"] = node.fault_delayed_messages
            row["duped"] = node.fault_duplicated_messages
        row["wall_s"] = (f"{node.wall_seconds:.4f}"
                         if node.wall_seconds else "-")
        rows.append(row)
    return rows


def _format_rows(rows: List[Dict[str, Any]]) -> str:
    if not rows:
        return "(empty)"
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = [
        "  ".join(str(r[c]).ljust(widths[c]) for c in cols) for r in rows
    ]
    return "\n".join([header, sep] + body)


def render_phase_table(span: SpanNode) -> str:
    """The span tree as an indented per-phase text table."""
    return _format_rows(phase_rows(span))


def rows_from_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate recorded JSONL records into per-round rows.

    Accepts the record dicts written by
    :class:`~repro.obs.sinks.JsonlStreamSink` (``type`` = ``"event"`` or
    ``"round_profile"``); unknown types are ignored, so a whole recording
    can be passed verbatim.
    """
    rows: Dict[int, Dict[str, Any]] = {}

    def row(r: int) -> Dict[str, Any]:
        return rows.setdefault(r, {
            "round": r, "messages": 0, "bits": 0, "drops": 0,
            "dropped_bits": 0, "halts": 0,
            "compute_seconds": 0.0, "delivery_seconds": 0.0,
        })

    for rec in events:
        kind = rec.get("type")
        if kind == "event":
            e_kind = rec.get("kind")
            r = row(int(rec.get("round", 0)))
            if e_kind == "send":
                r["messages"] += 1
                r["bits"] += int(rec["detail"][1])
            elif e_kind == "drop":
                r["drops"] += 1
                r["dropped_bits"] += int(rec["detail"][1])
                r["bits"] += int(rec["detail"][1])
            elif e_kind == "halt":
                r["halts"] += 1
            elif e_kind == "fault_drop":
                # Fault keys appear only in faulted recordings, keeping
                # fault-free rows shaped exactly as before.
                r["fault_drops"] = r.get("fault_drops", 0) + 1
                r["bits"] += int(rec["detail"][1])
            elif e_kind == "fault_delay":
                r["fault_delays"] = r.get("fault_delays", 0) + 1
            elif e_kind == "fault_dup":
                r["fault_dups"] = r.get("fault_dups", 0) + 1
                r["messages"] += 1
                r["bits"] += int(rec["detail"][1])
            elif e_kind == "crash":
                r["crashes"] = r.get("crashes", 0) + 1
            elif e_kind == "restart":
                r["restarts"] = r.get("restarts", 0) + 1
        elif kind == "round_profile":
            r = row(int(rec.get("round", 0)))
            r["compute_seconds"] += float(rec.get("compute_seconds", 0.0))
            r["delivery_seconds"] += float(rec.get("delivery_seconds", 0.0))
    return [rows[r] for r in sorted(rows)]


def telemetry_summary(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold per-job ``telemetry`` docs into one run-wide summary.

    Accepts any JSONL recording; only records that carry a ``telemetry``
    section (what :func:`repro.simulator.batch.batch_run` emits per job)
    contribute.  The shape mirrors
    :meth:`repro.obs.telemetry.RunTelemetry.to_doc` with counts summed
    across jobs; fallbacks keep their ``(algorithm, reason)`` identity
    and the last non-empty detail string seen for each.
    """
    jobs_with_telemetry = 0
    backend_runs: Dict[str, int] = {}
    kernels: Dict[str, Dict[str, float]] = {}
    fallbacks: Dict[tuple, Dict[str, Any]] = {}
    stages: Dict[str, Dict[str, float]] = {}
    for rec in records:
        telemetry = rec.get("telemetry")
        if not isinstance(telemetry, dict) or not telemetry:
            continue
        jobs_with_telemetry += 1
        for backend, count in telemetry.get("runs", {}).items():
            backend_runs[backend] = backend_runs.get(backend, 0) + int(count)
        for kernel, entry in telemetry.get("kernels", {}).items():
            agg = kernels.setdefault(kernel, {"runs": 0, "seconds": 0.0})
            agg["runs"] += int(entry.get("runs", 0))
            agg["seconds"] += float(entry.get("seconds", 0.0))
        for fb in telemetry.get("fallbacks", []):
            key = (str(fb.get("algorithm", "?")),
                   str(fb.get("reason", "unknown")))
            agg = fallbacks.setdefault(
                key, {"algorithm": key[0], "reason": key[1], "count": 0})
            agg["count"] += int(fb.get("count", 1))
            if fb.get("detail"):
                agg["detail"] = str(fb["detail"])
        for stage, seconds in telemetry.get("stages", {}).items():
            agg = stages.setdefault(stage, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += float(seconds)
    return {
        "jobs_with_telemetry": jobs_with_telemetry,
        "backend_runs": dict(sorted(backend_runs.items())),
        "kernels": {
            k: {"runs": int(v["runs"]), "seconds": v["seconds"]}
            for k, v in sorted(kernels.items())
        },
        "fallbacks": [fallbacks[key] for key in sorted(fallbacks)],
        "stages": dict(sorted(stages.items())),
    }


def render_telemetry(records: Iterable[Dict[str, Any]]) -> str:
    """The telemetry summary as human-readable text."""
    summary = telemetry_summary(records)
    if not summary["jobs_with_telemetry"]:
        return ("(no telemetry records — recorded before telemetry "
                "existed, or no jobs ran)")
    lines = [f"jobs with telemetry: {summary['jobs_with_telemetry']}"]
    if summary["backend_runs"]:
        lines.append("backend runs:")
        for backend, count in summary["backend_runs"].items():
            lines.append(f"  {backend}: {count}")
    if summary["kernels"]:
        lines.append("fleet kernels:")
        for kernel, entry in summary["kernels"].items():
            lines.append(f"  {kernel}: {entry['runs']} runs, "
                         f"{1e3 * entry['seconds']:.2f} ms total")
    if summary["fallbacks"]:
        lines.append("fallbacks (columnar -> per-node):")
        for fb in summary["fallbacks"]:
            detail = f" — {fb['detail']}" if fb.get("detail") else ""
            lines.append(f"  {fb['algorithm']} [{fb['reason']}]: "
                         f"{fb['count']}{detail}")
    else:
        lines.append("fallbacks: none")
    if summary["stages"]:
        lines.append("stages:")
        for stage, entry in summary["stages"].items():
            mean = entry["total_s"] / entry["count"] if entry["count"] else 0.0
            lines.append(f"  {stage}: {entry['count']} obs, "
                         f"mean {1e3 * mean:.2f} ms, "
                         f"total {1e3 * entry['total_s']:.2f} ms")
    return "\n".join(lines)


def render_round_timeline(rows: List[Dict[str, Any]],
                          max_rounds: Optional[int] = 100) -> str:
    """Per-round rows as a compact text timeline."""
    lines = []
    for row in rows:
        if max_rounds is not None and len(lines) >= max_rounds:
            lines.append(f"... ({len(rows) - max_rounds} more rounds)")
            break
        parts = [f"round {row['round']}:",
                 f"{row['messages']} msgs ({row['bits']} bits)"]
        if row.get("drops"):
            parts.append(f"{row['drops']} dropped")
        if row.get("fault_drops"):
            parts.append(f"{row['fault_drops']} lost")
        if row.get("fault_delays"):
            parts.append(f"{row['fault_delays']} delayed")
        if row.get("fault_dups"):
            parts.append(f"{row['fault_dups']} duplicated")
        if row.get("crashes"):
            parts.append(f"{row['crashes']} crashed")
        if row.get("restarts"):
            parts.append(f"{row['restarts']} restarted")
        if row.get("halts"):
            parts.append(f"{row['halts']} halted")
        wall = row.get("compute_seconds", 0.0) + row.get("delivery_seconds", 0.0)
        if wall:
            parts.append(f"[{1e3 * row['compute_seconds']:.2f}ms compute, "
                         f"{1e3 * row['delivery_seconds']:.2f}ms delivery]")
        lines.append("  ".join(parts))
    return "\n".join(lines) if lines else "(no rounds)"
