"""Structured observability: sinks, phase spans, export, aggregation.

The simulator's theorems are claims about rounds and bits; this package
makes those quantities *inspectable* instead of flat end-of-run totals:

* **Sinks** (:mod:`repro.obs.sinks`) plug into the runner's event stream
  — ring buffer, per-round time series, streaming JSONL, null — via the
  hooks in :mod:`repro.simulator.instrument`.
* **Spans** (:mod:`repro.obs.spans`) attribute a composed algorithm's
  rounds/messages/bits to named phases, preserving sequential vs.
  parallel composition; the tree rides on ``RunMetrics.span``.
* **Export** (:mod:`repro.obs.export`) renders recordings as round
  timelines, per-phase tables, or Chrome-trace JSON (``repro inspect``).
* **Aggregation** (:mod:`repro.obs.aggregate`) folds per-job sweep
  records into p50/p95 rounds/bits/wall-clock per (graph, algorithm).

See ``docs/observability.md`` for the guided tour.
"""

from repro.obs.aggregate import (
    aggregate_jobs,
    aggregate_jsonl,
    percentile,
    read_jsonl,
    render_cells,
)
from repro.obs.export import (
    chrome_trace,
    phase_rows,
    render_phase_table,
    render_round_timeline,
    rows_from_events,
)
from repro.obs.sinks import (
    JsonlStreamSink,
    MultiSink,
    NullSink,
    RingBufferSink,
    RoundSeriesSink,
)
from repro.obs.spans import check_span, span, unattributed_rounds
from repro.simulator.instrument import (
    RoundProfile,
    install_outcome_emitter,
    install_sink,
)
from repro.simulator.metrics import SpanNode

__all__ = [
    "aggregate_jobs",
    "aggregate_jsonl",
    "percentile",
    "read_jsonl",
    "render_cells",
    "chrome_trace",
    "phase_rows",
    "render_phase_table",
    "render_round_timeline",
    "rows_from_events",
    "JsonlStreamSink",
    "MultiSink",
    "NullSink",
    "RingBufferSink",
    "RoundSeriesSink",
    "check_span",
    "span",
    "unattributed_rounds",
    "RoundProfile",
    "install_outcome_emitter",
    "install_sink",
    "SpanNode",
]
