"""Structured observability: sinks, phase spans, export, aggregation.

The simulator's theorems are claims about rounds and bits; this package
makes those quantities *inspectable* instead of flat end-of-run totals:

* **Sinks** (:mod:`repro.obs.sinks`) plug into the runner's event stream
  — ring buffer, per-round time series, streaming JSONL, null — via the
  hooks in :mod:`repro.simulator.instrument`.
* **Spans** (:mod:`repro.obs.spans`) attribute a composed algorithm's
  rounds/messages/bits to named phases, preserving sequential vs.
  parallel composition; the tree rides on ``RunMetrics.span``.
* **Export** (:mod:`repro.obs.export`) renders recordings as round
  timelines, per-phase tables, or Chrome-trace JSON (``repro inspect``).
* **Aggregation** (:mod:`repro.obs.aggregate`) folds per-job sweep
  records into p50/p95 rounds/bits/wall-clock per (graph, algorithm).
* **Telemetry** (:mod:`repro.obs.telemetry`) is the metric layer:
  counters/gauges/histograms in a :class:`MetricRegistry` with
  Prometheus text exposition, trace contexts with per-stage latency,
  reservoir sampling, and the ambient per-run collector that carries
  kernel timings and columnar fallbacks from worker processes back to
  the service's ``/v1/metrics``.

See ``docs/observability.md`` for the guided tour.
"""

from repro.obs.aggregate import (
    aggregate_jobs,
    aggregate_jsonl,
    percentile,
    read_jsonl,
    render_cells,
)
from repro.obs.export import (
    chrome_trace,
    phase_rows,
    render_phase_table,
    render_round_timeline,
    render_telemetry,
    rows_from_events,
    telemetry_summary,
)
from repro.obs.sinks import (
    JsonlStreamSink,
    MultiSink,
    NullSink,
    RingBufferSink,
    RoundSeriesSink,
    TelemetrySink,
)
from repro.obs.spans import check_span, span, unattributed_rounds
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ReservoirSample,
    RunTelemetry,
    TraceContext,
    collect_run_telemetry,
    current_collector,
    global_registry,
    new_trace_id,
    reset_global_registry,
)
from repro.simulator.instrument import (
    RoundProfile,
    install_outcome_emitter,
    install_sink,
)
from repro.simulator.metrics import SpanNode

__all__ = [
    "aggregate_jobs",
    "aggregate_jsonl",
    "percentile",
    "read_jsonl",
    "render_cells",
    "chrome_trace",
    "phase_rows",
    "render_phase_table",
    "render_round_timeline",
    "render_telemetry",
    "rows_from_events",
    "telemetry_summary",
    "JsonlStreamSink",
    "MultiSink",
    "NullSink",
    "RingBufferSink",
    "RoundSeriesSink",
    "TelemetrySink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ReservoirSample",
    "RunTelemetry",
    "TraceContext",
    "collect_run_telemetry",
    "current_collector",
    "global_registry",
    "new_trace_id",
    "reset_global_registry",
    "check_span",
    "span",
    "unattributed_rounds",
    "RoundProfile",
    "install_outcome_emitter",
    "install_sink",
    "SpanNode",
]
