"""Span-based phase attribution for composed algorithms.

The paper's pipelines compose sub-protocols — good-nodes flags, an MIS
black box, ``t`` boosting phases, a pop stage — and a bare
:class:`~repro.simulator.metrics.RunMetrics` merge forgets *which* phase
spent the rounds.  A :class:`span` is a tiny accumulator that algorithms
wrap around their composition code: every sub-result added to it becomes
a named child of the phase tree, and the finished tree travels on
``RunMetrics.span`` (so it survives pickling to batch workers and the
JSON disk cache).

Usage pattern::

    with span("boost") as sp:
        for i in range(t):
            result = inner(residual, seed=...)
            sp.add(result.metrics, name=f"push[{i}]")
            sp.add_rounds(1, name="reduce-broadcast")
        sp.add_rounds(len(stack), name="pop")
    metrics = sp.metrics()          # RunMetrics with the span tree attached

Attribution rules (what keeps phases summing to ``RunMetrics.rounds``):

* ``add(m)`` folds ``m`` into the span sequentially (``merge``);
  ``add(m, parallel=True)`` overlaps it with the *preceding sibling* (it
  starts in the round that sibling started), and the child is marked
  ``mode="par"``.  Rounds follow that schedule exactly — the same replay
  :func:`check_span` uses — so totals and attribution cannot drift, even
  when a zero-round phase sits between the overlapped siblings.
* If ``m`` already carries a span tree (the callee was instrumented), the
  tree is adopted as the child — nested instrumentation composes without
  double counting, because a callee's tree arrives only via its returned
  metrics, never through an ambient registry.  A ``name`` differing from
  the adopted tree's own wraps it in a named node.
* An uninstrumented ``m`` becomes a leaf child named ``name`` (or
  ``"(run)"``), so a span's totals *always* equal the fold of its
  children — :func:`check_span` asserts exactly that.
* ``add_rounds(k, name=...)`` charges coordination rounds that have no
  simulator run behind them (announcement/pop rounds) as a leaf child.
* :func:`leaf_metrics` names a single bare simulator run without the
  ceremony of a one-child span.

Spans never consult global state, so they are deterministic, thread-safe,
and worker-process-safe by construction; only ``wall_seconds`` (measured
over the ``with`` block) varies between identical runs, and it is excluded
from ``RunMetrics.as_tuple()`` determinism signatures.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional

from repro.simulator.metrics import RunMetrics, SpanNode

__all__ = ["span", "leaf_metrics", "check_span", "unattributed_rounds"]


def _node_from(metrics: RunMetrics, name: str, *, wall_seconds: float = 0.0,
               mode: str = "seq",
               children: tuple = ()) -> SpanNode:
    return SpanNode(
        name=name,
        rounds=metrics.rounds,
        messages=metrics.messages,
        total_bits=metrics.total_bits,
        dropped_messages=metrics.dropped_messages,
        dropped_bits=metrics.dropped_bits,
        wall_seconds=wall_seconds,
        mode=mode,
        children=children,
        fault_dropped_messages=metrics.fault_dropped_messages,
        fault_dropped_bits=metrics.fault_dropped_bits,
        fault_delayed_messages=metrics.fault_delayed_messages,
        fault_duplicated_messages=metrics.fault_duplicated_messages,
    )


def leaf_metrics(metrics: RunMetrics, name: str,
                 wall_seconds: float = 0.0) -> RunMetrics:
    """A copy of ``metrics`` carrying a single named leaf span.

    For algorithms whose whole cost is one simulator run (the MIS black
    boxes): callers adopting the result see one leaf, not a one-child
    wrapper tree.
    """
    return RunMetrics(
        rounds=metrics.rounds,
        messages=metrics.messages,
        total_bits=metrics.total_bits,
        max_message_bits=metrics.max_message_bits,
        dropped_messages=metrics.dropped_messages,
        dropped_bits=metrics.dropped_bits,
        violations=list(metrics.violations),
        span=_node_from(metrics, name, wall_seconds=wall_seconds),
        fault_dropped_messages=metrics.fault_dropped_messages,
        fault_dropped_bits=metrics.fault_dropped_bits,
        fault_delayed_messages=metrics.fault_delayed_messages,
        fault_duplicated_messages=metrics.fault_duplicated_messages,
        crashed_nodes=metrics.crashed_nodes,
        restarted_nodes=metrics.restarted_nodes,
    )


class span:
    """Accumulate a named phase's metrics and children (see module doc)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._children: List[SpanNode] = []
        self._acc = RunMetrics()
        # The seq/par schedule replay, kept in lockstep with
        # _fold_children so the accumulated totals always satisfy
        # check_span: _cursor is the end of the schedule so far,
        # _prev_start is where the previous child started (a "par" child
        # starts there, overlapping its predecessor).
        self._cursor = 0
        self._prev_start = 0
        self._start: Optional[float] = None
        self._wall = 0.0
        self.node: Optional[SpanNode] = None

    def __enter__(self) -> "span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is not None:
            self._wall = time.perf_counter() - self._start
        self.node = self._build()

    def add(self, metrics: RunMetrics, *, name: Optional[str] = None,
            parallel: bool = False) -> None:
        """Fold a sub-result's metrics into this span (see module doc)."""
        self._acc = (self._acc.merge_parallel(metrics) if parallel
                     else self._acc.merge(metrics))
        # merge_parallel maxes rounds against the *whole* accumulation,
        # which disagrees with the fold's schedule whenever the previous
        # sibling did not start at round 0 (e.g. a zero-round phase moved
        # prev_start forward).  Replay the schedule instead, so totals
        # and attribution can never drift apart.
        start = self._prev_start if parallel else self._cursor
        self._prev_start = start
        self._cursor = max(self._cursor, start + metrics.rounds)
        self._acc.rounds = self._cursor
        mode = "par" if parallel else "seq"
        child = metrics.span
        if child is None:
            child = _node_from(metrics, name or "(run)", mode=mode)
        elif name is not None and name != child.name:
            child = _node_from(metrics, name, wall_seconds=child.wall_seconds,
                               mode=mode, children=(child,))
        else:
            child = replace(child, mode=mode)
        self._children.append(child)

    def add_parallel(self, metrics: RunMetrics, *,
                     name: Optional[str] = None) -> None:
        """``add(..., parallel=True)`` — overlaps the preceding phases."""
        self.add(metrics, name=name, parallel=True)

    def add_rounds(self, k: int, *, name: str = "(coordination)") -> None:
        """Charge ``k`` communication-only rounds as a leaf child."""
        if k <= 0:
            return
        self._prev_start = self._cursor
        self._cursor += k
        self._acc.add_rounds(k)
        self._children.append(SpanNode(name=name, rounds=k))

    def _build(self) -> SpanNode:
        return _node_from(self._acc, self.name, wall_seconds=self._wall,
                          children=tuple(self._children))

    def metrics(self) -> RunMetrics:
        """The accumulated :class:`RunMetrics`, span tree attached."""
        m = self._acc
        return RunMetrics(
            rounds=m.rounds,
            messages=m.messages,
            total_bits=m.total_bits,
            max_message_bits=m.max_message_bits,
            dropped_messages=m.dropped_messages,
            dropped_bits=m.dropped_bits,
            violations=list(m.violations),
            span=self.node if self.node is not None else self._build(),
            fault_dropped_messages=m.fault_dropped_messages,
            fault_dropped_bits=m.fault_dropped_bits,
            fault_delayed_messages=m.fault_delayed_messages,
            fault_duplicated_messages=m.fault_duplicated_messages,
            crashed_nodes=m.crashed_nodes,
            restarted_nodes=m.restarted_nodes,
        )


def _fold_children(node: SpanNode) -> RunMetrics:
    """Replay the children's seq/par schedule; the parent's totals should
    match when every contribution went through a child."""
    acc = RunMetrics()
    cursor = 0          # end of the sequential schedule so far
    prev_start = 0      # where the previous sibling started
    messages = bits = drops = drop_bits = 0
    f_drops = f_drop_bits = f_delays = f_dups = 0
    for child in node.children:
        start = prev_start if child.mode == "par" else cursor
        prev_start = start
        cursor = max(cursor, start + child.rounds)
        messages += child.messages
        bits += child.total_bits
        drops += child.dropped_messages
        drop_bits += child.dropped_bits
        f_drops += child.fault_dropped_messages
        f_drop_bits += child.fault_dropped_bits
        f_delays += child.fault_delayed_messages
        f_dups += child.fault_duplicated_messages
    acc.rounds = cursor
    acc.messages = messages
    acc.total_bits = bits
    acc.dropped_messages = drops
    acc.dropped_bits = drop_bits
    acc.fault_dropped_messages = f_drops
    acc.fault_dropped_bits = f_drop_bits
    acc.fault_delayed_messages = f_delays
    acc.fault_duplicated_messages = f_dups
    return acc


def unattributed_rounds(node: SpanNode) -> int:
    """Rounds of ``node`` not covered by its children (0 for leaves and
    for fully instrumented spans)."""
    if not node.children:
        return 0
    return node.rounds - _fold_children(node).rounds


def check_span(node: SpanNode) -> None:
    """Assert the attribution invariant on a whole tree.

    Every non-leaf node's totals must equal the fold of its children under
    their declared seq/par schedule — i.e. phase rounds sum (and parallel
    phases max) back to the parent, with nothing lost or double counted.
    Raises ``AssertionError`` with the offending span's name otherwise.
    """
    for sub, _depth in node.walk():
        if not sub.children:
            continue
        fold = _fold_children(sub)
        got = (sub.rounds, sub.messages, sub.total_bits,
               sub.dropped_messages, sub.dropped_bits) + sub.fault_counts
        want = (fold.rounds, fold.messages, fold.total_bits,
                fold.dropped_messages, fold.dropped_bits) + fold.fault_counts[:4]
        assert got == want, (
            f"span {sub.name!r}: totals {got} != children fold {want}"
        )
