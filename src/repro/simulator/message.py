"""Message payload encoding and bit accounting.

CONGEST statements are about *bits per message*, so the simulator needs a
deterministic encoded-size function.  Payloads are restricted to a small
JSON-like vocabulary — ``None``, ``bool``, ``int``, ``float``, ``str`` and
(nested) tuples/lists of those — and charged as follows:

* ``None`` / ``bool``: 1 bit;
* ``int``: sign bit + magnitude bits (``max(1, bit_length)``);
* ``float``: 64 bits (IEEE double);
* ``str``: an 8-bit length prefix plus 8 bits per byte of UTF-8;
* sequence: 8 framing bits plus, per element, a 2-bit tag and the
  element's cost.

The model stays within a small constant factor of the concrete
self-delimiting encoding in :mod:`repro.simulator.codec` (property-tested
in ``tests/test_simulator/test_codec.py``); for the paper's purposes only
the ``Θ(log n)`` scale matters.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ProtocolError

__all__ = ["payload_bits", "validate_payload"]

_SCALARS = (type(None), bool, int, float, str)


def validate_payload(payload: Any) -> None:
    """Reject payload types the bit accountant cannot encode."""
    if isinstance(payload, _SCALARS):
        return
    if isinstance(payload, (tuple, list)):
        for item in payload:
            validate_payload(item)
        return
    raise ProtocolError(
        f"unsupported message payload type {type(payload).__name__}; "
        "use None/bool/int/float/str and tuples of those"
    )


def payload_bits(payload: Any) -> int:
    """Encoded size of ``payload`` in bits (see module docstring).

    This is the simulator's hottest function (once per charged message),
    so the common concrete types are dispatched on ``type()`` before the
    general ``isinstance`` path that still handles subclasses (bools,
    IntEnums, ...) exactly as before.
    """
    t = type(payload)
    if t is int:
        return 1 + max(1, payload.bit_length())
    if t is tuple or t is list:
        bits = 8
        for item in payload:
            bits += 2 + payload_bits(item)
        return bits
    if t is bool or payload is None:
        return 1
    if t is float:
        return 64
    if t is str:
        return 8 + 8 * len(payload.encode("utf-8"))
    # Subclass fallback: byte-identical accounting to the original
    # isinstance chain (bool before int, so True costs 1 bit).
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 1 + max(1, payload.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 + 8 * len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return 8 + sum(2 + payload_bits(item) for item in payload)
    raise ProtocolError(
        f"unsupported message payload type {type(payload).__name__}"
    )
