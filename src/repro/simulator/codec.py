"""A concrete payload codec backing the bit accounting.

:func:`repro.simulator.message.payload_bits` charges messages by a
simple cost model; this module provides an actual self-delimiting binary
encoding so the model is falsifiable: the property tests check that every
payload round-trips and that the charged size tracks the real encoded
size within a small constant factor.

Format (big-endian bit packing, byte-aligned per payload):

========  =============================================
tag (3b)  body
========  =============================================
0         None
1         bool (1 bit)
2         int: 1 sign bit, 6-bit length L, L-bit magnitude chunks*
3         float (64-bit IEEE)
4         str: 16-bit byte length + UTF-8 bytes
5         sequence: 16-bit element count + encoded elements
========  =============================================

(*) magnitude is encoded as a 6-bit bit-length prefix per 63-bit chunk;
ints up to ``2^63`` use one chunk, which covers everything the library
sends.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.exceptions import ProtocolError

__all__ = ["encode_payload", "decode_payload", "encoded_bits"]

_T_NONE, _T_BOOL, _T_INT, _T_FLOAT, _T_STR, _T_SEQ = range(6)

_MAX_INT_BITS = 63
_MAX_SEQ = (1 << 16) - 1


class _BitWriter:
    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        for i in reversed(range(width)):
            self._bits.append((value >> i) & 1)

    def write_bytes(self, data: bytes) -> None:
        for b in data:
            self.write(b, 8)

    def getvalue(self) -> bytes:
        bits = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for b in bits[i:i + 8]:
                byte = (byte << 1) | b
            out.append(byte)
        return bytes(out)

    @property
    def bit_length(self) -> int:
        return len(self._bits)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - self._pos % 8)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read(8) for _ in range(count))


def _encode_into(writer: _BitWriter, payload: Any) -> None:
    if payload is None:
        writer.write(_T_NONE, 3)
    elif isinstance(payload, bool):
        writer.write(_T_BOOL, 3)
        writer.write(int(payload), 1)
    elif isinstance(payload, int):
        if abs(payload) >= 1 << _MAX_INT_BITS:
            raise ProtocolError(f"int too large for codec: {payload}")
        writer.write(_T_INT, 3)
        writer.write(1 if payload < 0 else 0, 1)
        magnitude = abs(payload)
        width = max(1, magnitude.bit_length())
        writer.write(width, 6)
        writer.write(magnitude, width)
    elif isinstance(payload, float):
        writer.write(_T_FLOAT, 3)
        writer.write_bytes(struct.pack(">d", payload))
    elif isinstance(payload, str):
        raw = payload.encode("utf-8")
        if len(raw) > _MAX_SEQ:
            raise ProtocolError("string too long for codec")
        writer.write(_T_STR, 3)
        writer.write(len(raw), 16)
        writer.write_bytes(raw)
    elif isinstance(payload, (tuple, list)):
        if len(payload) > _MAX_SEQ:
            raise ProtocolError("sequence too long for codec")
        writer.write(_T_SEQ, 3)
        writer.write(len(payload), 16)
        for item in payload:
            _encode_into(writer, item)
    else:
        raise ProtocolError(
            f"unsupported payload type {type(payload).__name__}"
        )


def _decode_from(reader: _BitReader) -> Any:
    tag = reader.read(3)
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        return bool(reader.read(1))
    if tag == _T_INT:
        negative = reader.read(1)
        width = reader.read(6)
        magnitude = reader.read(width)
        return -magnitude if negative else magnitude
    if tag == _T_FLOAT:
        return struct.unpack(">d", reader.read_bytes(8))[0]
    if tag == _T_STR:
        length = reader.read(16)
        return reader.read_bytes(length).decode("utf-8")
    if tag == _T_SEQ:
        count = reader.read(16)
        return tuple(_decode_from(reader) for _ in range(count))
    raise ProtocolError(f"bad tag {tag}")


def encode_payload(payload: Any) -> bytes:
    """Serialize a message payload to bytes (sequences come back as tuples)."""
    writer = _BitWriter()
    _encode_into(writer, payload)
    return writer.getvalue()


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return _decode_from(_BitReader(data))


def encoded_bits(payload: Any) -> int:
    """Exact bit length of the real encoding (before byte padding)."""
    writer = _BitWriter()
    _encode_into(writer, payload)
    return writer.bit_length
