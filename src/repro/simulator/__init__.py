"""Executable CONGEST/LOCAL model: synchronous rounds, per-message bit
accounting, per-node private randomness, and exact round metrics."""

from repro.registry import algorithm_registry
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.batch import (
    BatchJob,
    BatchResult,
    JobOutcome,
    batch_run,
    derive_job_seeds,
    run_job,
)
from repro.simulator.context import NodeContext
from repro.simulator.instrument import (
    RoundProfile,
    ambient_fault_plan,
    install_faults,
    install_outcome_emitter,
    install_sink,
)
from repro.simulator.message import payload_bits, validate_payload
from repro.simulator.metrics import BandwidthViolation, RunMetrics, SpanNode
from repro.simulator.models import BandwidthPolicy, CommunicationModel
from repro.simulator.network import Network, default_n_bound
from repro.simulator.randomness import derive_seed, spawn_node_rngs
from repro.simulator.runner import RunResult, run
from repro.simulator.tracing import Trace, TraceEvent

__all__ = [
    "NodeAlgorithm",
    "BatchJob",
    "BatchResult",
    "JobOutcome",
    "algorithm_registry",
    "batch_run",
    "run_job",
    "derive_job_seeds",
    "NodeContext",
    "RoundProfile",
    "ambient_fault_plan",
    "install_faults",
    "install_outcome_emitter",
    "install_sink",
    "payload_bits",
    "validate_payload",
    "BandwidthViolation",
    "RunMetrics",
    "SpanNode",
    "BandwidthPolicy",
    "CommunicationModel",
    "Network",
    "default_n_bound",
    "derive_seed",
    "spawn_node_rngs",
    "RunResult",
    "run",
    "Trace",
    "TraceEvent",
]
