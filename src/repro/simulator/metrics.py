"""Run metrics: the quantities the paper's theorems are *about*.

Round counts are the headline (Theorems 1–5 are round-complexity claims);
message counts, total bits, and the largest single message are recorded so
CONGEST conformance is auditable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["BandwidthViolation", "RunMetrics"]


@dataclass(frozen=True)
class BandwidthViolation:
    """One over-budget message observed in audit (non-strict) mode."""

    round_index: int
    sender: int
    receiver: int
    bits: int
    budget: int


@dataclass
class RunMetrics:
    """Aggregate statistics of one simulation run."""

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    violations: List[BandwidthViolation] = field(default_factory=list)

    def record_message(self, bits: int) -> None:
        self.messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Sequential composition: rounds add, traffic adds."""
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            violations=self.violations + other.violations,
        )
        return merged

    def add_rounds(self, k: int) -> None:
        """Charge ``k`` extra rounds (inter-phase coordination steps)."""
        self.rounds += k

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.rounds, self.messages, self.total_bits,
                self.max_message_bits, len(self.violations))
