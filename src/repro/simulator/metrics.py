"""Run metrics: the quantities the paper's theorems are *about*.

Round counts are the headline (Theorems 1–5 are round-complexity claims);
message counts, total bits, and the largest single message are recorded so
CONGEST conformance is auditable after the fact.  Messages addressed to a
node that halted in the same round are still *charged* (they were put on
the wire) but never delivered; they are counted separately so audits can
reconcile ``total_bits == delivered bits + dropped_bits``.

Injected faults (see :mod:`repro.faults`) get their own counters, kept
strictly separate from the halted-receiver drops above: a fault-dropped
or crash-dropped message was also charged on the wire but lost to the
*network*, not to protocol semantics, so the audit identity becomes
``total_bits == delivered_bits + dropped_bits + fault_dropped_bits``.
Fault-free runs leave every fault counter at zero and serialize exactly
as before (the fault keys are omitted from :meth:`RunMetrics.to_dict`
when zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["BandwidthViolation", "SpanNode", "RunMetrics"]


@dataclass(frozen=True)
class BandwidthViolation:
    """One over-budget message observed in audit (non-strict) mode."""

    round_index: int
    sender: int
    receiver: int
    bits: int
    budget: int


@dataclass(frozen=True)
class SpanNode:
    """One node of a phase-attribution tree.

    A span names a phase of a composed algorithm and carries the share of
    the run's cost attributed to it.  ``mode`` says how the span composes
    with its *preceding sibling*: ``"seq"`` starts after the previous
    sibling finished (rounds add), ``"par"`` starts alongside it (rounds
    overlap, traffic still adds) — mirroring
    :meth:`RunMetrics.merge` / :meth:`RunMetrics.merge_parallel`.

    Invariant kept by :class:`repro.obs.spans.span`: a node either has no
    children (a leaf phase) or its totals equal the ordered fold of its
    children, so phase rounds always sum back to ``RunMetrics.rounds``.
    """

    name: str
    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    dropped_messages: int = 0
    dropped_bits: int = 0
    wall_seconds: float = 0.0
    mode: str = "seq"
    children: Tuple["SpanNode", ...] = ()
    # Injected-fault activity attributed to this phase (zero when the
    # phase ran fault-free; keys omitted from to_dict() when zero so
    # fault-free trees serialize exactly as before).
    fault_dropped_messages: int = 0
    fault_dropped_bits: int = 0
    fault_delayed_messages: int = 0
    fault_duplicated_messages: int = 0

    def walk(self, depth: int = 0) -> Iterator[Tuple["SpanNode", int]]:
        """Depth-first (self, depth) traversal."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    @property
    def fault_counts(self) -> Tuple[int, int, int, int]:
        return (self.fault_dropped_messages, self.fault_dropped_bits,
                self.fault_delayed_messages, self.fault_duplicated_messages)

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "name": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "dropped_messages": self.dropped_messages,
            "dropped_bits": self.dropped_bits,
            "wall_seconds": self.wall_seconds,
            "mode": self.mode,
        }
        if any(self.fault_counts):
            doc["fault_dropped_messages"] = self.fault_dropped_messages
            doc["fault_dropped_bits"] = self.fault_dropped_bits
            doc["fault_delayed_messages"] = self.fault_delayed_messages
            doc["fault_duplicated_messages"] = self.fault_duplicated_messages
        doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "SpanNode":
        return SpanNode(
            name=str(doc.get("name", "")),
            rounds=int(doc.get("rounds", 0)),
            messages=int(doc.get("messages", 0)),
            total_bits=int(doc.get("total_bits", 0)),
            dropped_messages=int(doc.get("dropped_messages", 0)),
            dropped_bits=int(doc.get("dropped_bits", 0)),
            wall_seconds=float(doc.get("wall_seconds", 0.0)),
            mode=str(doc.get("mode", "seq")),
            children=tuple(SpanNode.from_dict(c) for c in doc.get("children", [])),
            fault_dropped_messages=int(doc.get("fault_dropped_messages", 0)),
            fault_dropped_bits=int(doc.get("fault_dropped_bits", 0)),
            fault_delayed_messages=int(doc.get("fault_delayed_messages", 0)),
            fault_duplicated_messages=int(doc.get("fault_duplicated_messages", 0)),
        )


@dataclass
class RunMetrics:
    """Aggregate statistics of one simulation run."""

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    dropped_messages: int = 0
    dropped_bits: int = 0
    violations: List[BandwidthViolation] = field(default_factory=list)
    # Phase-attribution tree, attached by instrumented algorithms (see
    # repro.obs.spans).  Deliberately excluded from as_tuple(): the tree
    # carries wall-clock seconds, which are not deterministic.
    span: Optional[SpanNode] = None
    # Injected-fault accounting (repro.faults): messages lost to the
    # network or a crashed receiver, deferred deliveries, extra copies,
    # and fail-stop events.  All zero in fault-free runs.
    fault_dropped_messages: int = 0
    fault_dropped_bits: int = 0
    fault_delayed_messages: int = 0
    fault_duplicated_messages: int = 0
    crashed_nodes: int = 0
    restarted_nodes: int = 0

    def record_message(self, bits: int) -> None:
        self.messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def record_drop(self, bits: int) -> None:
        """Charge a message whose receiver halted before delivery."""
        self.dropped_messages += 1
        self.dropped_bits += bits

    def record_fault_drop(self, bits: int) -> None:
        """Charge a message copy lost to the network or a down receiver."""
        self.fault_dropped_messages += 1
        self.fault_dropped_bits += bits

    def record_fault_delay(self) -> None:
        """Count a copy delivered later than the synchronous round."""
        self.fault_delayed_messages += 1

    def record_fault_duplicate(self, bits: int) -> None:
        """An injected extra copy: charged on the wire like any message."""
        self.record_message(bits)
        self.fault_duplicated_messages += 1

    def record_crash(self) -> None:
        self.crashed_nodes += 1

    def record_restart(self) -> None:
        self.restarted_nodes += 1

    @property
    def delivered_bits(self) -> int:
        """Bits that actually reached a receiver: charged minus dropped
        (both protocol drops and injected fault/crash drops)."""
        return self.total_bits - self.dropped_bits - self.fault_dropped_bits

    @property
    def fault_counts(self) -> Tuple[int, int, int, int, int, int]:
        return (self.fault_dropped_messages, self.fault_dropped_bits,
                self.fault_delayed_messages, self.fault_duplicated_messages,
                self.crashed_nodes, self.restarted_nodes)

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Sequential composition: rounds add, traffic adds.

        Use for phases that run one after another on the wire (phase 2
        starts only after phase 1 halted).  For phases that overlap in
        time, use :meth:`merge_parallel`.

        The merged metrics carry no span tree: attribution across a merge
        is rebuilt by :class:`repro.obs.spans.span`, which knows the phase
        names; a bare merge cannot.
        """
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            dropped_messages=self.dropped_messages + other.dropped_messages,
            dropped_bits=self.dropped_bits + other.dropped_bits,
            violations=self.violations + other.violations,
            fault_dropped_messages=(self.fault_dropped_messages
                                    + other.fault_dropped_messages),
            fault_dropped_bits=self.fault_dropped_bits + other.fault_dropped_bits,
            fault_delayed_messages=(self.fault_delayed_messages
                                    + other.fault_delayed_messages),
            fault_duplicated_messages=(self.fault_duplicated_messages
                                       + other.fault_duplicated_messages),
            crashed_nodes=self.crashed_nodes + other.crashed_nodes,
            restarted_nodes=self.restarted_nodes + other.restarted_nodes,
        )
        return merged

    def merge_parallel(self, other: "RunMetrics") -> "RunMetrics":
        """Concurrent composition: rounds take the max, traffic adds.

        Use when the two executions overlap in time — e.g. sub-protocols
        scheduled in the same rounds, or independent jobs of a batch sweep
        running side by side.  Traffic still adds (every message crosses
        the wire exactly once) but wall-clock rounds are dominated by the
        slower execution, not the sum.
        """
        merged = RunMetrics(
            rounds=max(self.rounds, other.rounds),
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            dropped_messages=self.dropped_messages + other.dropped_messages,
            dropped_bits=self.dropped_bits + other.dropped_bits,
            violations=self.violations + other.violations,
            fault_dropped_messages=(self.fault_dropped_messages
                                    + other.fault_dropped_messages),
            fault_dropped_bits=self.fault_dropped_bits + other.fault_dropped_bits,
            fault_delayed_messages=(self.fault_delayed_messages
                                    + other.fault_delayed_messages),
            fault_duplicated_messages=(self.fault_duplicated_messages
                                       + other.fault_duplicated_messages),
            crashed_nodes=self.crashed_nodes + other.crashed_nodes,
            restarted_nodes=self.restarted_nodes + other.restarted_nodes,
        )
        return merged

    def add_rounds(self, k: int) -> None:
        """Charge ``k`` extra rounds (inter-phase coordination steps)."""
        self.rounds += k

    def as_tuple(self) -> Tuple[int, ...]:
        """The determinism signature.

        Fault counters extend the tuple only when nonzero, so fault-free
        runs keep the legacy 7-tuple (signatures persisted before this
        feature stay comparable) while any injected fault is guaranteed
        to change the signature.
        """
        base = (self.rounds, self.messages, self.total_bits,
                self.max_message_bits, self.dropped_messages,
                self.dropped_bits, len(self.violations))
        if any(self.fault_counts):
            return base + self.fault_counts
        return base

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (used by the batch engine's disk cache).

        Fault counters are omitted when all zero so fault-free runs
        serialize byte-identically to the pre-fault format.
        """
        doc: Dict[str, Any] = {
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "dropped_messages": self.dropped_messages,
            "dropped_bits": self.dropped_bits,
            "violations": [
                [v.round_index, v.sender, v.receiver, v.bits, v.budget]
                for v in self.violations
            ],
        }
        if any(self.fault_counts):
            doc["fault_dropped_messages"] = self.fault_dropped_messages
            doc["fault_dropped_bits"] = self.fault_dropped_bits
            doc["fault_delayed_messages"] = self.fault_delayed_messages
            doc["fault_duplicated_messages"] = self.fault_duplicated_messages
            doc["crashed_nodes"] = self.crashed_nodes
            doc["restarted_nodes"] = self.restarted_nodes
        if self.span is not None:
            doc["span"] = self.span.to_dict()
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "RunMetrics":
        """Inverse of :meth:`to_dict`."""
        return RunMetrics(
            rounds=int(doc.get("rounds", 0)),
            messages=int(doc.get("messages", 0)),
            total_bits=int(doc.get("total_bits", 0)),
            max_message_bits=int(doc.get("max_message_bits", 0)),
            dropped_messages=int(doc.get("dropped_messages", 0)),
            dropped_bits=int(doc.get("dropped_bits", 0)),
            violations=[
                BandwidthViolation(*entry) for entry in doc.get("violations", [])
            ],
            span=(SpanNode.from_dict(doc["span"])
                  if doc.get("span") is not None else None),
            fault_dropped_messages=int(doc.get("fault_dropped_messages", 0)),
            fault_dropped_bits=int(doc.get("fault_dropped_bits", 0)),
            fault_delayed_messages=int(doc.get("fault_delayed_messages", 0)),
            fault_duplicated_messages=int(doc.get("fault_duplicated_messages", 0)),
            crashed_nodes=int(doc.get("crashed_nodes", 0)),
            restarted_nodes=int(doc.get("restarted_nodes", 0)),
        )
