"""Run metrics: the quantities the paper's theorems are *about*.

Round counts are the headline (Theorems 1–5 are round-complexity claims);
message counts, total bits, and the largest single message are recorded so
CONGEST conformance is auditable after the fact.  Messages addressed to a
node that halted in the same round are still *charged* (they were put on
the wire) but never delivered; they are counted separately so audits can
reconcile ``total_bits == delivered bits + dropped_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["BandwidthViolation", "SpanNode", "RunMetrics"]


@dataclass(frozen=True)
class BandwidthViolation:
    """One over-budget message observed in audit (non-strict) mode."""

    round_index: int
    sender: int
    receiver: int
    bits: int
    budget: int


@dataclass(frozen=True)
class SpanNode:
    """One node of a phase-attribution tree.

    A span names a phase of a composed algorithm and carries the share of
    the run's cost attributed to it.  ``mode`` says how the span composes
    with its *preceding sibling*: ``"seq"`` starts after the previous
    sibling finished (rounds add), ``"par"`` starts alongside it (rounds
    overlap, traffic still adds) — mirroring
    :meth:`RunMetrics.merge` / :meth:`RunMetrics.merge_parallel`.

    Invariant kept by :class:`repro.obs.spans.span`: a node either has no
    children (a leaf phase) or its totals equal the ordered fold of its
    children, so phase rounds always sum back to ``RunMetrics.rounds``.
    """

    name: str
    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    dropped_messages: int = 0
    dropped_bits: int = 0
    wall_seconds: float = 0.0
    mode: str = "seq"
    children: Tuple["SpanNode", ...] = ()

    def walk(self, depth: int = 0) -> Iterator[Tuple["SpanNode", int]]:
        """Depth-first (self, depth) traversal."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "dropped_messages": self.dropped_messages,
            "dropped_bits": self.dropped_bits,
            "wall_seconds": self.wall_seconds,
            "mode": self.mode,
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "SpanNode":
        return SpanNode(
            name=str(doc.get("name", "")),
            rounds=int(doc.get("rounds", 0)),
            messages=int(doc.get("messages", 0)),
            total_bits=int(doc.get("total_bits", 0)),
            dropped_messages=int(doc.get("dropped_messages", 0)),
            dropped_bits=int(doc.get("dropped_bits", 0)),
            wall_seconds=float(doc.get("wall_seconds", 0.0)),
            mode=str(doc.get("mode", "seq")),
            children=tuple(SpanNode.from_dict(c) for c in doc.get("children", [])),
        )


@dataclass
class RunMetrics:
    """Aggregate statistics of one simulation run."""

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    dropped_messages: int = 0
    dropped_bits: int = 0
    violations: List[BandwidthViolation] = field(default_factory=list)
    # Phase-attribution tree, attached by instrumented algorithms (see
    # repro.obs.spans).  Deliberately excluded from as_tuple(): the tree
    # carries wall-clock seconds, which are not deterministic.
    span: Optional[SpanNode] = None

    def record_message(self, bits: int) -> None:
        self.messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def record_drop(self, bits: int) -> None:
        """Charge a message whose receiver halted before delivery."""
        self.dropped_messages += 1
        self.dropped_bits += bits

    @property
    def delivered_bits(self) -> int:
        """Bits that actually reached a receiver: charged minus dropped."""
        return self.total_bits - self.dropped_bits

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Sequential composition: rounds add, traffic adds.

        Use for phases that run one after another on the wire (phase 2
        starts only after phase 1 halted).  For phases that overlap in
        time, use :meth:`merge_parallel`.

        The merged metrics carry no span tree: attribution across a merge
        is rebuilt by :class:`repro.obs.spans.span`, which knows the phase
        names; a bare merge cannot.
        """
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            dropped_messages=self.dropped_messages + other.dropped_messages,
            dropped_bits=self.dropped_bits + other.dropped_bits,
            violations=self.violations + other.violations,
        )
        return merged

    def merge_parallel(self, other: "RunMetrics") -> "RunMetrics":
        """Concurrent composition: rounds take the max, traffic adds.

        Use when the two executions overlap in time — e.g. sub-protocols
        scheduled in the same rounds, or independent jobs of a batch sweep
        running side by side.  Traffic still adds (every message crosses
        the wire exactly once) but wall-clock rounds are dominated by the
        slower execution, not the sum.
        """
        merged = RunMetrics(
            rounds=max(self.rounds, other.rounds),
            messages=self.messages + other.messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            dropped_messages=self.dropped_messages + other.dropped_messages,
            dropped_bits=self.dropped_bits + other.dropped_bits,
            violations=self.violations + other.violations,
        )
        return merged

    def add_rounds(self, k: int) -> None:
        """Charge ``k`` extra rounds (inter-phase coordination steps)."""
        self.rounds += k

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        return (self.rounds, self.messages, self.total_bits,
                self.max_message_bits, self.dropped_messages,
                self.dropped_bits, len(self.violations))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (used by the batch engine's disk cache)."""
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "dropped_messages": self.dropped_messages,
            "dropped_bits": self.dropped_bits,
            "violations": [
                [v.round_index, v.sender, v.receiver, v.bits, v.budget]
                for v in self.violations
            ],
            **({"span": self.span.to_dict()} if self.span is not None else {}),
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "RunMetrics":
        """Inverse of :meth:`to_dict`."""
        return RunMetrics(
            rounds=int(doc.get("rounds", 0)),
            messages=int(doc.get("messages", 0)),
            total_bits=int(doc.get("total_bits", 0)),
            max_message_bits=int(doc.get("max_message_bits", 0)),
            dropped_messages=int(doc.get("dropped_messages", 0)),
            dropped_bits=int(doc.get("dropped_bits", 0)),
            violations=[
                BandwidthViolation(*entry) for entry in doc.get("violations", [])
            ],
            span=(SpanNode.from_dict(doc["span"])
                  if doc.get("span") is not None else None),
        )
