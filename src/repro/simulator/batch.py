"""Batch-execution engine: fan ``(graph, algorithm, seed)`` jobs out.

The experiments in DESIGN.md validate w.h.p. claims over seed sweeps —
hundreds of independent simulator runs that the rest of the codebase used
to execute one at a time.  This module runs such a sweep across worker
processes while keeping the three properties the test-suite depends on:

* **Determinism.** Per-job seeds are derived up front from one master
  :class:`numpy.random.SeedSequence` (``SeedSequence(master).spawn(k)``,
  one 32-bit word per child), so the result of a sweep depends only on
  the master seed and the job list — never on worker scheduling.  With
  ``n_jobs=1`` jobs run in-process through the *same* code path, so the
  parallel and serial paths are bit-for-bit identical.
* **Failure isolation.** A job that raises is captured as a failed
  :class:`JobOutcome` (error string preserved); the sweep always returns
  one outcome per job.
* **Memoization.** With ``cache_dir`` set, completed jobs are written to
  disk as JSON keyed by ``sha256(graph fingerprint | algorithm name |
  seed | bandwidth policy | params)``; re-running a sweep only pays for
  jobs it has not seen.  Failed jobs are never cached.

Algorithms are usually named (see :func:`repro.registry.algorithm_registry`)
so that workers resolve the callable on their side of the process boundary;
a job may also carry a picklable callable directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.store import GraphRef
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs.telemetry import collect_run_telemetry
from repro.registry import AlgorithmFn
from repro.registry import algorithm_registry as _algorithm_registry
from repro.simulator.instrument import (install_backend, install_faults,
                                        outcome_emitters)
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy

__all__ = [
    "BatchJob",
    "JobOutcome",
    "BatchResult",
    "batch_run",
    "run_job",
    "derive_job_seeds",
    "cache_key_for",
    "cached_outcome_for",
    "job_cache_key",
    "algorithm_registry",
]


def __getattr__(name: str) -> Any:
    # The registry moved to repro.registry (it is the public catalogue of
    # solvers, not a batch-engine detail); keep the old import path alive
    # one deprecation cycle.
    if name == "algorithm_registry":
        warnings.warn(
            "repro.simulator.batch.algorithm_registry moved to "
            "repro.registry.algorithm_registry (also re-exported as "
            "repro.algorithm_registry); this alias will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        return _algorithm_registry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# --------------------------------------------------------------------- #
# job / outcome / result types
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class BatchJob:
    """One unit of work: run ``algorithm`` on ``graph`` with one seed.

    ``algorithm`` is a registry name (resolved inside the worker) or a
    picklable callable with signature ``fn(graph, seed=..., **params)``.
    ``seed=None`` means "derive from the master seed by job position";
    an explicit int is used verbatim, which lets experiments route their
    existing per-trial seeds through the engine unchanged.

    ``graph`` may also be a :class:`~repro.graphs.store.GraphRef`: the
    job then pickles as a few hundred bytes and the executing worker
    attaches the graph zero-copy through its process-global store memo
    (once per graph per worker, not once per job).  Cache keys only use
    ``graph.fingerprint()``, so ref jobs and materialized jobs share
    cache entries bit for bit.
    """

    graph: Union[WeightedGraph, GraphRef]
    algorithm: Union[str, AlgorithmFn]
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    # Optional repro.faults.FaultPlan, installed ambiently around the
    # job's execution so every inner run() of a composed algorithm sees
    # it.  Duck-typed (anything with describe()/begin()) to keep this
    # module import-independent of the faults package.
    faults: Optional[Any] = None
    # Optional execution backend name ("per-node"/"columnar"), installed
    # ambiently around the job so every inner run() of a composed
    # algorithm uses it.  None means the scheduler default (per-node).
    backend: Optional[str] = None

    @property
    def backend_name(self) -> str:
        """Canonical backend name for this job (``"per-node"`` default).

        Unknown strings pass through verbatim so that listing/keying a
        malformed job never raises — the run itself reports the error.
        """
        from repro.simulator.backends import normalize_backend_name

        try:
            return normalize_backend_name(self.backend)
        except ValueError:
            return str(self.backend)

    @property
    def algorithm_name(self) -> str:
        if isinstance(self.algorithm, str):
            name = self.algorithm
        else:
            fn = self.algorithm
            name = (f"{getattr(fn, '__module__', '?')}."
                    f"{getattr(fn, '__qualname__', repr(fn))}")
        backend = self.backend_name
        if backend != "per-node":
            # Sweeps aggregate per (algorithm, backend) cell — the bench
            # matrix shows "mis-det@columnar" next to "mis-det".
            name = f"{name}@{backend}"
        if self.faults is not None:
            # The fault plan is part of the algorithm's identity: sweeps
            # aggregate per (algorithm, fault plan) cell, and the cache
            # must never serve a faulted run for a fault-free request.
            name = f"{name}+{self.faults.describe()}"
        return name


@dataclass(frozen=True)
class JobOutcome:
    """Result of one job: either a solution or a captured failure."""

    index: int
    algorithm: str
    seed: int
    ok: bool
    independent_set: Tuple[int, ...] = ()
    weight: float = 0.0
    metrics: Optional[RunMetrics] = None
    error: str = ""
    cached: bool = False
    seconds: float = 0.0
    label: str = ""
    # JSON-scalar subset of the AlgorithmResult metadata (guarantee_factor,
    # theorem, eps, ...) — what certify_result needs to re-check a returned
    # set against the guarantee the pipeline claimed for it.
    metadata: Dict[str, Any] = field(default_factory=dict)
    # Execution provenance from repro.obs.telemetry (backend run counts,
    # fleet-kernel wall time, fallbacks with reasons, stage timings).
    # Like `cached`/`seconds` it is wall-clock/provenance, not identity:
    # excluded from signature(), to_doc(), equality, and cache entries.
    telemetry: Dict[str, Any] = field(default_factory=dict, compare=False)

    def signature(self) -> Tuple[Any, ...]:
        """Everything deterministic about the outcome (no wall-clock, no
        cache provenance) — what the n_jobs=1 vs n_jobs=4 test compares."""
        return (
            self.index,
            self.algorithm,
            self.seed,
            self.ok,
            self.independent_set,
            self.weight,
            self.metrics.as_tuple() if self.metrics is not None else None,
            self.error,
            tuple(sorted(self.metadata.items())),
        )

    def to_doc(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "ok": self.ok,
            "independent_set": list(self.independent_set),
            "weight": self.weight,
            "metrics": None if self.metrics is None else self.metrics.to_dict(),
            "error": self.error,
            "seconds": self.seconds,
            "label": self.label,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_doc(doc: Dict[str, Any], *, index: int, cached: bool) -> "JobOutcome":
        metrics = doc.get("metrics")
        return JobOutcome(
            index=index,
            algorithm=doc["algorithm"],
            seed=int(doc["seed"]),
            ok=bool(doc["ok"]),
            independent_set=tuple(int(v) for v in doc.get("independent_set", [])),
            weight=float(doc.get("weight", 0.0)),
            metrics=None if metrics is None else RunMetrics.from_dict(metrics),
            error=str(doc.get("error", "")),
            cached=cached,
            seconds=float(doc.get("seconds", 0.0)),
            label=str(doc.get("label", "")),
            metadata=dict(doc.get("metadata") or {}),
        )


@dataclass(frozen=True)
class BatchResult:
    """Aggregate of a sweep: one :class:`JobOutcome` per submitted job."""

    outcomes: Tuple[JobOutcome, ...]
    master_seed: Optional[int] = None

    @property
    def jobs(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> Tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if o.ok)

    @property
    def failures(self) -> Tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def cached_jobs(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def mean_rounds(self) -> float:
        done = [o for o in self.completed if o.metrics is not None]
        if not done:
            return 0.0
        return sum(o.metrics.rounds for o in done) / len(done)

    @property
    def max_rounds(self) -> int:
        done = [o for o in self.completed if o.metrics is not None]
        return max((o.metrics.rounds for o in done), default=0)

    @property
    def total_bits(self) -> int:
        return sum(o.metrics.total_bits for o in self.completed
                   if o.metrics is not None)

    @property
    def total_messages(self) -> int:
        return sum(o.metrics.messages for o in self.completed
                   if o.metrics is not None)

    def metrics_parallel(self) -> RunMetrics:
        """All completed jobs composed as concurrent executions: the
        sweep's rounds are the slowest job's, traffic adds."""
        merged = RunMetrics()
        for o in self.completed:
            if o.metrics is not None:
                merged = merged.merge_parallel(o.metrics)
        return merged

    def signature(self) -> Tuple[Tuple[Any, ...], ...]:
        return tuple(o.signature() for o in self.outcomes)

    def cells(self) -> List[Dict[str, Any]]:
        """Per-(label, algorithm) p50/p95 summaries of the sweep.

        Labels carry the instance identity in multi-instance sweeps (the
        experiments name jobs per graph); a single-instance sweep
        collapses to one cell per algorithm.
        """
        from repro.obs.aggregate import aggregate_jobs

        docs = [{"label": o.label, **o.to_doc()} for o in self.outcomes]
        aggregated = aggregate_jobs(docs)
        return [aggregated[key] for key in sorted(aggregated)]

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly headline numbers (what the CLI prints)."""
        return {
            "jobs": self.jobs,
            "ok": len(self.completed),
            "failed": len(self.failures),
            "cached": self.cached_jobs,
            "mean_rounds": self.mean_rounds,
            "max_rounds": self.max_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "mean_weight": (
                sum(o.weight for o in self.completed) / len(self.completed)
                if self.completed else 0.0
            ),
            "cells": self.cells(),
            "errors": [
                {"index": o.index, "seed": o.seed, "error": o.error}
                for o in self.failures
            ],
        }


# --------------------------------------------------------------------- #
# seeding and cache keys
# --------------------------------------------------------------------- #

def derive_job_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """``count`` independent 32-bit seeds from one master seed.

    Children of ``SeedSequence(master_seed)`` in spawn order; job ``i``
    always gets child ``i``, so the mapping is independent of how many
    workers run the sweep.
    """
    children = np.random.SeedSequence(master_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def _policy_key(policy: Optional[BandwidthPolicy]) -> str:
    if policy is None:
        return "default"
    model = getattr(policy.model, "name", str(policy.model))
    return f"{model}:{policy.factor}:{int(policy.strict)}"


def cache_key_for(*, fingerprint: str, algorithm_name: str, seed: int,
                  policy: Optional[BandwidthPolicy],
                  params: Dict[str, Any],
                  backend_name: str = "per-node") -> str:
    """The on-disk cache key from its raw coordinates.

    Exists so callers that know a fingerprint but hold no graph — the
    incremental re-solve path looking up a *parent's* outcome from a
    delta-form request — can address the cache without materializing
    anything."""
    doc = {
        "fingerprint": fingerprint,
        "algorithm": algorithm_name,
        "seed": seed,
        "policy": _policy_key(policy),
        "params": params,
    }
    if backend_name != "per-node":
        # Only non-default backends enter the key, so every cache entry
        # written before backends existed stays valid.  Backends are
        # byte-identical by contract, but the cache must still never
        # conflate cells: a columnar entry records a columnar run.
        doc["backend"] = backend_name
    blob = json.dumps(doc, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def job_cache_key(job: BatchJob, seed: int,
                  policy: Optional[BandwidthPolicy]) -> str:
    """Hex digest identifying a job for the on-disk cache."""
    return cache_key_for(fingerprint=job.graph.fingerprint(),
                         algorithm_name=job.algorithm_name, seed=seed,
                         policy=policy, params=job.params,
                         backend_name=job.backend_name)


def cached_outcome_for(cache_dir: str, *, fingerprint: str,
                       algorithm_name: str, seed: int,
                       params: Dict[str, Any],
                       policy: Optional[BandwidthPolicy] = None,
                       backend_name: str = "per-node",
                       ) -> Optional[JobOutcome]:
    """Load the cached outcome for raw job coordinates, if present.

    Read-only: never executes anything and never writes cache entries.
    """
    key = cache_key_for(fingerprint=fingerprint,
                        algorithm_name=algorithm_name, seed=seed,
                        policy=policy, params=params,
                        backend_name=backend_name)
    return _cache_load(cache_dir, key, 0)


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.json")


def _binary_cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.bin")


def _binary_min_nodes() -> int:
    """Independent-set size above which an outcome also gets a binary
    cache entry (``REPRO_CACHE_BINARY_MIN``, default 4096).

    Small outcomes stay JSON-only: the blob framing would cost more than
    the ``json.loads`` it saves.  Large ones — the 10⁵–10⁶-node cells —
    parse their chosen-set array as one zero-copy read instead of a list
    of Python ints.
    """
    try:
        return int(os.environ.get("REPRO_CACHE_BINARY_MIN", "4096"))
    except ValueError:
        return 4096


def _cache_load(cache_dir: str, key: str, index: int) -> Optional[JobOutcome]:
    outcome = _binary_cache_load(cache_dir, key, index)
    if outcome is not None:
        return outcome
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    try:
        return JobOutcome.from_doc(doc["outcome"], index=index, cached=True)
    except (KeyError, TypeError, ValueError):
        return None  # corrupt entry: recompute and overwrite


def _binary_cache_load(cache_dir: str, key: str,
                       index: int) -> Optional[JobOutcome]:
    """The binary tier: checked before JSON, torn/corrupt entries fall
    through (the JSON tier, or a recompute, then overwrites them)."""
    try:
        with open(_binary_cache_path(cache_dir, key), "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    from repro import blob

    try:
        meta, arrays = blob.unpack(data)
        if meta.get("kind") != "job_outcome":
            return None
        doc = dict(meta["outcome"])
        doc["independent_set"] = arrays["independent_set"].tolist()
        return JobOutcome.from_doc(doc, index=index, cached=True)
    except (blob.BlobFormatError, KeyError, TypeError, ValueError):
        return None


def _cache_store(cache_dir: str, key: str, outcome: JobOutcome) -> None:
    path = _cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    doc = {"key": key, "outcome": outcome.to_doc()}
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    os.replace(tmp, path)  # atomic on POSIX: concurrent sweeps never see partial files
    if len(outcome.independent_set) >= _binary_min_nodes():
        _binary_cache_store(cache_dir, key, outcome)


def _binary_cache_store(cache_dir: str, key: str, outcome: JobOutcome) -> None:
    from repro import blob

    doc = outcome.to_doc()
    chosen = np.asarray(doc.pop("independent_set"), dtype=np.int64)
    data = blob.pack({"kind": "job_outcome", "key": key, "outcome": doc},
                     [("independent_set", chosen)])
    path = _binary_cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)  # same atomicity contract as the JSON tier


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #

def _scalar_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-scalar subset of an ``AlgorithmResult.metadata`` dict.

    Algorithm metadata carries arbitrary diagnostics (phase logs, sampled
    subgraphs, numpy arrays); only plain scalars survive the JSON cache
    and wire round-trips, and those are exactly the entries the
    certification path consumes (``guarantee_factor``, ``theorem``,
    ``eps``, ``delta``, ...).
    """
    out: Dict[str, Any] = {}
    for key, value in metadata.items():
        if value is None or isinstance(value, (bool, str)):
            out[key] = value
        elif isinstance(value, (int, np.integer)):
            out[key] = int(value)
        elif isinstance(value, (float, np.floating)):
            out[key] = float(value)
    return out


def _execute_job(payload: Tuple[int, BatchJob, int, Optional[BandwidthPolicy]]) -> JobOutcome:
    """Run one job; top-level so ProcessPoolExecutor can pickle it."""
    index, job, seed, policy = payload
    start = time.perf_counter()
    attach_s = 0.0
    # The collector sees every inner run() of composed algorithms on
    # this thread (workers ship the collected doc back inside the
    # pickled outcome); it never touches the result itself.
    with collect_run_telemetry() as collector:
        try:
            if isinstance(job.graph, GraphRef):
                # Zero-copy resolution: the process-global store memo
                # attaches each fingerprint once per worker, so repeat
                # jobs skip graph unpickling entirely.
                t0 = time.perf_counter()
                job = replace(job, graph=job.graph.resolve())
                attach_s = time.perf_counter() - t0
            if isinstance(job.algorithm, str):
                registry = _algorithm_registry()
                if job.algorithm not in registry:
                    raise KeyError(
                        f"unknown algorithm {job.algorithm!r}; "
                        f"known: {sorted(registry)}"
                    )
                fn = registry[job.algorithm]
            else:
                fn = None
            with ExitStack() as stack:
                if job.faults is not None:
                    # Ambient installation reaches every inner run() of
                    # composed algorithms; works identically in workers (the
                    # plan pickles with the job) and in-process.
                    stack.enter_context(install_faults(job.faults))
                if job.backend is not None:
                    stack.enter_context(install_backend(job.backend))
                if fn is not None:
                    result = fn(job.graph, seed=seed, policy=policy,
                                **job.params)
                else:
                    result = job.algorithm(job.graph, seed=seed, **job.params)
            chosen = tuple(sorted(result.independent_set))
            outcome = JobOutcome(
                index=index,
                algorithm=job.algorithm_name,
                seed=seed,
                ok=True,
                independent_set=chosen,
                weight=job.graph.total_weight(chosen),
                metrics=result.metrics,
                seconds=time.perf_counter() - start,
                label=job.label,
                metadata=_scalar_metadata(
                    getattr(result, "metadata", {}) or {}),
                telemetry=collector.to_doc(),
            )
        except Exception as exc:  # noqa: BLE001 — one bad job must not kill the sweep
            outcome = JobOutcome(
                index=index,
                algorithm=job.algorithm_name,
                seed=seed,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - start,
                label=job.label,
                telemetry=collector.to_doc(),
            )
    if attach_s:
        outcome = _with_stage(outcome, "graph_attach", attach_s)
    return outcome


def _with_stage(outcome: JobOutcome, name: str, seconds: float) -> JobOutcome:
    """Fold one serving-stage duration into the outcome's telemetry doc."""
    telemetry = dict(outcome.telemetry)
    stages = dict(telemetry.get("stages", {}))
    stages[name] = stages.get(name, 0.0) + seconds
    telemetry["stages"] = stages
    return replace(outcome, telemetry=telemetry)


def run_job(
    job: BatchJob,
    *,
    master_seed: Optional[int] = 0,
    policy: Optional[BandwidthPolicy] = None,
    cache_dir: Optional[str] = None,
    index: int = 0,
) -> JobOutcome:
    """Cache-aware, in-process execution of one job.

    This is the submission unit of :func:`repro.api.solve` and the solver
    service: the same cache keys, the same :func:`_execute_job` code path,
    and therefore bit-identical outcomes versus a :func:`batch_run` sweep
    containing the job.  ``index`` only matters for ``seed=None`` jobs
    (positional seed derivation) and for labelling the outcome.
    """
    seed = (job.seed if job.seed is not None
            else derive_job_seeds(master_seed, index + 1)[index])
    key = None
    lookup_s = 0.0
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        key = job_cache_key(job, seed, policy)
        t0 = time.perf_counter()
        hit = _cache_load(cache_dir, key, index)
        lookup_s = time.perf_counter() - t0
        if hit is not None:
            return _with_stage(replace(hit, label=job.label),
                               "cache_lookup", lookup_s)
    outcome = _execute_job((index, job, seed, policy))
    if cache_dir is not None:
        outcome = _with_stage(outcome, "cache_lookup", lookup_s)
        if outcome.ok:
            _cache_store(cache_dir, key, outcome)
    return outcome


def batch_run(
    jobs: Sequence[BatchJob],
    *,
    master_seed: Optional[int] = 0,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[BandwidthPolicy] = None,
    executor: Optional[Executor] = None,
) -> BatchResult:
    """Run a sweep of jobs, optionally across processes and with a cache.

    Args:
        jobs: the sweep.  Jobs with ``seed=None`` get a seed derived from
            ``master_seed`` by position (see :func:`derive_job_seeds`).
        master_seed: root of the per-job seed derivation.
        n_jobs: worker processes; ``1`` runs everything in-process (the
            deterministic fallback used by tests), identical results either way.
        cache_dir: directory of the JSON memo cache; ``None`` disables it.
        policy: bandwidth policy forwarded to named algorithms and mixed
            into the cache key.
        executor: a reusable :class:`concurrent.futures.Executor` to fan
            jobs out on instead of a per-call ProcessPoolExecutor — the
            long-running submission path of the solver service, which
            cannot afford a pool spawn per micro-batch.  The caller owns
            its lifecycle; ``n_jobs`` is ignored for dispatch (but not
            for validation) when it is given.

    Returns:
        A :class:`BatchResult` with one outcome per job, in job order.
    """
    jobs = list(jobs)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if cache_dir is not None:
        # Fail before paying for the sweep, not when storing its results.
        try:
            os.makedirs(cache_dir, exist_ok=True)
        except (OSError, FileExistsError) as exc:
            raise ValueError(f"cache_dir {cache_dir!r} is not a usable "
                             f"directory: {exc}") from exc
        if not os.path.isdir(cache_dir):
            raise ValueError(f"cache_dir {cache_dir!r} exists and is not a "
                             f"directory")
    derived = derive_job_seeds(master_seed, len(jobs)) if jobs else []
    seeds = [job.seed if job.seed is not None else derived[i]
             for i, job in enumerate(jobs)]

    outcomes: Dict[int, JobOutcome] = {}
    pending: List[Tuple[int, BatchJob, int, Optional[BandwidthPolicy]]] = []
    keys: Dict[int, str] = {}
    lookup_s: Dict[int, float] = {}
    for i, (job, seed) in enumerate(zip(jobs, seeds)):
        if cache_dir is not None:
            keys[i] = job_cache_key(job, seed, policy)
            t0 = time.perf_counter()
            hit = _cache_load(cache_dir, keys[i], i)
            lookup_s[i] = time.perf_counter() - t0
            if hit is not None:
                outcomes[i] = _with_stage(replace(hit, label=job.label),
                                          "cache_lookup", lookup_s[i])
                continue
        pending.append((i, job, seed, policy))

    if pending:
        if executor is not None and len(pending) > 1:
            # Service path: micro-batches on a long-lived pool.  chunksize
            # stays 1 — latency matters more than IPC amortization here.
            fresh = list(executor.map(_execute_job, pending))
        elif n_jobs == 1 or len(pending) == 1:
            fresh = map(_execute_job, pending)
        else:
            workers = min(n_jobs, len(pending))
            # Chunk the dispatch: sweeps are typically thousands of
            # millisecond-sized jobs, where one IPC round-trip per job
            # would eat the parallel win.
            chunksize = max(1, len(pending) // (workers * 8))
            executor = ProcessPoolExecutor(max_workers=workers)
            try:
                fresh = list(executor.map(_execute_job, pending,
                                          chunksize=chunksize))
            finally:
                executor.shutdown()
        for outcome in fresh:
            if outcome.index in lookup_s:
                outcome = _with_stage(outcome, "cache_lookup",
                                      lookup_s[outcome.index])
            outcomes[outcome.index] = outcome
            if cache_dir is not None and outcome.ok:
                _cache_store(cache_dir, keys[outcome.index], outcome)

    ordered = tuple(outcomes[i] for i in range(len(jobs)))

    # Offer each outcome — span tree, timing, and instance identity
    # included — to ambiently installed emitters (repro sweep/experiments
    # --emit-metrics write them as per-job JSONL records).
    emitters = outcome_emitters()
    if emitters:
        for job, outcome in zip(jobs, ordered):
            doc = {
                "type": "job",
                "index": outcome.index,
                "graph": {
                    "n": job.graph.n,
                    "m": job.graph.m,
                    # A GraphRef carries no degree stats; emit None rather
                    # than materializing the graph just for the record.
                    "max_degree": getattr(job.graph, "max_degree", None),
                    "fingerprint": job.graph.fingerprint(),
                },
                **outcome.to_doc(),
                "cached": outcome.cached,
            }
            if outcome.telemetry:
                # Emit-time only: telemetry never enters to_doc() (cache
                # entries and report bytes stay canonical).
                doc["telemetry"] = outcome.telemetry
            for emit in emitters:
                emit(doc)

    return BatchResult(outcomes=ordered, master_seed=master_seed)
