"""Ambient instrumentation hooks for the simulator.

The runner reports its events to *event sinks*.  A sink is anything with

    ``record(round_index: int, kind: str, node: int, detail=None)``

(so the legacy :class:`repro.simulator.tracing.Trace` is itself a sink)
plus, optionally,

    ``on_round_profile(profile: RoundProfile)``

to receive per-round wall-clock and traffic aggregates.  Concrete sinks —
ring buffer, round time-series, streaming JSONL, null — live in
:mod:`repro.obs.sinks`; this module only holds the minimal registry so the
runner never has to import the observability layer (which imports the
simulator back).

Sinks can be passed to :func:`repro.simulator.runner.run` directly, or
installed *ambiently* with :func:`install_sink`: every ``run()`` started
inside the ``with`` block reports to the installed sink.  Ambient
installation is how the CLI records composed algorithms (``theorem1`` runs
many inner protocols the CLI never sees) without threading a sink through
every algorithm signature.  The registry is per-process: batch workers
start with an empty one.

:func:`install_outcome_emitter` is the analogous ambient hook for the
batch engine — each finished :class:`~repro.simulator.batch.JobOutcome`
is offered to the installed emitters as a JSON-compatible dict (what
``repro sweep --emit-metrics`` writes).

:func:`install_faults` is the ambient hook for fault injection
(:mod:`repro.faults`): every ``run()`` started inside the block that was
not given an explicit ``faults=`` argument uses the innermost installed
plan.  This is how the CLI subjects *composed* algorithms (``theorem2``
runs many inner protocols) to one fault plan without changing their
signatures.  As with sinks, the registry is per-process and batch
workers re-install it from the job description.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

__all__ = [
    "RoundProfile",
    "install_sink",
    "ambient_sinks",
    "gather_sinks",
    "install_outcome_emitter",
    "outcome_emitters",
    "install_faults",
    "ambient_fault_plan",
    "install_backend",
    "ambient_backend",
]


@dataclass(frozen=True)
class RoundProfile:
    """Wall-clock and traffic aggregates of one simulated round.

    ``compute_seconds`` is the time spent inside node programs
    (``on_start``/``on_round``); ``delivery_seconds`` is the time the
    runner spent draining outboxes, charging bandwidth, and codec-checking
    payloads.  Traffic counters are this round's deltas, not run totals.
    """

    round_index: int
    compute_seconds: float
    delivery_seconds: float
    messages: int
    bits: int
    drops: int
    halts: int
    active_nodes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round_index,
            "compute_seconds": self.compute_seconds,
            "delivery_seconds": self.delivery_seconds,
            "messages": self.messages,
            "bits": self.bits,
            "drops": self.drops,
            "halts": self.halts,
            "active_nodes": self.active_nodes,
        }


_SINKS: List[Any] = []
_EMITTERS: List[Callable[[Dict[str, Any]], None]] = []


@contextmanager
def install_sink(sink: Any) -> Iterator[Any]:
    """Route every ``run()`` inside the block to ``sink`` (re-entrant)."""
    _SINKS.append(sink)
    try:
        yield sink
    finally:
        _SINKS.remove(sink)


def ambient_sinks() -> Tuple[Any, ...]:
    """The currently installed ambient sinks (innermost last)."""
    return tuple(_SINKS)


def gather_sinks(*explicit: Any) -> Tuple[Any, ...]:
    """Explicit sinks (``trace=``/``sink=`` args, ``None`` skipped) plus
    the ambient ones — what one ``run()`` call should report to."""
    return tuple(s for s in explicit if s is not None) + tuple(_SINKS)


@contextmanager
def install_outcome_emitter(
    emitter: Callable[[Dict[str, Any]], None],
) -> Iterator[Callable[[Dict[str, Any]], None]]:
    """Offer every batch job outcome inside the block to ``emitter``."""
    _EMITTERS.append(emitter)
    try:
        yield emitter
    finally:
        _EMITTERS.remove(emitter)


def outcome_emitters() -> Tuple[Callable[[Dict[str, Any]], None], ...]:
    return tuple(_EMITTERS)


_FAULT_PLANS: List[Any] = []


@contextmanager
def install_faults(plan: Any) -> Iterator[Any]:
    """Apply ``plan`` to every ``run()`` inside the block that has no
    explicit ``faults=`` argument (re-entrant; innermost plan wins)."""
    _FAULT_PLANS.append(plan)
    try:
        yield plan
    finally:
        _FAULT_PLANS.remove(plan)


def ambient_fault_plan() -> Any:
    """The innermost installed fault plan, or ``None``."""
    return _FAULT_PLANS[-1] if _FAULT_PLANS else None


_BACKENDS: List[Any] = []


@contextmanager
def install_backend(backend: Any) -> Iterator[Any]:
    """Route every ``run()`` inside the block that has no explicit
    ``backend=`` argument through ``backend`` (re-entrant; innermost
    wins).  ``backend`` is a name (``"per-node"``/``"columnar"``) or an
    :class:`~repro.simulator.backends.ExecutionBackend` instance.

    This is how one selector covers *composed* algorithms: ``theorem1``
    runs many inner protocols the caller never sees, and every one of
    those inner ``run()`` calls picks the installed backend up.  As with
    sinks and fault plans, the registry is per-process; batch workers
    re-install it from the job description.
    """
    _BACKENDS.append(backend)
    try:
        yield backend
    finally:
        _BACKENDS.remove(backend)


def ambient_backend() -> Any:
    """The innermost installed execution backend, or ``None``."""
    return _BACKENDS[-1] if _BACKENDS else None
