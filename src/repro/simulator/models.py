"""Communication models (§1 of the paper).

LOCAL: synchronized rounds, unbounded message size.
CONGEST: identical, but every message is limited to ``O(log n)`` bits.

The bandwidth budget is ``factor * ceil(log2(n_bound))`` bits per message,
where ``n_bound`` is the polynomial upper bound on ``n`` that nodes are
assumed to know (§3, "Assumptions").  ``factor`` is the hidden constant of
the ``O(log n)``; the default of 32 is generous enough for every algorithm
in the paper while still catching accidentally-global messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

__all__ = ["CommunicationModel", "BandwidthPolicy"]


class CommunicationModel(Enum):
    """The two models of the paper."""

    LOCAL = "local"
    CONGEST = "congest"


@dataclass(frozen=True)
class BandwidthPolicy:
    """How message sizes are constrained and accounted.

    Attributes:
        model: LOCAL (no limit) or CONGEST (``O(log n)`` bits/message).
        factor: constant in the CONGEST budget ``factor * ceil(log2 n_bound)``.
        strict: in CONGEST, raise :class:`~repro.exceptions.BandwidthExceeded`
            on violation; otherwise record violations in the run metrics.
    """

    model: CommunicationModel = CommunicationModel.CONGEST
    factor: int = 32
    strict: bool = True

    def budget_bits(self, n_bound: int) -> int:
        """Per-message bit budget; ``-1`` means unbounded (LOCAL).

        The budget is ``factor * ceil(log2 n_bound)`` with an 8-bit word
        floor on the logarithm: weights are carried as IEEE doubles (64
        bits, standing in for the paper's ``poly(n)``-bounded integers),
        so on degenerate tiny networks the budget must still admit one
        machine word — the asymptotic ``O(log n)`` scaling is unchanged.
        """
        if self.model is CommunicationModel.LOCAL:
            return -1
        log_n = max(8, math.ceil(math.log2(max(2, n_bound))))
        return self.factor * log_n

    @staticmethod
    def local() -> "BandwidthPolicy":
        """Convenience constructor for the LOCAL model."""
        return BandwidthPolicy(model=CommunicationModel.LOCAL)

    @staticmethod
    def congest(factor: int = 32, strict: bool = True) -> "BandwidthPolicy":
        """Convenience constructor for the CONGEST model."""
        return BandwidthPolicy(model=CommunicationModel.CONGEST, factor=factor, strict=strict)
