"""Network: a weighted graph plus the knowledge bound nodes receive.

The paper assumes nodes know *some polynomial upper bound* on ``n`` (§3).
The default bound is the smallest power of two that is at least ``n`` —
tight enough for honest ``log n`` terms, loose enough that nodes never
learn the exact size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["Network", "default_n_bound"]


def default_n_bound(n: int) -> int:
    """Smallest power of two ``>= max(n, 2)``."""
    b = 2
    while b < n:
        b *= 2
    return b


@dataclass(frozen=True)
class Network:
    """Topology handed to the runner.

    Attributes:
        graph: the communication graph with node weights.
        n_bound: the polynomial upper bound on ``n`` given to every node.
    """

    graph: WeightedGraph
    n_bound: int

    @staticmethod
    def of(graph: WeightedGraph, n_bound: Optional[int] = None) -> "Network":
        bound = default_n_bound(graph.n) if n_bound is None else n_bound
        if bound < graph.n:
            raise GraphError(f"n_bound {bound} is smaller than n={graph.n}")
        return Network(graph=graph, n_bound=bound)
