"""Pluggable execution backends for the round scheduler.

An :class:`ExecutionBackend` turns a ``(network, algorithm_factory)`` pair
into a :class:`~repro.simulator.runner.RunResult`.  Two implementations
ship:

* :class:`PerNodeBackend` — the slot-indexed per-node scheduler in
  :mod:`repro.simulator.runner`.  This is the *semantics reference*:
  faults, event sinks, codec checks, and arbitrary node programs all work
  here, and every other backend is pinned byte-identical to it.
* :class:`ColumnarBackend` (:mod:`repro.simulator.columnar`) — executes a
  whole round as numpy array operations over the CSR structure, using
  per-algorithm *fleet kernels* (:mod:`repro.fleet`).  It silently falls
  back to the per-node scheduler whenever exact per-event semantics are
  needed, so selecting it is always safe.

Backends are selected per call (``run(..., backend="columnar")``), or
ambiently for a whole block — including every inner ``run()`` of a
composed algorithm — with
:func:`~repro.simulator.instrument.install_backend`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Union, runtime_checkable

import numpy as np

from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import AlgorithmFactory, RunResult
from repro.simulator.tracing import Trace

__all__ = [
    "ExecutionBackend",
    "PerNodeBackend",
    "get_backend",
    "normalize_backend_name",
    "BACKEND_NAMES",
]

BACKEND_NAMES = ("per-node", "columnar")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy interface for executing one simulation to completion.

    ``execute`` has the exact signature of the scheduler core: it must
    honour ``policy``/``seed``/``max_rounds`` and return a
    :class:`RunResult` byte-identical to the per-node reference for the
    same arguments (or delegate to it when it cannot guarantee that).
    """

    name: str

    def execute(
        self,
        network: Network,
        algorithm_factory: AlgorithmFactory,
        *,
        policy: Optional[BandwidthPolicy] = None,
        seed: Union[int, None, np.random.SeedSequence] = None,
        max_rounds: int = 100_000,
        trace: Optional[Trace] = None,
        sink: Optional[Any] = None,
        codec_check: bool = False,
        faults: Optional[Any] = None,
    ) -> RunResult:
        ...


class PerNodeBackend:
    """The slot-indexed per-node scheduler — the semantics reference."""

    name = "per-node"

    def execute(
        self,
        network: Network,
        algorithm_factory: AlgorithmFactory,
        *,
        policy: Optional[BandwidthPolicy] = None,
        seed: Union[int, None, np.random.SeedSequence] = None,
        max_rounds: int = 100_000,
        trace: Optional[Trace] = None,
        sink: Optional[Any] = None,
        codec_check: bool = False,
        faults: Optional[Any] = None,
    ) -> RunResult:
        from repro.simulator.runner import _execute_per_node

        return _execute_per_node(
            network,
            algorithm_factory,
            policy=policy,
            seed=seed,
            max_rounds=max_rounds,
            trace=trace,
            sink=sink,
            codec_check=codec_check,
            faults=faults,
        )


_INSTANCES: Dict[str, Any] = {}


def normalize_backend_name(spec: Optional[Any]) -> str:
    """Canonical backend name for ``spec`` (``None``/empty → per-node)."""
    if spec is None or spec == "":
        return "per-node"
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name in BACKEND_NAMES:
            return name
        raise ValueError(
            f"unknown backend {spec!r}; known backends: {', '.join(BACKEND_NAMES)}"
        )
    name = getattr(spec, "name", None)
    if isinstance(name, str) and name:
        return name
    raise ValueError(f"not a backend name or instance: {spec!r}")


def get_backend(spec: Optional[Any]) -> ExecutionBackend:
    """Resolve a backend name or instance to an :class:`ExecutionBackend`.

    Accepts ``"per-node"``, ``"columnar"``, ``None``/``""`` (per-node),
    or any object with an ``execute`` method (returned unchanged, so
    tests can install bespoke backends).
    """
    if spec is not None and not isinstance(spec, str):
        if callable(getattr(spec, "execute", None)):
            return spec
        raise ValueError(f"not an execution backend: {spec!r}")
    name = normalize_backend_name(spec)
    inst = _INSTANCES.get(name)
    if inst is None:
        if name == "per-node":
            inst = PerNodeBackend()
        else:
            from repro.simulator.columnar import ColumnarBackend

            inst = ColumnarBackend()
        _INSTANCES[name] = inst
    return inst
