"""Base class for node programs.

A distributed algorithm is a :class:`NodeAlgorithm` subclass; the runner
instantiates one object per node, so instance attributes are that node's
private state.  The life cycle:

1. ``on_start(ctx)`` — round 0: local initialisation, may queue messages;
2. ``on_round(ctx, inbox)`` — once per communication round, with the
   messages sent to this node in the previous round (``{sender: payload}``);
3. the node leaves the computation by calling ``ctx.halt(output)``.

Round counting follows the paper: the number of ``on_round`` sweeps executed
is the round complexity (``on_start`` is free local computation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping

from repro.simulator.context import NodeContext

__all__ = ["NodeAlgorithm"]


class NodeAlgorithm(ABC):
    """One node's program.  Subclasses keep per-node state on ``self``."""

    def on_start(self, ctx: NodeContext) -> None:
        """Round 0 hook: initialise state, optionally queue first messages."""

    @abstractmethod
    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        """Handle one communication round.

        Args:
            ctx: the node's context (send/broadcast/halt live here).
            inbox: messages delivered this round, keyed by sender id.
        """
