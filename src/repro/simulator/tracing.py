"""Optional event tracing for debugging distributed executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    round_index: int
    # "send" | "drop" | "halt" | "round", plus the injected-fault kinds
    # "fault_drop" | "fault_delay" | "fault_dup" | "crash" | "restart"
    # (see repro.faults; absent in fault-free runs).
    kind: str
    node: int
    detail: Any = None


@dataclass
class Trace:
    """Collects :class:`TraceEvent` records during a run.

    Pass an instance to :func:`repro.simulator.runner.run` to capture a
    full message/halt log; filter with :meth:`events_of` afterwards.
    """

    events: List[TraceEvent] = field(default_factory=list)
    max_events: int = 1_000_000
    dropped_events: int = 0

    def record(self, round_index: int, kind: str, node: int, detail: Any = None) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(round_index, kind, node, detail))
        else:
            # Never truncate silently: the count of discarded events is
            # kept so render_timeline (and audits) can flag the gap.
            self.dropped_events += 1

    def events_of(self, kind: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Events filtered by kind and/or node."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def __len__(self) -> int:
        return len(self.events)

    def render_timeline(self, max_rounds: int = 50) -> str:
        """A compact round-by-round textual timeline for debugging.

        One line per round: how many messages flew (with total bits) and
        which nodes halted.  Truncated after ``max_rounds`` lines.
        """
        by_round: dict = {}
        for e in self.events:
            by_round.setdefault(e.round_index, []).append(e)
        lines: List[str] = []
        for r in sorted(by_round):
            if len(lines) >= max_rounds:
                lines.append(f"... ({len(by_round) - max_rounds} more rounds)")
                break
            events = by_round[r]
            sends = [e for e in events if e.kind == "send"]
            drops = [e for e in events if e.kind == "drop"]
            halts = [e for e in events if e.kind == "halt"]
            fault_drops = [e for e in events if e.kind == "fault_drop"]
            fault_dups = [e for e in events if e.kind == "fault_dup"]
            fault_delays = [e for e in events if e.kind == "fault_delay"]
            crashes = [e for e in events if e.kind == "crash"]
            restarts = [e for e in events if e.kind == "restart"]
            # Dropped messages were charged on the wire, so their bits
            # belong in the round's total alongside delivered sends.
            bits = (sum(e.detail[1] for e in sends)
                    + sum(e.detail[1] for e in drops)
                    + sum(e.detail[1] for e in fault_drops)
                    + sum(e.detail[1] for e in fault_dups))
            parts = [f"round {r}:", f"{len(sends)} msgs ({bits} bits)"]
            if drops:
                parts.append(f"{len(drops)} dropped")
            if fault_drops:
                parts.append(f"{len(fault_drops)} lost")
            if fault_delays:
                parts.append(f"{len(fault_delays)} delayed")
            if fault_dups:
                parts.append(f"{len(fault_dups)} duplicated")
            if crashes:
                ids = ", ".join(str(e.node) for e in crashes[:8])
                parts.append(f"crashed: {ids}")
            if restarts:
                ids = ", ".join(str(e.node) for e in restarts[:8])
                parts.append(f"restarted: {ids}")
            if halts:
                ids = ", ".join(str(e.node) for e in halts[:8])
                more = "..." if len(halts) > 8 else ""
                parts.append(f"halted: {ids}{more}")
            lines.append("  ".join(parts))
        if self.dropped_events:
            lines.append(
                f"!! trace truncated: {self.dropped_events} events discarded "
                f"past max_events={self.max_events}"
            )
        return "\n".join(lines) if lines else "(no events)"
