"""The synchronous round scheduler.

``run`` executes one :class:`~repro.simulator.algorithm.NodeAlgorithm` per
node of a network until every node halts (or a round limit trips).  Message
delivery is the standard synchronous model: everything queued in round ``r``
is delivered at the start of round ``r + 1``; bandwidth is checked per
message against the :class:`~repro.simulator.models.BandwidthPolicy`.

An optional fault plan (``run(..., faults=...)`` or an ambient
:func:`~repro.simulator.instrument.install_faults` block) relaxes the
reliable-delivery assumption: each queued message is routed through the
plan, which may drop it, defer it a few rounds (still round-synchronous),
or duplicate it, and nodes may fail-stop on a schedule.  The fault-free
path is byte-identical to a build without this feature — with
``faults=None`` no fault stream is ever created and the delivery loop is
untouched.  See :mod:`repro.faults` and ``docs/faults.md``.

Internally the scheduler is *slot-indexed*: node ids are mapped once to
positions ``0..n-1`` in sorted id order, and contexts/programs/inboxes
live in flat lists addressed by slot.  Per-receiver inbox dicts are
reused between rounds (cleared, never reallocated), each message's
``payload_bits`` is computed exactly once and threaded through delivery,
fault scheduling, and the end-of-run flush, and the sink-free fault-free
path runs a specialized collect loop with per-round (not per-message)
metric writes.  None of this is observable: iteration orders, outputs,
metrics, and event streams are byte-identical to the per-node-dict
scheduler this replaced — see ``docs/performance.md`` for the exact
invariants the slot layout must preserve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.exceptions import BandwidthExceeded, RoundLimitExceeded
from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.codec import decode_payload, encode_payload
from repro.simulator.instrument import (RoundProfile, ambient_backend,
                                        ambient_fault_plan, gather_sinks)
from repro.simulator.message import payload_bits
from repro.simulator.metrics import BandwidthViolation, RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.randomness import spawn_node_seeds
from repro.simulator.tracing import Trace

__all__ = ["RunResult", "run"]

AlgorithmFactory = Callable[[], NodeAlgorithm]

_EMPTY_INBOX: Dict[int, Any] = {}
_NO_PAYLOAD = object()  # sentinel for the one-slot payload_bits memo


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation.

    Attributes:
        outputs: per-node halt outputs.
        metrics: round/message/bit accounting.
        n_bound: the knowledge bound that was handed to nodes.
    """

    outputs: Dict[int, Any]
    metrics: RunMetrics
    n_bound: int


def run(
    graph_or_network: Union[WeightedGraph, Network],
    algorithm_factory: AlgorithmFactory,
    *,
    policy: Optional[BandwidthPolicy] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    max_rounds: int = 100_000,
    trace: Optional[Trace] = None,
    sink: Optional[Any] = None,
    codec_check: bool = False,
    faults: Optional[Any] = None,
    backend: Optional[Any] = None,
) -> RunResult:
    """Run a distributed algorithm to completion.

    Args:
        graph_or_network: the communication graph (wrapped into a
            :class:`Network` with the default ``n_bound`` if bare).
        algorithm_factory: zero-argument callable producing a fresh
            :class:`NodeAlgorithm` for each node.
        policy: bandwidth policy; defaults to strict CONGEST.
        seed: master seed; per-node independent streams are derived from it.
        max_rounds: safety limit; exceeding it raises
            :class:`~repro.exceptions.RoundLimitExceeded`.
        trace: optional :class:`Trace` to record sends and halts.
        sink: optional extra event sink (see
            :mod:`repro.simulator.instrument`); sinks installed ambiently
            with :func:`~repro.simulator.instrument.install_sink` receive
            events too.  Sinks exposing ``on_round_profile`` additionally
            get per-round compute/delivery wall-clock profiles.
        codec_check: round-trip every payload through the real binary
            codec (:mod:`repro.simulator.codec`) before delivery, so
            receivers see exactly what would arrive on the wire (lists
            become tuples, unsupported values fail loudly).  Off by
            default for speed; the conformance tests switch it on.
        faults: optional :class:`repro.faults.FaultPlan` routing every
            queued message through injected loss/delay/duplication and
            applying fail-stop crash schedules.  When ``None`` (the
            default) the innermost plan installed with
            :func:`~repro.simulator.instrument.install_faults` applies,
            if any; with no plan at all the run is byte-identical to the
            reliable model.  Fault randomness comes from a dedicated
            stream derived from ``seed``, so node programs draw exactly
            the same private coins either way.
        backend: execution backend — a name (``"per-node"`` or
            ``"columnar"``), an
            :class:`~repro.simulator.backends.ExecutionBackend` instance,
            or ``None`` to use the innermost backend installed with
            :func:`~repro.simulator.instrument.install_backend` (falling
            back to the per-node scheduler).  The columnar backend
            vectorizes whole rounds over the CSR structure for supported
            algorithms and produces byte-identical results; it defers to
            the per-node scheduler whenever exact per-event semantics are
            required (faults, sinks, codec checks, unknown algorithms).

    Returns:
        A :class:`RunResult` with per-node outputs and metrics.
    """
    network = (
        graph_or_network
        if isinstance(graph_or_network, Network)
        else Network.of(graph_or_network)
    )
    chosen = backend if backend is not None else ambient_backend()
    if chosen is not None:
        from repro.obs.telemetry import record_backend_run
        from repro.simulator.backends import get_backend

        resolved = get_backend(chosen)
        record_backend_run(getattr(resolved, "name", str(chosen)))
        return resolved.execute(
            network,
            algorithm_factory,
            policy=policy,
            seed=seed,
            max_rounds=max_rounds,
            trace=trace,
            sink=sink,
            codec_check=codec_check,
            faults=faults,
        )
    from repro.obs.telemetry import record_backend_run

    record_backend_run("per-node")
    return _execute_per_node(
        network,
        algorithm_factory,
        policy=policy,
        seed=seed,
        max_rounds=max_rounds,
        trace=trace,
        sink=sink,
        codec_check=codec_check,
        faults=faults,
    )


def _execute_per_node(
    network: Network,
    algorithm_factory: AlgorithmFactory,
    *,
    policy: Optional[BandwidthPolicy] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    max_rounds: int = 100_000,
    trace: Optional[Trace] = None,
    sink: Optional[Any] = None,
    codec_check: bool = False,
    faults: Optional[Any] = None,
) -> RunResult:
    """The reference per-node scheduler (exact semantics for everything)."""
    graph = network.graph
    policy = policy or BandwidthPolicy.congest()
    budget = policy.budget_bits(network.n_bound)
    strict = policy.strict
    check_budget = budget >= 0

    # ---- slot layout: id <-> position in the sorted id order ---------- #
    nodes = graph.nodes  # memoized sorted tuple
    n = len(nodes)
    slot_of: Dict[int, int] = {v: s for s, v in enumerate(nodes)}
    n_bound = network.n_bound
    seed_children = spawn_node_seeds(seed, nodes)
    ctxs = [
        NodeContext(
            node_id=v,
            neighbors=graph.neighbors(v),
            weight=graph.weight(v),
            rng=seed_children[v],
            n_bound=n_bound,
            nbr_set=graph.neighbor_set(v),
        )
        for v in nodes
    ]
    programs = [algorithm_factory() for _ in range(n)]

    metrics = RunMetrics()
    active: set = set()  # slots of nodes that have not halted
    # Reliable-delivery buffers: one reused inbox dict per receiver slot,
    # plus the slots filled since the last delivery (clear only those).
    next_bufs = [{} for _ in range(n)]
    filled = []
    # Faulty-delivery schedule: delivery_round -> receiver id -> sender id
    # -> (payload, bits).  Only used when a fault session is open; the
    # fault-free path keeps the flat slot buffers above.
    deferred: Dict[int, Dict[int, Dict[int, Any]]] = {}

    plan = faults if faults is not None else ambient_fault_plan()
    if plan is not None:
        from repro.faults.plans import fault_generator
        session = plan.begin(fault_generator(seed))
    else:
        session = None

    sinks = gather_sinks(trace, sink)
    has_sinks = bool(sinks)
    profiled = tuple(s for s in sinks
                     if getattr(s, "on_round_profile", None) is not None)

    def schedule_faulty(round_index: int, v: int, to: int,
                        payload: Any, bits: int) -> None:
        """Route one queued message through the fault session.

        Draws the message's fate (loss / extra delay / duplicate copies)
        from the dedicated fault stream, charges injected copies, and
        schedules the survivors.  A copy addressed to a receiver that is
        down at its delivery round is lost (the schedule is static, so
        this is decidable at send time).  Two copies of the same
        (sender, receiver) pair landing in the same round collapse to the
        newest-sent payload, matching the one-slot-per-sender inbox.
        The message's ``bits`` ride along with the payload so drops of
        deferred copies never re-measure it.
        """
        fates = session.message_fate(round_index, v, to)
        if not fates:
            metrics.record_fault_drop(bits)
            if has_sinks:
                for s in sinks:
                    s.record(round_index, "fault_drop", v, (to, bits))
            return
        if codec_check:
            payload = decode_payload(encode_payload(payload))
        for k, delay in enumerate(fates):
            if k > 0:
                # An injected duplicate crosses the wire like any message.
                metrics.record_fault_duplicate(bits)
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_dup", v, (to, bits))
            delivery_round = round_index + 1 + delay
            if session.down_at(to, delivery_round):
                metrics.record_fault_drop(bits)
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_drop", v, (to, bits))
                continue
            if delay > 0:
                metrics.record_fault_delay()
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_delay", v, (to, delay))
            if k == 0 and has_sinks:
                for s in sinks:
                    s.record(round_index, "send", v, (to, bits))
            deferred.setdefault(delivery_round, {}).setdefault(to, {})[v] = \
                (payload, bits)

    def collect_faulty(round_index: int, sender_slots) -> None:
        """Drain outboxes through the fault session (general path)."""
        for s in sender_slots:
            ctx = ctxs[s]
            outbox = ctx._outbox
            if not outbox:
                continue
            ctx._outbox = {}
            v = nodes[s]
            for to, payload in outbox.items():
                bits = payload_bits(payload)
                if check_budget and bits > budget:
                    if strict:
                        raise BandwidthExceeded(v, to, bits, budget, round_index)
                    metrics.violations.append(
                        BandwidthViolation(round_index, v, to, bits, budget)
                    )
                metrics.record_message(bits)
                if ctxs[slot_of[to]]._halted:
                    # Receiver halted this very round: the message was put
                    # on the wire (and charged above) but is never read.
                    metrics.record_drop(bits)
                    if has_sinks:
                        for s_ in sinks:
                            s_.record(round_index, "drop", v, (to, bits))
                else:
                    schedule_faulty(round_index, v, to, payload, bits)

    def collect(round_index: int, sender_slots) -> None:
        """Drain outboxes into next round's inboxes, charging bandwidth.

        Reliable-delivery fast path: only ``sender_slots`` (the nodes
        that executed this round) can have queued messages.  Accounting
        accumulates in locals and hits ``metrics`` once per round; a
        one-slot memo reuses the ``payload_bits`` of the previous
        message object, so a broadcast is measured once, not once per
        neighbour (the value is identical — it is the same object).
        """
        msgs = 0
        tbits = 0
        maxb = metrics.max_message_bits
        dmsgs = 0
        dbits = 0
        last_payload: Any = _NO_PAYLOAD
        last_bits = 0
        for s in sender_slots:
            ctx = ctxs[s]
            outbox = ctx._outbox
            if not outbox:
                continue
            ctx._outbox = {}
            v = nodes[s]
            for to, payload in outbox.items():
                if payload is last_payload:
                    bits = last_bits
                else:
                    bits = last_bits = payload_bits(payload)
                    last_payload = payload
                if check_budget and bits > budget:
                    if strict:
                        # Flush the accounting of everything already on
                        # the wire before aborting, exactly like the
                        # per-message writes did.
                        metrics.messages += msgs
                        metrics.total_bits += tbits
                        metrics.max_message_bits = maxb
                        metrics.dropped_messages += dmsgs
                        metrics.dropped_bits += dbits
                        raise BandwidthExceeded(v, to, bits, budget, round_index)
                    metrics.violations.append(
                        BandwidthViolation(round_index, v, to, bits, budget)
                    )
                msgs += 1
                tbits += bits
                if bits > maxb:
                    maxb = bits
                to_s = slot_of[to]
                if ctxs[to_s]._halted:
                    dmsgs += 1
                    dbits += bits
                    if has_sinks:
                        for s_ in sinks:
                            s_.record(round_index, "drop", v, (to, bits))
                else:
                    if has_sinks:
                        for s_ in sinks:
                            s_.record(round_index, "send", v, (to, bits))
                    if codec_check:
                        payload = decode_payload(encode_payload(payload))
                    buf = next_bufs[to_s]
                    if not buf:
                        filled.append(to_s)
                    buf[v] = payload
        metrics.messages += msgs
        metrics.total_bits += tbits
        metrics.max_message_bits = maxb
        if dmsgs:
            metrics.dropped_messages += dmsgs
            metrics.dropped_bits += dbits

    def profile(round_index: int, t_start: float, t_compute: float,
                msgs0: int, bits0: int, drops0: int, halts: int,
                executed: int) -> None:
        p = RoundProfile(
            round_index=round_index,
            compute_seconds=t_compute - t_start,
            delivery_seconds=time.perf_counter() - t_compute,
            messages=metrics.messages - msgs0,
            bits=metrics.total_bits - bits0,
            drops=metrics.dropped_messages - drops0,
            halts=halts,
            active_nodes=executed,
        )
        for s in profiled:
            s.on_round_profile(p)

    # Round 0: local initialisation.
    t_start = time.perf_counter() if profiled else 0.0
    halts_this_round = 0
    for s in range(n):
        ctx = ctxs[s]
        programs[s].on_start(ctx)
        if ctx._halted:
            halts_this_round += 1
            if has_sinks:
                for snk in sinks:
                    snk.record(0, "halt", nodes[s], ctx._output)
        else:
            active.add(s)
    t_compute = time.perf_counter() if profiled else 0.0
    if session is None:
        collect(0, range(n))
    else:
        collect_faulty(0, range(n))
    if profiled:
        profile(0, t_start, t_compute, 0, 0, 0, halts_this_round, n)

    round_index = 0
    while active:
        round_index += 1
        if round_index > max_rounds:
            raise RoundLimitExceeded(max_rounds, len(active))
        metrics.rounds = round_index
        if has_sinks:
            for snk in sinks:
                snk.record(round_index, "round", -1)
        msgs0, bits0, drops0 = (metrics.messages, metrics.total_bits,
                                metrics.dropped_messages)
        if session is None:
            # Fast path: deliver from the reused slot buffers.
            executed = sorted(active)
            t_start = time.perf_counter() if profiled else 0.0
            for s in executed:
                ctx = ctxs[s]
                ctx._round += 1
                programs[s].on_round(ctx, next_bufs[s] or _EMPTY_INBOX)
            # Every filled buffer was just read (receivers are always
            # active at delivery time); clear for the next collect.
            if filled:
                for s in filled:
                    next_bufs[s].clear()
                filled.clear()
            t_compute = time.perf_counter() if profiled else 0.0
            collect(round_index, executed)
        else:
            arrivals = deferred.pop(round_index, {})
            if session.has_crashes:
                for v in session.crashed_this_round(round_index):
                    s = slot_of.get(v)
                    if s is not None and not ctxs[s]._halted:
                        metrics.record_crash()
                        if has_sinks:
                            for snk in sinks:
                                snk.record(round_index, "crash", v)
                        if session.never_returns(v, round_index):
                            active.discard(s)
                for v in session.restarted_this_round(round_index):
                    s = slot_of.get(v)
                    if s is not None and not ctxs[s]._halted:
                        metrics.record_restart()
                        # Fast-forward the local round counter over the
                        # downtime so round_index stays consistent.
                        ctxs[s]._round = round_index - 1
                        if has_sinks:
                            for snk in sinks:
                                snk.record(round_index, "restart", v)
                executed = sorted(s for s in active
                                  if not session.down_at(nodes[s], round_index))
            else:
                executed = sorted(active)
            # A receiver may have halted while a delayed copy was in
            # flight; the copy arrives at a program that no longer exists.
            # The bits stored at scheduling time are charged verbatim.
            for to in sorted(arrivals):
                if ctxs[slot_of[to]]._halted:
                    for sender, (_payload, bits) in arrivals.pop(to).items():
                        metrics.record_fault_drop(bits)
                        if has_sinks:
                            for snk in sinks:
                                snk.record(round_index, "fault_drop", sender,
                                           (to, bits))
            t_start = time.perf_counter() if profiled else 0.0
            for s in executed:
                ctx = ctxs[s]
                ctx._round += 1
                entry = arrivals.get(nodes[s])
                if entry is None:
                    inbox = _EMPTY_INBOX
                else:
                    inbox = {sender: pb[0] for sender, pb in entry.items()}
                programs[s].on_round(ctx, inbox)
            t_compute = time.perf_counter() if profiled else 0.0
            collect_faulty(round_index, executed)
        halts_this_round = 0
        for s in executed:
            if ctxs[s]._halted:
                active.discard(s)
                halts_this_round += 1
                if has_sinks:
                    for snk in sinks:
                        snk.record(round_index, "halt", nodes[s],
                                   ctxs[s]._output)
        if profiled:
            profile(round_index, t_start, t_compute, msgs0, bits0, drops0,
                    halts_this_round, len(executed))

    if session is not None and deferred:
        # Copies still in flight when every node halted: charged on the
        # wire, never read.  Flush them as fault drops — at the bit sizes
        # recorded when they were scheduled — so the audit identity
        # total == delivered + dropped + fault_dropped holds.
        for delivery_round in sorted(deferred):
            for to in sorted(deferred[delivery_round]):
                for sender, (_payload, bits) in \
                        deferred[delivery_round][to].items():
                    metrics.record_fault_drop(bits)
                    if has_sinks:
                        for snk in sinks:
                            snk.record(delivery_round, "fault_drop", sender,
                                       (to, bits))

    outputs = {nodes[s]: ctxs[s]._output for s in range(n)}
    return RunResult(outputs=outputs, metrics=metrics, n_bound=network.n_bound)
