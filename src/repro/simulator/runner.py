"""The synchronous round scheduler.

``run`` executes one :class:`~repro.simulator.algorithm.NodeAlgorithm` per
node of a network until every node halts (or a round limit trips).  Message
delivery is the standard synchronous model: everything queued in round ``r``
is delivered at the start of round ``r + 1``; bandwidth is checked per
message against the :class:`~repro.simulator.models.BandwidthPolicy`.

An optional fault plan (``run(..., faults=...)`` or an ambient
:func:`~repro.simulator.instrument.install_faults` block) relaxes the
reliable-delivery assumption: each queued message is routed through the
plan, which may drop it, defer it a few rounds (still round-synchronous),
or duplicate it, and nodes may fail-stop on a schedule.  The fault-free
path is byte-identical to a build without this feature — with
``faults=None`` no fault stream is ever created and the delivery loop is
untouched.  See :mod:`repro.faults` and ``docs/faults.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.exceptions import BandwidthExceeded, RoundLimitExceeded
from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.codec import decode_payload, encode_payload
from repro.simulator.instrument import (RoundProfile, ambient_fault_plan,
                                        gather_sinks)
from repro.simulator.message import payload_bits
from repro.simulator.metrics import BandwidthViolation, RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.randomness import spawn_node_rngs
from repro.simulator.tracing import Trace

__all__ = ["RunResult", "run"]

AlgorithmFactory = Callable[[], NodeAlgorithm]

_EMPTY_INBOX: Dict[int, Any] = {}


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation.

    Attributes:
        outputs: per-node halt outputs.
        metrics: round/message/bit accounting.
        n_bound: the knowledge bound that was handed to nodes.
    """

    outputs: Dict[int, Any]
    metrics: RunMetrics
    n_bound: int


def run(
    graph_or_network: Union[WeightedGraph, Network],
    algorithm_factory: AlgorithmFactory,
    *,
    policy: Optional[BandwidthPolicy] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    max_rounds: int = 100_000,
    trace: Optional[Trace] = None,
    sink: Optional[Any] = None,
    codec_check: bool = False,
    faults: Optional[Any] = None,
) -> RunResult:
    """Run a distributed algorithm to completion.

    Args:
        graph_or_network: the communication graph (wrapped into a
            :class:`Network` with the default ``n_bound`` if bare).
        algorithm_factory: zero-argument callable producing a fresh
            :class:`NodeAlgorithm` for each node.
        policy: bandwidth policy; defaults to strict CONGEST.
        seed: master seed; per-node independent streams are derived from it.
        max_rounds: safety limit; exceeding it raises
            :class:`~repro.exceptions.RoundLimitExceeded`.
        trace: optional :class:`Trace` to record sends and halts.
        sink: optional extra event sink (see
            :mod:`repro.simulator.instrument`); sinks installed ambiently
            with :func:`~repro.simulator.instrument.install_sink` receive
            events too.  Sinks exposing ``on_round_profile`` additionally
            get per-round compute/delivery wall-clock profiles.
        codec_check: round-trip every payload through the real binary
            codec (:mod:`repro.simulator.codec`) before delivery, so
            receivers see exactly what would arrive on the wire (lists
            become tuples, unsupported values fail loudly).  Off by
            default for speed; the conformance tests switch it on.
        faults: optional :class:`repro.faults.FaultPlan` routing every
            queued message through injected loss/delay/duplication and
            applying fail-stop crash schedules.  When ``None`` (the
            default) the innermost plan installed with
            :func:`~repro.simulator.instrument.install_faults` applies,
            if any; with no plan at all the run is byte-identical to the
            reliable model.  Fault randomness comes from a dedicated
            stream derived from ``seed``, so node programs draw exactly
            the same private coins either way.

    Returns:
        A :class:`RunResult` with per-node outputs and metrics.
    """
    network = (
        graph_or_network
        if isinstance(graph_or_network, Network)
        else Network.of(graph_or_network)
    )
    graph = network.graph
    policy = policy or BandwidthPolicy.congest()
    budget = policy.budget_bits(network.n_bound)

    rngs = spawn_node_rngs(seed, graph.nodes)
    contexts: Dict[int, NodeContext] = {}
    programs: Dict[int, NodeAlgorithm] = {}
    for v in graph.nodes:
        contexts[v] = NodeContext(
            node_id=v,
            neighbors=graph.neighbors(v),
            weight=graph.weight(v),
            rng=rngs[v],
            n_bound=network.n_bound,
        )
        programs[v] = algorithm_factory()

    metrics = RunMetrics()
    active = set()
    in_flight: Dict[int, Dict[int, Any]] = {}
    # Faulty-delivery schedule: delivery_round -> receiver -> sender ->
    # payload.  Only used when a fault session is open; the fault-free
    # path keeps the plain one-round ``in_flight`` buffer above.
    deferred: Dict[int, Dict[int, Dict[int, Any]]] = {}

    plan = faults if faults is not None else ambient_fault_plan()
    if plan is not None:
        from repro.faults.plans import fault_generator
        session = plan.begin(fault_generator(seed))
    else:
        session = None

    sinks = gather_sinks(trace, sink)
    has_sinks = bool(sinks)
    profiled = tuple(s for s in sinks
                     if getattr(s, "on_round_profile", None) is not None)

    def schedule_faulty(round_index: int, v: int, to: int,
                        payload: Any, bits: int) -> None:
        """Route one queued message through the fault session.

        Draws the message's fate (loss / extra delay / duplicate copies)
        from the dedicated fault stream, charges injected copies, and
        schedules the survivors.  A copy addressed to a receiver that is
        down at its delivery round is lost (the schedule is static, so
        this is decidable at send time).  Two copies of the same
        (sender, receiver) pair landing in the same round collapse to the
        newest-sent payload, matching the one-slot-per-sender inbox.
        """
        fates = session.message_fate(round_index, v, to)
        if not fates:
            metrics.record_fault_drop(bits)
            if has_sinks:
                for s in sinks:
                    s.record(round_index, "fault_drop", v, (to, bits))
            return
        if codec_check:
            payload = decode_payload(encode_payload(payload))
        for k, delay in enumerate(fates):
            if k > 0:
                # An injected duplicate crosses the wire like any message.
                metrics.record_fault_duplicate(bits)
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_dup", v, (to, bits))
            delivery_round = round_index + 1 + delay
            if session.down_at(to, delivery_round):
                metrics.record_fault_drop(bits)
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_drop", v, (to, bits))
                continue
            if delay > 0:
                metrics.record_fault_delay()
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "fault_delay", v, (to, delay))
            if k == 0 and has_sinks:
                for s in sinks:
                    s.record(round_index, "send", v, (to, bits))
            deferred.setdefault(delivery_round, {}).setdefault(to, {})[v] = payload

    def collect(round_index: int, senders) -> None:
        """Drain outboxes into next round's inboxes, charging bandwidth.

        Only ``senders`` (the nodes that executed this round) can have
        queued messages, so the sweep skips everyone else.
        """
        for v in senders:
            ctx = contexts[v]
            for to, payload in ctx._drain_outbox().items():
                bits = payload_bits(payload)
                if budget >= 0 and bits > budget:
                    if policy.strict:
                        raise BandwidthExceeded(v, to, bits, budget, round_index)
                    metrics.violations.append(
                        BandwidthViolation(round_index, v, to, bits, budget)
                    )
                metrics.record_message(bits)
                if contexts[to].halted:
                    # Receiver halted this very round: the message was put
                    # on the wire (and charged above) but is never read.
                    metrics.record_drop(bits)
                    if has_sinks:
                        for s in sinks:
                            s.record(round_index, "drop", v, (to, bits))
                elif session is not None:
                    schedule_faulty(round_index, v, to, payload, bits)
                else:
                    if has_sinks:
                        for s in sinks:
                            s.record(round_index, "send", v, (to, bits))
                    if codec_check:
                        payload = decode_payload(encode_payload(payload))
                    in_flight.setdefault(to, {})[v] = payload

    def profile(round_index: int, t_start: float, t_compute: float,
                msgs0: int, bits0: int, drops0: int, halts: int,
                executed: int) -> None:
        p = RoundProfile(
            round_index=round_index,
            compute_seconds=t_compute - t_start,
            delivery_seconds=time.perf_counter() - t_compute,
            messages=metrics.messages - msgs0,
            bits=metrics.total_bits - bits0,
            drops=metrics.dropped_messages - drops0,
            halts=halts,
            active_nodes=executed,
        )
        for s in profiled:
            s.on_round_profile(p)

    # Round 0: local initialisation.
    t_start = time.perf_counter() if profiled else 0.0
    halts_this_round = 0
    for v in graph.nodes:
        programs[v].on_start(contexts[v])
        if contexts[v].halted:
            halts_this_round += 1
            if has_sinks:
                for s in sinks:
                    s.record(0, "halt", v, contexts[v].output)
        else:
            active.add(v)
    t_compute = time.perf_counter() if profiled else 0.0
    collect(0, graph.nodes)
    if profiled:
        profile(0, t_start, t_compute, 0, 0, 0, halts_this_round, len(graph.nodes))

    round_index = 0
    while active:
        round_index += 1
        if round_index > max_rounds:
            raise RoundLimitExceeded(max_rounds, len(active))
        metrics.rounds = round_index
        if has_sinks:
            for s in sinks:
                s.record(round_index, "round", -1)
        msgs0, bits0, drops0 = (metrics.messages, metrics.total_bits,
                                metrics.dropped_messages)
        if session is None:
            inboxes = in_flight
            in_flight = {}
            executed = sorted(active)
        else:
            inboxes = deferred.pop(round_index, {})
            if session.has_crashes:
                for v in session.crashed_this_round(round_index):
                    if v in contexts and not contexts[v].halted:
                        metrics.record_crash()
                        if has_sinks:
                            for s in sinks:
                                s.record(round_index, "crash", v)
                        if session.never_returns(v, round_index):
                            active.discard(v)
                for v in session.restarted_this_round(round_index):
                    if v in contexts and not contexts[v].halted:
                        metrics.record_restart()
                        # Fast-forward the local round counter over the
                        # downtime so round_index stays consistent.
                        contexts[v]._round = round_index - 1
                        if has_sinks:
                            for s in sinks:
                                s.record(round_index, "restart", v)
                executed = sorted(v for v in active
                                  if not session.down_at(v, round_index))
            else:
                executed = sorted(active)
            # A receiver may have halted while a delayed copy was in
            # flight; the copy arrives at a program that no longer exists.
            for to in sorted(inboxes):
                if contexts[to].halted:
                    for sender, payload in inboxes.pop(to).items():
                        bits = payload_bits(payload)
                        metrics.record_fault_drop(bits)
                        if has_sinks:
                            for s in sinks:
                                s.record(round_index, "fault_drop", sender,
                                         (to, bits))
        t_start = time.perf_counter() if profiled else 0.0
        for v in executed:
            ctx = contexts[v]
            ctx._advance_round()
            programs[v].on_round(ctx, inboxes.get(v, _EMPTY_INBOX))
        t_compute = time.perf_counter() if profiled else 0.0
        collect(round_index, executed)
        halts_this_round = 0
        for v in executed:
            if contexts[v].halted:
                active.discard(v)
                halts_this_round += 1
                if has_sinks:
                    for s in sinks:
                        s.record(round_index, "halt", v, contexts[v].output)
        if profiled:
            profile(round_index, t_start, t_compute, msgs0, bits0, drops0,
                    halts_this_round, len(executed))

    if session is not None and deferred:
        # Copies still in flight when every node halted: charged on the
        # wire, never read.  Flush them as fault drops so the audit
        # identity total == delivered + dropped + fault_dropped holds.
        for delivery_round in sorted(deferred):
            for to in sorted(deferred[delivery_round]):
                for sender, payload in deferred[delivery_round][to].items():
                    bits = payload_bits(payload)
                    metrics.record_fault_drop(bits)
                    if has_sinks:
                        for s in sinks:
                            s.record(delivery_round, "fault_drop", sender,
                                     (to, bits))

    outputs = {v: contexts[v].output for v in graph.nodes}
    return RunResult(outputs=outputs, metrics=metrics, n_bound=network.n_bound)
