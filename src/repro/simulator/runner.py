"""The synchronous round scheduler.

``run`` executes one :class:`~repro.simulator.algorithm.NodeAlgorithm` per
node of a network until every node halts (or a round limit trips).  Message
delivery is the standard synchronous model: everything queued in round ``r``
is delivered at the start of round ``r + 1``; bandwidth is checked per
message against the :class:`~repro.simulator.models.BandwidthPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.exceptions import BandwidthExceeded, RoundLimitExceeded
from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.codec import decode_payload, encode_payload
from repro.simulator.message import payload_bits
from repro.simulator.metrics import BandwidthViolation, RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.randomness import spawn_node_rngs
from repro.simulator.tracing import Trace

__all__ = ["RunResult", "run"]

AlgorithmFactory = Callable[[], NodeAlgorithm]

_EMPTY_INBOX: Dict[int, Any] = {}


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation.

    Attributes:
        outputs: per-node halt outputs.
        metrics: round/message/bit accounting.
        n_bound: the knowledge bound that was handed to nodes.
    """

    outputs: Dict[int, Any]
    metrics: RunMetrics
    n_bound: int


def run(
    graph_or_network: Union[WeightedGraph, Network],
    algorithm_factory: AlgorithmFactory,
    *,
    policy: Optional[BandwidthPolicy] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    max_rounds: int = 100_000,
    trace: Optional[Trace] = None,
    codec_check: bool = False,
) -> RunResult:
    """Run a distributed algorithm to completion.

    Args:
        graph_or_network: the communication graph (wrapped into a
            :class:`Network` with the default ``n_bound`` if bare).
        algorithm_factory: zero-argument callable producing a fresh
            :class:`NodeAlgorithm` for each node.
        policy: bandwidth policy; defaults to strict CONGEST.
        seed: master seed; per-node independent streams are derived from it.
        max_rounds: safety limit; exceeding it raises
            :class:`~repro.exceptions.RoundLimitExceeded`.
        trace: optional :class:`Trace` to record sends and halts.
        codec_check: round-trip every payload through the real binary
            codec (:mod:`repro.simulator.codec`) before delivery, so
            receivers see exactly what would arrive on the wire (lists
            become tuples, unsupported values fail loudly).  Off by
            default for speed; the conformance tests switch it on.

    Returns:
        A :class:`RunResult` with per-node outputs and metrics.
    """
    network = (
        graph_or_network
        if isinstance(graph_or_network, Network)
        else Network.of(graph_or_network)
    )
    graph = network.graph
    policy = policy or BandwidthPolicy.congest()
    budget = policy.budget_bits(network.n_bound)

    rngs = spawn_node_rngs(seed, graph.nodes)
    contexts: Dict[int, NodeContext] = {}
    programs: Dict[int, NodeAlgorithm] = {}
    for v in graph.nodes:
        contexts[v] = NodeContext(
            node_id=v,
            neighbors=graph.neighbors(v),
            weight=graph.weight(v),
            rng=rngs[v],
            n_bound=network.n_bound,
        )
        programs[v] = algorithm_factory()

    metrics = RunMetrics()
    active = set()
    in_flight: Dict[int, Dict[int, Any]] = {}

    def collect(round_index: int, senders) -> None:
        """Drain outboxes into next round's inboxes, charging bandwidth.

        Only ``senders`` (the nodes that executed this round) can have
        queued messages, so the sweep skips everyone else.
        """
        for v in senders:
            ctx = contexts[v]
            for to, payload in ctx._drain_outbox().items():
                bits = payload_bits(payload)
                if budget >= 0 and bits > budget:
                    if policy.strict:
                        raise BandwidthExceeded(v, to, bits, budget, round_index)
                    metrics.violations.append(
                        BandwidthViolation(round_index, v, to, bits, budget)
                    )
                metrics.record_message(bits)
                if contexts[to].halted:
                    # Receiver halted this very round: the message was put
                    # on the wire (and charged above) but is never read.
                    metrics.record_drop(bits)
                    if trace is not None:
                        trace.record(round_index, "drop", v, (to, bits))
                else:
                    if trace is not None:
                        trace.record(round_index, "send", v, (to, bits))
                    if codec_check:
                        payload = decode_payload(encode_payload(payload))
                    in_flight.setdefault(to, {})[v] = payload

    # Round 0: local initialisation.
    for v in graph.nodes:
        programs[v].on_start(contexts[v])
        if contexts[v].halted:
            if trace is not None:
                trace.record(0, "halt", v, contexts[v].output)
        else:
            active.add(v)
    collect(0, graph.nodes)

    round_index = 0
    while active:
        round_index += 1
        if round_index > max_rounds:
            raise RoundLimitExceeded(max_rounds, len(active))
        metrics.rounds = round_index
        if trace is not None:
            trace.record(round_index, "round", -1)
        inboxes = in_flight
        in_flight = {}
        executed = sorted(active)
        for v in executed:
            ctx = contexts[v]
            ctx._advance_round()
            programs[v].on_round(ctx, inboxes.get(v, _EMPTY_INBOX))
        collect(round_index, executed)
        for v in executed:
            if contexts[v].halted:
                active.discard(v)
                if trace is not None:
                    trace.record(round_index, "halt", v, contexts[v].output)

    outputs = {v: contexts[v].output for v in graph.nodes}
    return RunResult(outputs=outputs, metrics=metrics, n_bound=network.n_bound)
