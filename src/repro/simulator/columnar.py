"""The columnar execution backend.

Executes one simulation as whole-round numpy array operations using the
fleet kernels (:mod:`repro.fleet`), falling back to the per-node
reference scheduler whenever exact per-event semantics are required:

* a fault plan is in force (explicit ``faults=`` or ambient) — fault
  routing is per-message;
* event sinks are attached (``trace=``/``sink=`` or ambient) — sinks see
  per-message ``send``/``drop``/``halt`` events;
* ``codec_check=True`` — payloads must round-trip the real codec;
* no kernel is registered for the algorithm, or the kernel raises
  :class:`~repro.fleet.FleetFallback` for this input (possible
  over-budget payloads, dense state too large).

Because the fallback is the reference implementation, selecting the
columnar backend never changes results — only wall-clock.

Fallbacks are never silent: every one is recorded with a reason code
(``faults``/``sinks``/``codec-check``/``no-kernel``/``over-budget``/
``dense-state``/...) through :mod:`repro.obs.telemetry` — counted in the
process-global metric registry and, when a run-telemetry collector is
installed (the batch engine installs one per job), attached to the job
outcome so the service and ``repro inspect`` can surface them.
Successful kernel executions report their wall time the same way.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional, Union

import numpy as np

from repro.obs.telemetry import record_fallback, record_kernel_time
from repro.simulator.instrument import ambient_fault_plan, gather_sinks
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import AlgorithmFactory, RunResult
from repro.simulator.tracing import Trace

__all__ = ["ColumnarBackend"]


class ColumnarBackend:
    """Vectorized rounds over CSR; per-node fallback for exact cases."""

    name = "columnar"

    def execute(
        self,
        network: Union[Network, Any],
        algorithm_factory: AlgorithmFactory,
        *,
        policy: Optional[BandwidthPolicy] = None,
        seed: Union[int, None, np.random.SeedSequence] = None,
        max_rounds: int = 100_000,
        trace: Optional[Trace] = None,
        sink: Optional[Any] = None,
        codec_check: bool = False,
        faults: Optional[Any] = None,
    ) -> RunResult:
        from repro.simulator.runner import _execute_per_node

        if not isinstance(network, Network):
            network = Network.of(network)

        # Constructing the probe up front (also used for the kernel
        # lookup below) costs one factory call and gives every fallback
        # record an algorithm name; the per-node path builds fresh
        # per-node instances regardless, so behaviour is unchanged.
        probe = algorithm_factory()
        algorithm = type(probe).__name__

        def fallback(reason: str, detail: str = "") -> RunResult:
            record_fallback(algorithm, reason, detail)
            return _execute_per_node(
                network,
                algorithm_factory,
                policy=policy,
                seed=seed,
                max_rounds=max_rounds,
                trace=trace,
                sink=sink,
                codec_check=codec_check,
                faults=faults,
            )

        plan = faults if faults is not None else ambient_fault_plan()
        if plan is not None:
            return fallback("faults")
        if codec_check:
            return fallback("codec-check")
        if gather_sinks(trace, sink):
            return fallback("sinks")
        from repro.fleet import FleetFallback, kernel_for

        kernel = kernel_for(probe)
        if kernel is None:
            return fallback("no-kernel")
        t0 = perf_counter()
        try:
            result = kernel(probe, network, policy=policy, seed=seed,
                            max_rounds=max_rounds)
        except FleetFallback as exc:
            return fallback(getattr(exc, "reason", "kernel"), str(exc))
        record_kernel_time(algorithm, perf_counter() - t0)
        return result
