"""Per-node randomness streams.

Distributed algorithms assume each node flips *independent private* coins.
We derive one ``numpy`` Generator per node from a single master seed with
``SeedSequence.spawn``, which guarantees statistical independence between
streams and bit-for-bit reproducibility of every run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["spawn_node_rngs", "derive_seed"]

SeedLike = Union[int, None, np.random.SeedSequence]


def spawn_node_rngs(seed: SeedLike, node_ids: Sequence[int]) -> Dict[int, np.random.Generator]:
    """One independent Generator per node, keyed by node id.

    The mapping is by *position in the sorted id list*, so the same
    ``(seed, node set)`` pair always produces the same per-node streams
    regardless of input order.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    ordered = sorted(node_ids)
    children = ss.spawn(len(ordered))
    return {v: np.random.default_rng(child) for v, child in zip(ordered, children)}


def derive_seed(seed: SeedLike, index: int) -> np.random.SeedSequence:
    """A child SeedSequence for sub-phase ``index`` of a composed algorithm.

    Phase-based algorithms (boosting, the arboricity peeling) run many
    sub-simulations; deriving each phase's seed from the master seed keeps
    the whole composition reproducible from one integer.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(index + 1)[index]
