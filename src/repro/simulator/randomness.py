"""Per-node randomness streams.

Distributed algorithms assume each node flips *independent private* coins.
We derive one ``numpy`` Generator per node from a single master seed with
``SeedSequence.spawn``, which guarantees statistical independence between
streams and bit-for-bit reproducibility of every run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["spawn_node_rngs", "spawn_node_seeds", "derive_seed"]

SeedLike = Union[int, None, np.random.SeedSequence]


def spawn_node_seeds(seed: SeedLike, node_ids: Sequence[int]) -> Dict[int, np.random.SeedSequence]:
    """One child :class:`~numpy.random.SeedSequence` per node, keyed by id.

    The mapping is by *position in the sorted id list*, so the same
    ``(seed, node set)`` pair always produces the same per-node streams
    regardless of input order.  The runner hands these to
    :class:`~repro.simulator.context.NodeContext`, which only pays for
    Generator construction if the node actually draws randomness.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    ordered = sorted(node_ids)
    return dict(zip(ordered, ss.spawn(len(ordered))))


def spawn_node_rngs(seed: SeedLike, node_ids: Sequence[int]) -> Dict[int, np.random.Generator]:
    """One independent Generator per node, keyed by node id.

    Same streams as :func:`spawn_node_seeds` fed through
    ``np.random.default_rng`` (``Generator(PCG64(child))`` is the same
    construction, spelled without the dispatch overhead).
    """
    return {
        v: np.random.Generator(np.random.PCG64(child))
        for v, child in spawn_node_seeds(seed, node_ids).items()
    }


def derive_seed(seed: SeedLike, index: int) -> np.random.SeedSequence:
    """A child SeedSequence for sub-phase ``index`` of a composed algorithm.

    Phase-based algorithms (boosting, the arboricity peeling) run many
    sub-simulations; deriving each phase's seed from the master seed keeps
    the whole composition reproducible from one integer.
    """
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(index + 1)[index]
