"""The node-side API surface.

A :class:`NodeContext` is the *only* handle an algorithm gets, and it
deliberately exposes exactly the knowledge model of the paper (§3,
"Assumptions"): a node knows its own identifier, its weight, its incident
edges (as neighbour identifiers), private randomness, and a polynomial
upper bound ``n_bound`` on the network size — but *not* ``n``, ``Δ``, or
anything global.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ProtocolError
from repro.simulator.message import validate_payload

__all__ = ["NodeContext"]


class NodeContext:
    """Per-node view of the network during a simulation.

    Algorithms call :meth:`send` / :meth:`broadcast` to queue messages for
    delivery at the start of the *next* round, and :meth:`halt` to finish
    with an output value.  One message per neighbour per round (the CONGEST
    discipline); bundle fields into a tuple instead of sending twice.
    """

    __slots__ = ("node_id", "neighbors", "weight", "n_bound",
                 "_rng", "_seed_child",
                 "_outbox", "_halted", "_output", "_round", "_nbr_set")

    def __init__(self, node_id: int, neighbors: Tuple[int, ...], weight: float,
                 rng: Union[np.random.Generator, np.random.SeedSequence],
                 n_bound: int, nbr_set: Optional[frozenset] = None):
        self.node_id = node_id
        self.neighbors = neighbors
        self.weight = weight
        if isinstance(rng, np.random.SeedSequence):
            # Deferred: the Generator is built on first `.rng` access, so
            # nodes that never flip a coin skip PCG64 construction (a
            # measurable cost when phase algorithms spawn thousands of
            # short sub-simulations).
            self._rng = None
            self._seed_child = rng
        else:
            self._rng = rng
            self._seed_child = None
        self.n_bound = n_bound
        self._outbox: Dict[int, Any] = {}
        self._halted = False
        self._output: Any = None
        self._round = 0
        # The runner passes the graph's shared frozenset so repeated
        # sub-simulations of the same graph don't rebuild it per run.
        self._nbr_set = frozenset(neighbors) if nbr_set is None else nbr_set

    # ------------------------------------------------------------------ #
    # info
    # ------------------------------------------------------------------ #

    @property
    def rng(self) -> np.random.Generator:
        """The node's private randomness stream (built on first use)."""
        r = self._rng
        if r is None:
            # Identical stream to ``np.random.default_rng(child)``.
            r = self._rng = np.random.Generator(
                np.random.PCG64(self._seed_child)
            )
        return r

    @property
    def degree(self) -> int:
        """The node's own degree (locally known)."""
        return len(self.neighbors)

    @property
    def round_index(self) -> int:
        """Current communication round (0 = the pre-communication step)."""
        return self._round

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def output(self) -> Any:
        return self._output

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #

    def send(self, to: int, payload: Any) -> None:
        """Queue ``payload`` for neighbour ``to`` (delivered next round)."""
        if self._halted:
            raise ProtocolError(f"node {self.node_id} sent after halting")
        if to not in self._nbr_set:
            raise ProtocolError(
                f"node {self.node_id} sent to non-neighbour {to}"
            )
        if to in self._outbox:
            raise ProtocolError(
                f"node {self.node_id} sent twice to {to} in one round; "
                "bundle fields into a single tuple payload"
            )
        validate_payload(payload)
        self._outbox[to] = payload

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbour.

        Validates the payload once (it is the same object for every
        copy) instead of once per neighbour; the per-recipient checks
        match :meth:`send` exactly.
        """
        if self._halted:
            raise ProtocolError(f"node {self.node_id} sent after halting")
        validate_payload(payload)
        outbox = self._outbox
        for to in self.neighbors:
            if to in outbox:
                raise ProtocolError(
                    f"node {self.node_id} sent twice to {to} in one round; "
                    "bundle fields into a single tuple payload"
                )
            outbox[to] = payload

    def halt(self, output: Any = None) -> None:
        """Finish with ``output``.  Messages queued this round still go out."""
        if self._halted:
            raise ProtocolError(f"node {self.node_id} halted twice")
        self._halted = True
        self._output = output

    # ------------------------------------------------------------------ #
    # runner-side plumbing (not for algorithms)
    # ------------------------------------------------------------------ #

    def _drain_outbox(self) -> Dict[int, Any]:
        out = self._outbox
        self._outbox = {}
        return out

    def _advance_round(self) -> None:
        self._round += 1
