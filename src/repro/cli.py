"""Command-line interface.

Subcommands::

    python -m repro run --algorithm thm2 --graph gnp:300,0.04 \\
        --weights uniform:1,100 --eps 0.5 --seed 7
    python -m repro sweep --algorithm ranking --graph gnp:100,0.05 \\
        --seeds 32 --jobs 4 --cache .sweep-cache --json
    python -m repro experiments E1 E5 E9 --jobs 4
    python -m repro run --algorithm thm1 --record trace.jsonl --phases
    python -m repro inspect trace.jsonl --format chrome-trace
    python -m repro bench --baseline BENCH_runner.json --tolerance 1.5
    python -m repro info --graph grid:10,20 --weights integers:1000
    python -m repro algorithms
    python -m repro serve --port 8008 --workers 4 --cache .serve-cache
    python -m repro fleet --port 8009 --workers 4 --cache .fleet-cache
    python -m repro loadgen --port 8008 --clients 8 --duration 5
    python -m repro loadgen --arrival poisson --rate 100 --arrival-seed 7
    python -m repro loadgen --saturation --workers-list 1,2,4
    python -m repro loadgen --graph-ref --clients 8 --duration 5

Graph specs: ``gnp:n,p`` | ``regular:n,d`` | ``tree:n`` | ``grid:r,c`` |
``cycle:n`` | ``path:n`` | ``geometric:n,radius`` | ``caterpillar:spine,legs``
| ``file:PATH`` (the text format of :mod:`repro.graphs.io`).

Weight specs: ``unit`` | ``uniform:lo,hi`` | ``integers:W`` |
``skewed:fraction,heavy`` | ``degree``.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.graphs import WeightedGraph, summarize
from repro.graphs.specs import graph_from_spec, weights_from_spec

__all__ = ["main", "parse_graph_spec", "parse_weight_spec"]


def parse_graph_spec(spec: str, seed: Optional[int]) -> WeightedGraph:
    """Materialize a graph from a ``kind:args`` spec string (CLI flavour:
    parse errors exit instead of raising)."""
    try:
        return graph_from_spec(spec, seed)
    except ValueError as exc:
        raise SystemExit(str(exc))


def parse_weight_spec(spec: str, graph: WeightedGraph, seed: Optional[int]) -> WeightedGraph:
    """Apply a weight scheme spec to ``graph`` (CLI flavour: parse errors
    exit instead of raising)."""
    try:
        return weights_from_spec(spec, graph, seed)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _algorithms() -> Dict[str, Callable]:
    from repro.core import (
        bar_yehuda_maxis,
        boppana_is,
        good_nodes_approx,
        low_arboricity_maxis,
        low_degree_maxis,
        sparsified_approx,
        theorem1_maxis,
        theorem2_maxis,
        weighted_greedy_maxis,
    )
    from repro.mis import ghaffari_mis, local_minima_mis, luby_mis

    return {
        "thm1": lambda g, eps, seed: theorem1_maxis(g, eps, seed=seed),
        "thm2": lambda g, eps, seed: theorem2_maxis(g, eps, seed=seed),
        "thm3": lambda g, eps, seed: low_arboricity_maxis(g, eps, seed=seed),
        "thm5": lambda g, eps, seed: low_degree_maxis(g, eps, seed=seed),
        "thm8": lambda g, eps, seed: good_nodes_approx(g, seed=seed),
        "thm9": lambda g, eps, seed: sparsified_approx(g, seed=seed),
        "ranking": lambda g, eps, seed: boppana_is(g, seed=seed),
        "bar-yehuda": lambda g, eps, seed: bar_yehuda_maxis(g, seed=seed),
        "weighted-greedy": lambda g, eps, seed: weighted_greedy_maxis(g, seed=seed),
        "mis-luby": lambda g, eps, seed: luby_mis(g, seed=seed),
        "mis-ghaffari": lambda g, eps, seed: ghaffari_mis(g, seed=seed),
        "mis-det": lambda g, eps, seed: local_minima_mis(g, seed=seed),
    }


def _fault_plan(args: argparse.Namespace):
    """Build the composite fault plan from ``--loss/--delay/--dup/--crash``
    flags (``None`` when no fault flag was given)."""
    loss = getattr(args, "loss", None)
    delay = getattr(args, "delay", None)
    dup = getattr(args, "dup", None)
    crash = getattr(args, "crash", None)
    if not (loss or delay or dup or crash):
        return None
    from repro.faults import (MessageDelay, MessageDuplication, MessageLoss,
                              composite, parse_crash_spec)

    plans = []
    try:
        if loss:
            plans.append(MessageLoss(loss))
        if delay:
            plans.append(MessageDelay(delay))
        if dup:
            plans.append(MessageDuplication(dup))
        if crash:
            plans.append(parse_crash_spec(crash))
    except ValueError as exc:
        raise SystemExit(f"bad fault flag: {exc}")
    return composite(*plans)


@contextmanager
def _report_fault_failure(plan, args: argparse.Namespace):
    """Turn an algorithm crash under injected faults into a clean report."""
    from repro.exceptions import ReproError

    try:
        yield
    except (ReproError, ArithmeticError, LookupError, TypeError,
            ValueError) as exc:
        doc = {"algorithm": args.algorithm, "faults": plan.describe(),
               "failed": True, "error": f"{type(exc).__name__}: {exc}"}
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(f"algorithm {args.algorithm} failed under "
                  f"{plan.describe()}: {doc['error']}")
        raise SystemExit(1)


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    graph = parse_graph_spec(args.graph, args.seed)
    graph = parse_weight_spec(args.weights, graph, None if args.seed is None
                              else args.seed + 1)
    algorithms = _algorithms()
    plan = _fault_plan(args)

    with ExitStack() as stack:
        if args.backend and args.backend != "per-node":
            from repro.simulator.instrument import install_backend

            stack.enter_context(install_backend(args.backend))
        if plan is not None:
            from repro.simulator.instrument import install_faults

            stack.enter_context(install_faults(plan))
            # Under faults an algorithm may fail outright (e.g. a delayed
            # message from an earlier phase reaching a later-phase handler).
            # That is a legitimate measurement — report it, don't traceback.
            stack.enter_context(_report_fault_failure(plan, args))
        if args.record is not None:
            from repro.obs import JsonlStreamSink
            from repro.simulator.instrument import install_sink

            sink = stack.enter_context(JsonlStreamSink(args.record))
            sink.write({
                "type": "meta",
                "algorithm": args.algorithm,
                "graph_spec": args.graph,
                "weights_spec": args.weights,
                "eps": args.eps,
                "seed": args.seed,
                "n": graph.n,
                "m": graph.m,
                **({"faults": plan.describe()} if plan is not None else {}),
            })
            with install_sink(sink):
                result = algorithms[args.algorithm](graph, args.eps, args.seed)
            sink.write({
                "type": "result",
                "algorithm": args.algorithm,
                "independent_set_size": result.size,
                "independent_set_weight": result.weight(graph),
                "metrics": result.metrics.to_dict(),
            })
        else:
            result = algorithms[args.algorithm](graph, args.eps, args.seed)

    payload = {
        "algorithm": args.algorithm,
        "graph": {"n": graph.n, "m": graph.m, "max_degree": graph.max_degree,
                  "total_weight": graph.total_weight()},
        "independent_set_size": result.size,
        "independent_set_weight": result.weight(graph),
        "rounds": result.rounds,
        "messages": result.messages,
        "max_message_bits": result.metrics.max_message_bits,
    }
    if plan is None:
        from repro.core import assert_independent

        assert_independent(graph, result.independent_set)
    else:
        # Under faults independence is a measurement, not an invariant:
        # report it instead of crashing the command.
        from repro.core import is_independent

        m = result.metrics
        payload["faults"] = plan.describe()
        payload["independent"] = is_independent(graph, result.independent_set)
        payload["fault_dropped_messages"] = m.fault_dropped_messages
        payload["fault_delayed_messages"] = m.fault_delayed_messages
        payload["fault_duplicated_messages"] = m.fault_duplicated_messages
        payload["crashed_nodes"] = m.crashed_nodes
    if args.show_set:
        payload["independent_set"] = sorted(result.independent_set)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    if args.phases:
        from repro.obs import render_phase_table

        if result.metrics.span is None:
            print("(no span tree recorded: algorithm is not instrumented)")
        else:
            print()
            print(render_phase_table(result.metrics.span))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import inspect
    from pathlib import Path

    from repro.bench import ALL_EXPERIMENTS

    names = args.names or sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:]))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; known: {sorted(ALL_EXPERIMENTS)}"
        )
    from contextlib import ExitStack

    from repro.bench.deep import deep_kwargs

    with ExitStack() as stack:
        if args.emit_metrics is not None:
            from repro.obs import JsonlStreamSink
            from repro.simulator.instrument import install_outcome_emitter

            sink = stack.enter_context(JsonlStreamSink(args.emit_metrics))
            stack.enter_context(install_outcome_emitter(sink.write))
        for name in names:
            kwargs = deep_kwargs(name) if args.deep else {}
            fn = ALL_EXPERIMENTS[name]
            # Seed-sweep experiments accept batch-engine knobs; the rest don't.
            accepted = inspect.signature(fn).parameters
            if "n_jobs" in accepted:
                kwargs.setdefault("n_jobs", args.jobs)
            if "cache_dir" in accepted and args.cache is not None:
                kwargs.setdefault("cache_dir", args.cache)
            report = fn(**kwargs)
            print(report.render())
            print()
            if args.json_dir:
                out = Path(args.json_dir)
                out.mkdir(parents=True, exist_ok=True)
                (out / f"{name}.json").write_text(report.to_json())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Seed sweep of one algorithm on one instance via the batch engine."""
    from repro.simulator.batch import BatchJob, batch_run

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    graph = parse_graph_spec(args.graph, args.seed)
    graph = parse_weight_spec(args.weights, graph, None if args.seed is None
                              else args.seed + 1)
    params = {"eps": args.eps} if args.algorithm in ("thm1", "thm2", "thm3",
                                                     "thm5") else {}
    backend = args.backend if args.backend != "per-node" else None
    jobs = [BatchJob(graph, args.algorithm, params=dict(params),
                     backend=backend)
            for _ in range(args.seeds)]
    try:
        if args.emit_metrics is not None:
            from repro.obs import JsonlStreamSink
            from repro.simulator.instrument import install_outcome_emitter

            with JsonlStreamSink(args.emit_metrics) as sink:
                with install_outcome_emitter(sink.write):
                    result = batch_run(jobs, master_seed=args.seed,
                                       n_jobs=args.jobs, cache_dir=args.cache)
        else:
            result = batch_run(jobs, master_seed=args.seed, n_jobs=args.jobs,
                               cache_dir=args.cache)
    except ValueError as exc:
        raise SystemExit(str(exc))
    payload = result.summary()
    payload["algorithm"] = args.algorithm
    payload["graph"] = {"n": graph.n, "m": graph.m,
                        "max_degree": graph.max_degree}
    payload["master_seed"] = args.seed
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    return 1 if result.failures else 0


def _find_span(records: List[dict]) -> Optional[dict]:
    """Latest span tree in a recording: a final ``result`` record wins,
    otherwise the last per-job record that carried one."""
    span = None
    for doc in records:
        if doc.get("type") in ("result", "job"):
            candidate = (doc.get("metrics") or {}).get("span")
            if candidate is not None:
                span = candidate
    return span


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Render a recorded JSONL trace (``run --record`` / ``--emit-metrics``)."""
    from repro.obs import (
        aggregate_jobs,
        chrome_trace,
        read_jsonl,
        render_cells,
        render_phase_table,
        render_round_timeline,
        render_telemetry,
        rows_from_events,
        telemetry_summary,
    )
    from repro.simulator.metrics import SpanNode

    try:
        records = read_jsonl(args.path)
    except ValueError as exc:
        # Truncated or corrupt recording: fail with the offending line,
        # not a bare JSON traceback.
        raise SystemExit(str(exc))
    if not records:
        raise SystemExit(f"{args.path}: no records")

    if args.format == "timeline":
        rows = rows_from_events(records)
        if not rows:
            raise SystemExit(
                f"{args.path}: no per-round events (recorded without a sink?)"
            )
        print(render_round_timeline(rows, max_rounds=args.max_rounds))
        return 0

    if args.format in ("phases", "chrome-trace"):
        span_doc = _find_span(records)
        if span_doc is None:
            raise SystemExit(
                f"{args.path}: no span tree recorded "
                "(algorithm not instrumented, or metrics record missing)"
            )
        span = SpanNode.from_dict(span_doc)
        if args.format == "phases":
            print(render_phase_table(span))
        else:
            print(json.dumps(chrome_trace(span), indent=2))
        return 0

    if args.format == "telemetry":
        if args.json:
            print(json.dumps(telemetry_summary(records), indent=2))
        else:
            print(render_telemetry(records))
        return 0

    # format == "sweep": aggregate per-job records into p50/p95 cells.
    job_docs = [doc for doc in records if doc.get("type") == "job"]
    if not job_docs:
        raise SystemExit(f"{args.path}: no per-job records to aggregate")
    cells = aggregate_jobs(job_docs)
    if args.json:
        print(json.dumps([cells[key] for key in sorted(cells)], indent=2))
    else:
        print(render_cells(cells))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    """Degradation sweep: algorithms × fault plans, validity re-checked."""
    from contextlib import ExitStack

    from repro.faults import (MessageDelay, MessageDuplication, MessageLoss,
                              composite, parse_crash_spec, resilience_sweep)

    if args.trials < 1:
        raise SystemExit(f"--trials must be >= 1, got {args.trials}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    graph = parse_graph_spec(args.graph, args.seed)
    graph = parse_weight_spec(args.weights, graph, None if args.seed is None
                              else args.seed + 1)

    try:
        loss_rates = [float(x) for x in args.loss.split(",") if x]
    except ValueError as exc:
        raise SystemExit(f"bad --loss list {args.loss!r}: {exc}")
    plans = []
    try:
        extra = []
        if args.delay:
            extra.append(MessageDelay(args.delay))
        if args.dup:
            extra.append(MessageDuplication(args.dup))
        if args.crash:
            extra.append(parse_crash_spec(args.crash))
        for p in loss_rates:
            stack_plans = ([MessageLoss(p)] if p > 0 else []) + extra
            plans.append(composite(*stack_plans) if stack_plans else None)
    except ValueError as exc:
        raise SystemExit(f"bad fault flag: {exc}")

    algorithms = args.algorithm or ["thm8"]
    known = sorted(_algorithms())
    unknown = [a for a in algorithms if a not in known]
    if unknown:
        raise SystemExit(f"unknown algorithms {unknown}; known: {known}")
    params = {a: {"eps": args.eps} for a in algorithms
              if a in ("thm1", "thm2", "thm3", "thm5")}

    with ExitStack() as stack:
        sink = None
        if args.emit_metrics is not None:
            from repro.obs import JsonlStreamSink
            from repro.simulator.instrument import install_outcome_emitter

            sink = stack.enter_context(JsonlStreamSink(args.emit_metrics))
            stack.enter_context(install_outcome_emitter(sink.write))
        try:
            report = resilience_sweep(
                graph, algorithms, plans,
                trials=args.trials, master_seed=args.seed, n_jobs=args.jobs,
                cache_dir=args.cache, params=params,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        if sink is not None:
            for doc in report.to_docs():
                sink.write(doc)

    if args.json:
        print(json.dumps([c.to_doc() for c in report.cells], indent=2))
    else:
        print(report.render())
    return 1 if report.batch.failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Perf-gate benchmark: time the hot-path cell matrix, optionally
    gate against a committed baseline (see docs/performance.md)."""
    from repro.bench.perf_gate import resolve_matrix, run_gate

    try:
        return run_gate(matrix=resolve_matrix(args),
                        repeats=args.repeats, out=args.out,
                        baseline=args.baseline, tolerance=args.tolerance,
                        as_json=args.json)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run an algorithm and certify its guarantee against exact OPT (small
    instances) or the fraction-of-total bound (any size)."""
    graph = parse_graph_spec(args.graph, args.seed)
    graph = parse_weight_spec(args.weights, graph, None if args.seed is None
                              else args.seed + 1)
    algorithms = _algorithms()
    result = algorithms[args.algorithm](graph, args.eps, args.seed)

    from repro.core import certify_fraction_bound, certify_ratio, exact_max_weight_is
    from repro.exceptions import SolverLimitError

    delta = max(1, graph.max_degree)
    factor = (1 + args.eps) * delta
    lines = [
        f"algorithm: {args.algorithm}",
        f"w(I) = {result.weight(graph):.3f} over {result.size} nodes "
        f"in {result.rounds} rounds",
    ]
    try:
        _, opt = exact_max_weight_is(graph, limit_nodes=args.exact_limit)
        cert = certify_ratio(graph, result.independent_set, factor, opt=opt)
        lines.append(f"exact OPT = {opt:.3f}; measured ratio = "
                     f"{opt / max(result.weight(graph), 1e-12):.3f}")
        lines.append(f"(1+eps)*Delta = {factor:.2f} certificate: "
                     f"{'HOLDS' if cert.holds else 'VIOLATED'}")
        failed = not cert.holds
    except SolverLimitError:
        cert = certify_fraction_bound(
            graph, result.independent_set, (1 + args.eps) * (delta + 1)
        )
        lines.append(
            f"instance too large for exact OPT; checked w(I) >= "
            f"w(V)/((1+eps)(Delta+1)) = {cert.required:.3f}: "
            f"{'HOLDS' if cert.holds else 'VIOLATED'}"
        )
        from repro.core import opt_upper_bound

        ub = opt_upper_bound(graph)
        lines.append(
            f"certified OPT upper bound (clique cover) = {ub:.3f}; "
            f"ratio is therefore at most {ub / max(result.weight(graph), 1e-12):.3f}"
        )
        failed = not cert.holds
    print("\n".join(lines))
    return 1 if failed else 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    """List the registry: every blessed algorithm name + its parameters."""
    from repro.api import describe_algorithms

    entries = describe_algorithms()
    if args.json:
        print(json.dumps(entries, indent=2, default=repr))
        return 0
    for entry in entries:
        parts = []
        for p in entry["params"]:
            if "default" in p:
                parts.append(f"{p['name']}={p['default']!r}")
            else:
                parts.append(p["name"])
        if entry["accepts_extra_params"]:
            parts.append("**params")
        print(f"{entry['name']}({', '.join(parts)})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the solver service until SIGTERM/SIGINT, then drain."""
    from repro.service import serve

    try:
        return serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_dir=args.cache,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            memory_cache=args.memory_cache,
            worker_id=args.worker_id,
            backend=args.backend,
            graph_store=args.graph_store,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run the sharded multi-worker fleet until SIGTERM/SIGINT."""
    from repro.service.fleet import run_fleet

    try:
        return run_fleet(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_dir=args.cache,
            memory_cache=args.memory_cache,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            backend=args.backend,
            scratch_dir=args.scratch,
            graph_store=args.graph_store,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}")


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Benchmark a service: closed loop (default), open loop, or the
    fleet saturation sweep."""
    if args.saturation:
        return _cmd_loadgen_saturation(args)
    if args.churn:
        return _cmd_loadgen_churn(args)
    if args.arrival != "closed":
        return _cmd_loadgen_open(args)
    from repro.service import run_loadgen

    try:
        doc = run_loadgen(
            host=args.host,
            port=args.port,
            clients=args.clients,
            duration_s=args.duration,
            out_path=args.out,
            verify=not args.no_verify,
            slo=args.slo,
            graph_ref=args.graph_ref,
        )
    except (ValueError, TypeError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach service at {args.host}:{args.port}: {exc}"
        )
    lat = doc["latency"]
    print(f"completed: {doc['completed']}/{doc['sent']} "
          f"({doc['throughput_rps']:.1f} req/s over {doc['elapsed_s']:.1f}s)")
    print(f"latency: p50 {lat['p50_s'] * 1e3:.1f} ms, "
          f"p95 {lat['p95_s'] * 1e3:.1f} ms, "
          f"p99 {lat['p99_s'] * 1e3:.1f} ms")
    print(f"served: {doc['served']['cached']} cached, "
          f"{doc['served']['coalesced']} coalesced, "
          f"{doc['served']['with_trace_id']} traced; "
          f"status mix {doc['status_counts']}")
    v = doc["verification"]
    if v["enabled"]:
        print(f"verified: {v['verified']}/{doc['unique_reports']} unique "
              f"reports certified")
        for failure in v["failures"]:
            print(f"  FAIL {failure}")
    if doc["divergent_reports"]:
        print(f"  FAIL {doc['divergent_reports']} keys returned "
              f"non-identical report bytes")
    slo_violated = False
    if "slo" in doc:
        from repro.service.slo import SLOCheck, SLOReport

        report = SLOReport(
            spec_name=doc["slo"]["spec"],
            checks=[SLOCheck(**c) for c in doc["slo"]["checks"]],
        )
        print(report.render())
        slo_violated = not report.holds
    if args.out:
        print(f"wrote {args.out}")
    failed = (doc["completed"] == 0 or doc["divergent_reports"] > 0
              or (v["enabled"] and v["failures"]) or slo_violated)
    return 1 if failed else 0


def _cmd_loadgen_open(args: argparse.Namespace) -> int:
    """Open-loop benchmark at a fixed offered rate."""
    from repro.service import run_open_loop

    try:
        doc = run_open_loop(
            host=args.host,
            port=args.port,
            rate=args.rate,
            duration_s=args.duration,
            arrival=args.arrival,
            arrival_seed=args.arrival_seed,
            burst_size=args.burst_size,
            out_path=args.out,
            graph_ref=args.graph_ref,
        )
    except (ValueError, TypeError) as exc:
        raise SystemExit(str(exc))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach service at {args.host}:{args.port}: {exc}"
        )
    lat = doc["latency"]
    print(f"offered: {doc['offered']} arrivals "
          f"({doc['offered_rps']:.1f} req/s, {args.arrival}, "
          f"seed {args.arrival_seed})")
    print(f"achieved: {doc['completed']} completed "
          f"({doc['achieved_rps']:.1f} req/s; goodput "
          f"{doc['goodput_ratio'] * 100:.1f}%); "
          f"{doc['rejected']} rejected, {doc['gave_up']} gave up")
    print(f"latency (from scheduled arrival): "
          f"p50 {lat['p50_s'] * 1e3:.1f} ms, "
          f"p95 {lat['p95_s'] * 1e3:.1f} ms, "
          f"p99 {lat['p99_s'] * 1e3:.1f} ms")
    print(f"served: {doc['served']['cached']} cached, "
          f"{doc['served']['coalesced']} coalesced; "
          f"status mix {doc['status_counts']}")
    if args.out:
        print(f"wrote {args.out}")
    failed = doc["completed"] == 0 or doc["divergent_reports"] > 0
    return 1 if failed else 0


def _cmd_loadgen_churn(args: argparse.Namespace) -> int:
    """Churn benchmark: a mutating graph under a deterministic edit
    schedule, solved by delta every epoch."""
    from repro.service import run_churn

    out = args.out if args.out != "BENCH_service.json" else "BENCH_churn.json"
    try:
        doc = run_churn(
            host=args.host,
            port=args.port,
            epochs=args.churn_epochs,
            edits_per_epoch=args.churn_edits,
            crash_fraction=args.churn_crash_fraction,
            algorithm=args.churn_algorithm,
            seed=args.arrival_seed,
            out_path=out or None,
        )
    except (ValueError, TypeError) as exc:
        raise SystemExit(str(exc))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach service at {args.host}:{args.port}: {exc}"
        )
    print(f"epochs: {doc['epochs']} ({doc['incremental']} incremental, "
          f"{doc['full']} full, {doc['failed']} failed; "
          f"incremental rate {doc['incremental_rate'] * 100:.0f}%)")
    df = doc["dirty_frontier"]
    print(f"dirty frontier: mean {df['mean']:.1f}, max {df['max']} "
          f"over {df['observed']} delta solves")
    lat = doc["latency"]
    print(f"latency: p50 {lat['p50_s'] * 1e3:.1f} ms, "
          f"p95 {lat['p95_s'] * 1e3:.1f} ms")
    if out:
        print(f"wrote {out}")
    return 1 if doc["failed"] else 0


def _cmd_loadgen_saturation(args: argparse.Namespace) -> int:
    """Saturation sweep: boots its own fleets, writes BENCH_fleet.json."""
    from repro.service.fleet import saturation_sweep

    try:
        workers = tuple(int(x) for x in args.workers_list.split(",") if x)
        rates = tuple(float(x) for x in args.rates.split(",") if x)
    except ValueError as exc:
        raise SystemExit(f"bad --workers-list/--rates: {exc}")
    arrival = args.arrival if args.arrival != "closed" else "poisson"
    # The loadgen default --out targets the closed-loop document; the
    # sweep has its own committed artifact name.
    out = args.out if args.out != "BENCH_service.json" else "BENCH_fleet.json"
    try:
        doc = saturation_sweep(
            worker_counts=workers,
            rates=rates,
            duration_s=args.duration,
            arrival=arrival,
            arrival_seed=args.arrival_seed,
            burst_size=args.burst_size,
            out_path=out or "BENCH_fleet.json",
        )
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    for workers_n, knee in sorted(doc["knee_by_workers"].items(),
                                  key=lambda kv: int(kv[0])):
        if knee:
            print(f"workers={workers_n}: knee {knee['achieved_rps']:.1f} "
                  f"req/s achieved at {knee['offered_rps']:.1f} offered "
                  f"(p99 {knee['p99_s'] * 1e3:.1f} ms)")
        else:
            print(f"workers={workers_n}: no rung kept up")
    if doc["speedup_4v1"] is not None:
        print(f"4-worker vs 1-worker knee throughput: "
              f"{doc['speedup_4v1']:.2f}x "
              f"(host has {doc['host']['cpu_count']} CPUs)")
    print(f"wrote {out or 'BENCH_fleet.json'}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph, args.seed)
    graph = parse_weight_spec(args.weights, graph, None if args.seed is None
                              else args.seed + 1)
    s = summarize(graph)
    from repro.graphs import arboricity, degeneracy

    print(f"n: {s.n}\nm: {s.m}\nmax_degree: {s.max_degree}")
    print(f"avg_degree: {s.avg_degree:.2f}")
    print(f"total_weight: {s.total_weight:.2f}\nmax_weight: {s.max_weight:.2f}")
    print(f"components: {s.components}")
    print(f"degeneracy: {degeneracy(graph)}")
    if graph.n <= args.arboricity_limit:
        print(f"arboricity: {arboricity(graph)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed MaxIS approximation (PODC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm on one instance")
    p_run.add_argument("--algorithm", choices=sorted(_algorithms()), default="thm2")
    p_run.add_argument("--graph", default="gnp:200,0.05", help="graph spec")
    p_run.add_argument("--weights", default="uniform:1,100", help="weight spec")
    p_run.add_argument("--eps", type=float, default=0.5)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--backend", choices=["per-node", "columnar"],
                       default="per-node",
                       help="execution backend (columnar = vectorized "
                            "rounds, byte-identical results)")
    p_run.add_argument("--json", action="store_true", help="JSON output")
    p_run.add_argument("--show-set", action="store_true",
                       help="include the chosen node ids")
    p_run.add_argument("--record", default=None, metavar="PATH",
                       help="stream simulator events + metrics to a JSONL "
                            "file (inspect with `repro inspect`)")
    p_run.add_argument("--phases", action="store_true",
                       help="print the per-phase span table after the run")
    p_run.add_argument("--loss", type=float, default=None, metavar="P",
                       help="drop each message with probability P")
    p_run.add_argument("--delay", type=int, default=None, metavar="R",
                       help="defer each message 0..R extra rounds")
    p_run.add_argument("--dup", type=float, default=None, metavar="P",
                       help="duplicate each message with probability P")
    p_run.add_argument("--crash", default=None, metavar="SPEC",
                       help="fail-stop schedule, e.g. 3@5,7@10/r20 "
                            "(node@round, optional /rROUND restart)")
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiments", help="run E1–E13 experiment reports")
    p_exp.add_argument("names", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--json-dir", default=None,
                       help="also write each report as <dir>/<id>.json")
    p_exp.add_argument("--deep", action="store_true",
                       help="use the deep-sweep presets (slower, wider)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for seed-sweep experiments")
    p_exp.add_argument("--cache", default=None, metavar="DIR",
                       help="on-disk result cache for sweep jobs")
    p_exp.add_argument("--emit-metrics", default=None, metavar="PATH",
                       help="append one JSONL record per sweep job")
    p_exp.set_defaults(func=_cmd_experiments)

    p_sweep = sub.add_parser(
        "sweep", help="run one algorithm over many derived seeds in parallel"
    )
    p_sweep.add_argument("--algorithm", choices=sorted(_algorithms()),
                         default="ranking")
    p_sweep.add_argument("--graph", default="gnp:100,0.05", help="graph spec")
    p_sweep.add_argument("--weights", default="uniform:1,20", help="weight spec")
    p_sweep.add_argument("--eps", type=float, default=0.5)
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="master seed; per-job seeds are derived from it")
    p_sweep.add_argument("--backend", choices=["per-node", "columnar"],
                         default="per-node",
                         help="execution backend for every trial")
    p_sweep.add_argument("--seeds", type=int, default=10, metavar="N",
                         help="number of derived-seed jobs")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process)")
    p_sweep.add_argument("--cache", default=None, metavar="DIR",
                         help="on-disk result cache")
    p_sweep.add_argument("--json", action="store_true", help="JSON output")
    p_sweep.add_argument("--emit-metrics", default=None, metavar="PATH",
                         help="write one JSONL record per job (aggregate "
                              "with `repro inspect --format sweep`)")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_inspect = sub.add_parser(
        "inspect", help="render a recorded JSONL trace or metrics stream"
    )
    p_inspect.add_argument("path", help="JSONL file from `run --record` or "
                                        "`sweep --emit-metrics`")
    p_inspect.add_argument("--format",
                           choices=["timeline", "phases", "chrome-trace",
                                    "sweep", "telemetry"],
                           default="phases",
                           help="timeline: per-round traffic; phases: span "
                                "table; chrome-trace: chrome://tracing JSON; "
                                "sweep: p50/p95 cells from per-job records; "
                                "telemetry: backend/kernel/fallback summary "
                                "from per-job records")
    p_inspect.add_argument("--max-rounds", type=int, default=100,
                           help="timeline row cap")
    p_inspect.add_argument("--json", action="store_true",
                           help="JSON output (sweep/telemetry formats only)")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_res = sub.add_parser(
        "resilience",
        help="degradation sweep over message-loss rates (and optional "
             "delay/dup/crash faults), validity re-checked per run",
    )
    p_res.add_argument("--algorithm", action="append", default=None,
                       metavar="NAME",
                       help="algorithm to sweep (repeatable; default thm8)")
    p_res.add_argument("--graph", default="gnp:60,0.08", help="graph spec")
    p_res.add_argument("--weights", default="uniform:1,20", help="weight spec")
    p_res.add_argument("--eps", type=float, default=0.5)
    p_res.add_argument("--loss", default="0,0.05,0.1,0.2", metavar="P,P,...",
                       help="comma-separated loss rates (0 = the fault-free "
                            "baseline)")
    p_res.add_argument("--delay", type=int, default=None, metavar="R",
                       help="also defer messages 0..R rounds (non-baseline "
                            "cells)")
    p_res.add_argument("--dup", type=float, default=None, metavar="P",
                       help="also duplicate messages with probability P")
    p_res.add_argument("--crash", default=None, metavar="SPEC",
                       help="also fail-stop nodes, e.g. 3@5,7@10/r20")
    p_res.add_argument("--trials", type=int, default=5,
                       help="independent seeds per (algorithm, plan) cell")
    p_res.add_argument("--seed", type=int, default=0,
                       help="master seed; per-trial seeds are derived from it")
    p_res.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    p_res.add_argument("--cache", default=None, metavar="DIR",
                       help="on-disk result cache")
    p_res.add_argument("--emit-metrics", default=None, metavar="PATH",
                       help="write per-job + per-cell JSONL records "
                            "(aggregate with `repro inspect --format sweep`)")
    p_res.add_argument("--json", action="store_true", help="JSON output")
    p_res.set_defaults(func=_cmd_resilience)

    p_bench = sub.add_parser(
        "bench",
        help="time the simulator hot path over a fixed cell matrix and "
             "gate against a committed baseline (BENCH_runner.json)",
    )
    from repro.bench.perf_gate import add_bench_arguments

    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_verify = sub.add_parser(
        "verify", help="run an algorithm and certify its guarantee"
    )
    p_verify.add_argument("--algorithm", choices=sorted(_algorithms()), default="thm2")
    p_verify.add_argument("--graph", default="gnp:40,0.12")
    p_verify.add_argument("--weights", default="uniform:1,20")
    p_verify.add_argument("--eps", type=float, default=0.5)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--exact-limit", type=int, default=60,
                          help="max n for the exact-OPT certification")
    p_verify.set_defaults(func=_cmd_verify)

    p_algos = sub.add_parser(
        "algorithms", help="list registry algorithms and their parameters"
    )
    p_algos.add_argument("--json", action="store_true", help="JSON output")
    p_algos.set_defaults(func=_cmd_algorithms)

    p_serve = sub.add_parser(
        "serve",
        help="run the solver service (POST /v1/solve with coalescing, "
             "admission control, and the shared result cache)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8008,
                         help="0 binds an ephemeral port (printed at startup)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="worker processes for micro-batch execution")
    p_serve.add_argument("--cache", default=None, metavar="DIR",
                         help="on-disk result cache shared with sweeps")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admission queue bound (full queue => 429)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="max requests dispatched per micro-batch")
    p_serve.add_argument("--memory-cache", type=int, default=0, metavar="N",
                         help="in-memory LRU report cache entries in front "
                              "of the disk cache (0 = disabled)")
    p_serve.add_argument("--worker-id", default="", metavar="ID",
                         help="tag for health payloads and served envelopes "
                              "when running as a fleet worker")
    p_serve.add_argument("--backend", choices=["per-node", "columnar"],
                         default="per-node",
                         help="default execution backend for requests that "
                              "do not select one")
    p_serve.add_argument("--graph-store", default=None, metavar="DIR",
                         help="content-addressed graph store directory for "
                              "POST /v1/graphs + graph_ref solves (default: "
                              "<cache>/graphs, or an ephemeral store)")
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded multi-worker fleet: a router in front of N "
             "`repro serve` worker processes, sharded by sha256 request "
             "fingerprint so coalescing and cache locality survive",
    )
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument("--port", type=int, default=8009,
                         help="router port (0 binds an ephemeral port)")
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="solver worker processes to spawn")
    p_fleet.add_argument("--cache", default=None, metavar="DIR",
                         help="shared on-disk result cache (tier 2)")
    p_fleet.add_argument("--memory-cache", type=int, default=256, metavar="N",
                         help="per-worker in-memory LRU entries (tier 1)")
    p_fleet.add_argument("--max-queue", type=int, default=64,
                         help="per-worker admission queue bound")
    p_fleet.add_argument("--max-batch", type=int, default=8,
                         help="per-worker micro-batch size")
    p_fleet.add_argument("--backend", choices=["per-node", "columnar"],
                         default="per-node",
                         help="default execution backend on every worker")
    p_fleet.add_argument("--scratch", default=".fleet", metavar="DIR",
                         help="worker log directory")
    p_fleet.add_argument("--graph-store", default=None, metavar="DIR",
                         help="shared content-addressed graph store for all "
                              "workers (default: <scratch>/graphs)")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_load = sub.add_parser(
        "loadgen",
        help="closed-loop benchmark against a running `repro serve`; "
             "verifies every unique report and writes BENCH_service.json",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=8008)
    p_load.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    p_load.add_argument("--duration", type=float, default=5.0, metavar="S",
                        help="seconds to run")
    p_load.add_argument("--out", default="BENCH_service.json",
                        help="benchmark document path ('' to skip writing)")
    p_load.add_argument("--no-verify", action="store_true",
                        help="skip offline certification of unique reports")
    p_load.add_argument("--slo", default=None, metavar="SPEC.json",
                        help="evaluate an SLO spec against the run; verdicts "
                             "land in the document and violations exit 1")
    p_load.add_argument("--arrival",
                        choices=["closed", "poisson", "bursty", "uniform"],
                        default="closed",
                        help="closed: classic closed loop; otherwise "
                             "open-loop arrivals fired on a deterministic "
                             "schedule at --rate req/s")
    p_load.add_argument("--rate", type=float, default=50.0, metavar="RPS",
                        help="offered load for open-loop arrivals")
    p_load.add_argument("--arrival-seed", type=int, default=0, metavar="S",
                        help="seed of the arrival schedule (same seed => "
                             "bit-identical offered load)")
    p_load.add_argument("--burst-size", type=int, default=8, metavar="K",
                        help="arrivals per burst for --arrival bursty")
    p_load.add_argument("--graph-ref", action="store_true",
                        help="register every unique pool graph once via "
                             "POST /v1/graphs, then solve by graph_ref "
                             "(tiny bodies, zero-copy attach on the server)")
    p_load.add_argument("--churn", action="store_true",
                        help="churn benchmark: register one graph, then "
                             "mutate it every epoch (reweighting + "
                             "crash/restart) and solve by delta; reports "
                             "the incremental-vs-full serving mix and "
                             "writes BENCH_churn.json")
    p_load.add_argument("--churn-epochs", type=int, default=20, metavar="N",
                        help="mutation epochs for --churn")
    p_load.add_argument("--churn-edits", type=int, default=4, metavar="K",
                        help="set_weight edits per reweighting epoch")
    p_load.add_argument("--churn-crash-fraction", type=float, default=0.25,
                        metavar="P",
                        help="fraction of epochs that crash/restart a node "
                             "(topology edits — always full re-solves)")
    p_load.add_argument("--churn-algorithm", default="mis-luby",
                        help="algorithm for --churn solves (weight-"
                             "oblivious MIS algorithms can be served "
                             "incrementally)")
    p_load.add_argument("--saturation", action="store_true",
                        help="saturation sweep: boot fleets for "
                             "--workers-list, walk --rates per fleet, find "
                             "the throughput/latency knee, write "
                             "BENCH_fleet.json (ignores --host/--port)")
    p_load.add_argument("--workers-list", default="1,2,4", metavar="N,N,...",
                        help="worker counts for --saturation")
    p_load.add_argument("--rates", default="25,50,100,200,400",
                        metavar="R,R,...",
                        help="offered-load ladder for --saturation")
    p_load.set_defaults(func=_cmd_loadgen)

    p_info = sub.add_parser("info", help="describe an instance")
    p_info.add_argument("--graph", default="gnp:200,0.05")
    p_info.add_argument("--weights", default="unit")
    p_info.add_argument("--seed", type=int, default=0)
    p_info.add_argument("--arboricity-limit", type=int, default=2000,
                        help="skip the exact arboricity above this size")
    p_info.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro-maxis`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
