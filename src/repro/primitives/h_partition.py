"""Distributed H-partition (Barenboim–Elkin) — peeling by arboricity.

Algorithm 6 (§6) peels nodes of degree at most ``4α`` and relies on
Proposition 5: an arboricity-``α`` graph always has at least half its
nodes below that threshold.  Iterating the same peeling is the classic
*H-partition*: ``O(log n)`` levels, each node assigned the first round in
which its remaining degree dropped to ``≤ (2+ε)·α``-style thresholds.
The partition yields an acyclicity-free orientation with out-degree at
most the threshold (orient every edge toward the *later* level, breaking
ties toward the higher id), which is the standard distributed certificate
of bounded arboricity.

This is the distributed counterpart of the centralized
:func:`repro.graphs.forests.degeneracy` peeling, and the primitive a
fully-distributed Algorithm 6 would use to find its ``V_i^{4α}`` sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph
from repro.results import AlgorithmResult  # noqa: F401  (doc cross-ref)
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["HPartitionProtocol", "HPartition", "h_partition"]

_PEELED = 0


class HPartitionProtocol(NodeAlgorithm):
    """Iterated low-degree peeling with threshold ``t``.

    Each round, an active node whose count of *active* neighbours is at
    most ``t`` takes the current level, announces it, and halts.  Halt
    output: the node's level (0-indexed).
    """

    def __init__(self, threshold: int) -> None:
        self._threshold = threshold
        self._active_neighbors: Optional[set] = None

    def on_start(self, ctx: NodeContext) -> None:
        self._active_neighbors = set(ctx.neighbors)
        if len(self._active_neighbors) <= self._threshold:
            ctx.broadcast((_PEELED,))
            ctx.halt(0)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for sender, msg in inbox.items():
            if msg[0] == _PEELED:
                self._active_neighbors.discard(sender)
        if len(self._active_neighbors) <= self._threshold:
            ctx.broadcast((_PEELED,))
            ctx.halt(ctx.round_index)


@dataclass(frozen=True)
class HPartition:
    """Levels plus the induced bounded-out-degree orientation."""

    levels: Dict[int, int]
    threshold: int
    metrics: RunMetrics

    @property
    def num_levels(self) -> int:
        return max(self.levels.values(), default=-1) + 1

    def orientation(self, graph: WeightedGraph) -> Dict[int, Tuple[int, ...]]:
        """Orient each edge from the earlier-peeled endpoint to the later
        (ties toward the larger id).  Out-degree ``<= threshold``."""
        out: Dict[int, list] = {v: [] for v in graph.nodes}
        for u, v in graph.edges():
            ku = (self.levels[u], u)
            kv = (self.levels[v], v)
            if ku < kv:
                out[u].append(v)
            else:
                out[v].append(u)
        return {v: tuple(sorted(nbrs)) for v, nbrs in out.items()}


def h_partition(
    graph: WeightedGraph,
    *,
    alpha: Optional[int] = None,
    factor: int = 4,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> HPartition:
    """Compute the H-partition with threshold ``factor * alpha``.

    Args:
        graph: input graph.
        alpha: arboricity (or an upper bound); computed exactly when
            omitted (small graphs only — the paper assumes it known).
        factor: the peeling threshold multiplier (Algorithm 6 uses 4;
            any ``factor >= 2`` guarantees geometric decay of the active
            set by Proposition 5's counting argument, hence ``O(log n)``
            levels and rounds).

    Returns:
        An :class:`HPartition`; ``metrics.rounds`` is the level count.
    """
    if graph.n == 0:
        return HPartition({}, 0, RunMetrics())
    if alpha is None:
        from repro.graphs.forests import arboricity as exact_arboricity

        alpha = exact_arboricity(graph)
    alpha = max(1, int(alpha))
    if factor < 2:
        raise GraphError(f"factor must be >= 2 for termination, got {factor}")
    threshold = factor * alpha

    result = run(
        Network.of(graph, n_bound),
        lambda: HPartitionProtocol(threshold),
        policy=policy,
        seed=0,
        max_rounds=4 * math.ceil(math.log2(max(2, graph.n))) + 16,
    )
    return HPartition(
        levels=dict(result.outputs),
        threshold=threshold,
        metrics=result.metrics,
    )
