"""Global CONGEST primitives (BFS tree, convergecast, flooding) used by
the §8 coloring-to-MaxIS discussion (experiment E11)."""

from repro.primitives.bfs import AGGREGATIONS, BFSResult, bfs_tree, flood_value
from repro.primitives.h_partition import HPartition, HPartitionProtocol, h_partition

__all__ = [
    "bfs_tree", "BFSResult", "flood_value", "AGGREGATIONS",
    "h_partition", "HPartition", "HPartitionProtocol",
]
