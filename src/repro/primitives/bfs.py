"""Global CONGEST primitives: BFS tree, convergecast, flooding.

§8 of the paper observes that turning a ``(Δ+1)``-colouring into a MaxIS
approximation requires finding the maximum-weight colour class, which
costs ``Ω(D)`` rounds (``D`` = diameter).  To *measure* that obstruction
(experiment E11) we need the classic global toolkit:

* :func:`bfs_tree` — build a BFS tree from a root and simultaneously
  convergecast an aggregate to it (rounds ``≈ 2·depth + O(1)``);
* :func:`flood_value` — broadcast a value from a root (rounds = eccentricity).

Both are textbook CONGEST algorithms with ``O(log n)``-bit messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.properties import is_connected
from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["BFSResult", "bfs_tree", "flood_value", "AGGREGATIONS"]

_LVL = 0
_AGG = 1
_VAL = 2

AGGREGATIONS: Dict[str, Tuple[Callable[[float, float], float], float]] = {
    "sum": (lambda a, b: a + b, 0.0),
    "max": (lambda a, b: max(a, b), float("-inf")),
    "min": (lambda a, b: min(a, b), float("inf")),
}


class _BFSConvergecast(NodeAlgorithm):
    """Build the BFS tree and converge-cast an aggregate to the root.

    Protocol: the root announces level 0; a node adopts ``min level + 1``
    from the first announcements it hears (parent = smallest id among
    minimum-level announcers) and re-announces, flagging the parent copy.
    Two rounds after announcing, a node knows its exact child set; once
    all children have reported their partial aggregates, it reports to its
    parent and halts with ``(parent, level)``.  The root halts with
    ``("root", level=0, aggregate)``.
    """

    def __init__(self, root: int, values: Mapping[int, float], op: str) -> None:
        if op not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {op!r}; known: {sorted(AGGREGATIONS)}")
        self._root = root
        self._values = values
        self._combine, self._identity = AGGREGATIONS[op]
        self._level: Optional[int] = None
        self._parent: Optional[int] = None
        self._announced_at: Optional[int] = None
        self._children: Optional[set] = None
        self._partial: float = self._identity
        self._pending: Optional[set] = None
        self._reported = False

    def on_start(self, ctx: NodeContext) -> None:
        self._partial = self._combine(self._identity, self._values[ctx.node_id])
        if ctx.node_id == self._root:
            self._level = 0
            self._announced_at = 0
            for u in ctx.neighbors:
                ctx.send(u, (_LVL, 0, False))
            if ctx.degree == 0:
                ctx.halt(("root", 0, self._partial))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        announcements = [(msg[1], sender) for sender, msg in inbox.items()
                         if msg[0] == _LVL]

        if self._level is None and announcements:
            lvl, parent = min(announcements)
            self._level = lvl + 1
            self._parent = parent
            self._announced_at = ctx.round_index
            for u in ctx.neighbors:
                ctx.send(u, (_LVL, self._level, u == parent))

        # Every neighbour announces by announced_at + 1, so child flags
        # (the parent-directed copies) all land at exactly announced_at + 2.
        if (self._children is None and self._announced_at is not None
                and ctx.round_index == self._announced_at + 2):
            self._children = {sender for sender, msg in inbox.items()
                              if msg[0] == _LVL and msg[2]}
            self._pending = set(self._children)

        for sender, msg in inbox.items():
            if msg[0] == _AGG:
                # Aggregates arrive only after the child set is known: a
                # child reports at its announced_at + 2 at the earliest,
                # one full round after ours.
                self._partial = self._combine(self._partial, msg[1])
                self._pending.discard(sender)

        if (self._pending is not None and not self._pending
                and not self._reported):
            self._reported = True
            if ctx.node_id == self._root:
                ctx.halt(("root", 0, self._partial))
            else:
                ctx.send(self._parent, (_AGG, self._partial))
                ctx.halt((self._parent, self._level))


@dataclass(frozen=True)
class BFSResult:
    """BFS tree plus the converged aggregate."""

    root: int
    parent: Dict[int, int]       # non-root nodes -> parent id
    level: Dict[int, int]
    aggregate: float
    metrics: RunMetrics

    @property
    def depth(self) -> int:
        return max(self.level.values(), default=0)


def bfs_tree(
    graph: WeightedGraph,
    root: int,
    *,
    values: Optional[Mapping[int, float]] = None,
    op: str = "sum",
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> BFSResult:
    """Build a BFS tree from ``root`` and aggregate ``values`` to it.

    Args:
        graph: a *connected* graph (raises on disconnected input — the
            flood would never reach the far component).
        root: root node id.
        values: per-node contributions (default: node weights).
        op: ``"sum"`` | ``"max"`` | ``"min"``.

    Returns:
        :class:`BFSResult`; ``metrics.rounds ≈ 2·depth + O(1)``, the Θ(D)
        cost the paper's §8 discussion is about.
    """
    if not graph.has_node(root):
        raise GraphError(f"root {root} not in graph")
    if not is_connected(graph):
        raise GraphError("bfs_tree requires a connected graph")
    vals = dict(values) if values is not None else graph.weights

    result = run(
        Network.of(graph, n_bound),
        lambda: _BFSConvergecast(root, vals, op),
        policy=policy,
        seed=0,
    )
    parent: Dict[int, int] = {}
    level: Dict[int, int] = {root: 0}
    aggregate = 0.0
    for v, out in result.outputs.items():
        if out[0] == "root":
            aggregate = out[2]
        else:
            parent[v] = out[0]
            level[v] = out[1]
    return BFSResult(root=root, parent=parent, level=level,
                     aggregate=aggregate, metrics=result.metrics)


class _Flood(NodeAlgorithm):
    """Forward the root's value once, then halt with it."""

    def __init__(self, root: int, value: Any) -> None:
        self._root = root
        self._value = value

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.node_id == self._root:
            ctx.broadcast((_VAL, self._value))
            ctx.halt(self._value)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for msg in inbox.values():
            if msg[0] == _VAL:
                ctx.broadcast((_VAL, msg[1]))
                ctx.halt(msg[1])
                return


def flood_value(
    graph: WeightedGraph,
    root: int,
    value: Any,
    *,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> Tuple[Dict[int, Any], RunMetrics]:
    """Broadcast ``value`` from ``root``; rounds = eccentricity of root."""
    if not graph.has_node(root):
        raise GraphError(f"root {root} not in graph")
    if not is_connected(graph):
        raise GraphError("flood_value requires a connected graph")
    result = run(Network.of(graph, n_bound), lambda: _Flood(root, value),
                 policy=policy, seed=0)
    return result.outputs, result.metrics
