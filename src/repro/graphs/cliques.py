"""The cycle-of-cliques construction from the lower bound (§7, Figure 1).

Given a cycle ``C`` on ``n0`` nodes, the graph ``C1`` replaces every cycle
node ``u_i`` by a clique ``D(u_i)`` on ``n1`` nodes, and connects every pair
of consecutive cliques by a complete bipartite graph.  Formally (§7): nodes
are ``v_{i,j}`` for ``i in [n0], j in [n1]`` and ``v_{i,j} ~ v_{i',j'}`` iff
``|i - i'| <= 1`` modulo ``n0`` (and the two nodes differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["CycleOfCliques", "cycle_of_cliques"]


@dataclass(frozen=True)
class CycleOfCliques:
    """The graph ``C1`` plus the book-keeping needed by the reduction.

    Attributes:
        graph: the cycle-of-cliques graph; node ``i * n1 + j`` is ``v_{i,j}``.
        n0: number of cliques (= length of the underlying cycle ``C``).
        n1: size of each clique.
    """

    graph: WeightedGraph
    n0: int
    n1: int

    def clique_index(self, node: int) -> int:
        """Which clique ``i`` a ``C1`` node belongs to."""
        return node // self.n1

    def members(self, i: int) -> Tuple[int, ...]:
        """All nodes of clique ``i``."""
        if not 0 <= i < self.n0:
            raise GraphError(f"clique index {i} out of range [0, {self.n0})")
        return tuple(range(i * self.n1, (i + 1) * self.n1))

    def project_independent_set(self, independent_set) -> frozenset:
        """Map an IS of ``C1`` to an IS of ``C`` (§7: ``u_i in I`` iff
        ``D(u_i)`` contains an ``I1`` node)."""
        return frozenset({self.clique_index(v) for v in independent_set})


def cycle_of_cliques(n0: int, n1: int) -> CycleOfCliques:
    """Build ``C1`` from the ``n0``-cycle with cliques of size ``n1``.

    The resulting graph has ``n0 * n1`` nodes, each of degree ``3*n1 - 1``
    (its own clique plus the two adjacent cliques), except when ``n0 <= 2``
    which is rejected because the cycle degenerates.
    """
    if n0 < 3:
        raise GraphError(f"cycle of cliques needs n0 >= 3, got {n0}")
    if n1 < 1:
        raise GraphError(f"clique size must be >= 1, got {n1}")

    n = n0 * n1
    adj: Dict[int, List[int]] = {v: [] for v in range(n)}

    def block(i: int) -> range:
        return range(i * n1, (i + 1) * n1)

    for i in range(n0):
        # Intra-clique edges.
        mem = list(block(i))
        for a_idx in range(n1):
            a = mem[a_idx]
            for b_idx in range(a_idx + 1, n1):
                b = mem[b_idx]
                adj[a].append(b)
                adj[b].append(a)
        # Bi-clique to the next clique around the cycle.
        nxt = (i + 1) % n0
        for a in block(i):
            for b in block(nxt):
                adj[a].append(b)
                adj[b].append(a)

    graph = WeightedGraph(adj, _skip_validation=True)
    return CycleOfCliques(graph=graph, n0=n0, n1=n1)
