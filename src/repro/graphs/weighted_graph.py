"""Core graph data structure: an immutable node-weighted undirected graph.

The whole library operates on :class:`WeightedGraph`.  It is deliberately
self-contained (no networkx in the hot path) so that simulations are
deterministic and fast; converters to and from ``networkx`` are provided for
interoperability and for the flow-based arboricity computation.

Node identifiers are arbitrary non-negative integers.  Induced subgraphs keep
the original identifiers, which is essential for the paper's phase-based
algorithms (the same physical node participates in many sub-simulations).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import GraphError

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected graph with non-negative node weights.

    Instances are immutable: all "mutating" operations (reweighting, taking
    subgraphs) return new graphs.  Adjacency lists are stored as sorted
    tuples, so iteration order is deterministic everywhere.
    """

    __slots__ = ("_adj", "_weights", "_m", "_nbr_sets")

    def __init__(
        self,
        adjacency: Mapping[int, Iterable[int]],
        weights: Optional[Mapping[int, float]] = None,
        *,
        _skip_validation: bool = False,
    ):
        adj: Dict[int, Tuple[int, ...]] = {
            int(v): tuple(sorted(set(int(u) for u in nbrs)))
            for v, nbrs in adjacency.items()
        }
        if not _skip_validation:
            _validate_adjacency(adj)
        self._adj = adj
        if weights is None:
            self._weights = {v: 1.0 for v in adj}
        else:
            w = {int(v): float(weights[v]) for v in adj}
            bad = [v for v, x in w.items() if x < 0 or x != x]  # negative or NaN
            if bad:
                raise GraphError(f"negative or NaN weights on nodes {bad[:5]}")
            self._weights = w
        self._m = sum(len(nbrs) for nbrs in adj.values()) // 2
        self._nbr_sets: Optional[Dict[int, frozenset]] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[int],
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Mapping[int, float]] = None,
    ) -> "WeightedGraph":
        """Build a graph from an explicit node set and edge list."""
        adj: Dict[int, list] = {int(v): [] for v in nodes}
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise GraphError(f"self loop on node {u}")
            if u not in adj or v not in adj:
                raise GraphError(f"edge ({u}, {v}) references unknown node")
            adj[u].append(v)
            adj[v].append(u)
        return cls(adj, weights, _skip_validation=True)

    @classmethod
    def empty(cls, n: int) -> "WeightedGraph":
        """An edgeless graph on nodes ``0 .. n-1`` with unit weights."""
        return cls({v: () for v in range(n)}, _skip_validation=True)

    @classmethod
    def from_networkx(cls, g, weight_attr: str = "weight") -> "WeightedGraph":
        """Convert from a ``networkx`` graph; missing weights default to 1."""
        adj = {int(v): [int(u) for u in g.neighbors(v)] for v in g.nodes}
        weights = {int(v): float(g.nodes[v].get(weight_attr, 1.0)) for v in g.nodes}
        return cls(adj, weights)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def nodes(self) -> Tuple[int, ...]:
        """All node ids, sorted ascending."""
        return tuple(sorted(self._adj))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``, sorted."""
        for u in sorted(self._adj):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``v``."""
        return self._adj[v]

    def inclusive_neighbors(self, v: int) -> Tuple[int, ...]:
        """``N+(v) = N(v) ∪ {v}`` as used throughout the paper."""
        return tuple(sorted(self._adj[v] + (v,)))

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_node(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        if self._nbr_sets is None:
            self._nbr_sets = {x: frozenset(nbrs) for x, nbrs in self._adj.items()}
        return v in self._nbr_sets.get(u, frozenset())

    def weight(self, v: int) -> float:
        return self._weights[v]

    @property
    def weights(self) -> Dict[int, float]:
        """A copy of the node-weight mapping."""
        return dict(self._weights)

    def total_weight(self, nodes: Optional[Iterable[int]] = None) -> float:
        """``w(V')`` — sum of weights over ``nodes`` (default: all nodes)."""
        if nodes is None:
            return sum(self._weights.values())
        return sum(self._weights[v] for v in nodes)

    @property
    def max_degree(self) -> int:
        """``Δ`` — the maximum degree; 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def max_weight(self) -> float:
        """``W`` — the maximum node weight; 0 for the empty graph."""
        if not self._weights:
            return 0.0
        return max(self._weights.values())

    def weighted_degree(self, v: int) -> float:
        """``w(N(v))`` — the paper's *weighted degree* (§4.2)."""
        return sum(self._weights[u] for u in self._adj[v])

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Iterable[int]) -> "WeightedGraph":
        """Subgraph induced by ``nodes``; original ids and weights are kept."""
        keep = set(nodes)
        unknown = keep - set(self._adj)
        if unknown:
            raise GraphError(f"unknown nodes in induced_subgraph: {sorted(unknown)[:5]}")
        adj = {
            v: tuple(u for u in self._adj[v] if u in keep)
            for v in keep
        }
        weights = {v: self._weights[v] for v in keep}
        return WeightedGraph(adj, weights, _skip_validation=True)

    def with_weights(self, weights: Mapping[int, float]) -> "WeightedGraph":
        """Same topology with a different weight function (paper's ``G_w'``)."""
        return WeightedGraph(self._adj, weights, _skip_validation=True)

    def with_unit_weights(self) -> "WeightedGraph":
        """Same topology, all weights set to 1 (the unweighted view)."""
        return WeightedGraph(self._adj, {v: 1.0 for v in self._adj}, _skip_validation=True)

    def fingerprint(self) -> str:
        """Content hash of the graph (topology + weights), hex sha256.

        Two graphs compare equal iff their fingerprints match, so the
        batch engine can key its on-disk result cache by this string.
        Weights are hashed via ``repr(float)`` (shortest round-trippable
        form), so the hash is stable across processes and sessions.
        """
        import hashlib

        h = hashlib.sha256()
        for v in self.nodes:
            h.update(f"n{v}:{self._weights[v]!r};".encode())
        for u, v in self.edges():
            h.update(f"e{u},{v};".encode())
        return h.hexdigest()

    def relabeled(self) -> Tuple["WeightedGraph", Dict[int, int]]:
        """Relabel nodes to ``0..n-1``; returns ``(graph, old_id -> new_id)``."""
        mapping = {old: new for new, old in enumerate(self.nodes)}
        adj = {
            mapping[v]: tuple(sorted(mapping[u] for u in self._adj[v]))
            for v in self._adj
        }
        weights = {mapping[v]: self._weights[v] for v in self._adj}
        return WeightedGraph(adj, weights, _skip_validation=True), mapping

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with a ``weight`` node attribute."""
        import networkx as nx

        g = nx.Graph()
        for v in self.nodes:
            g.add_node(v, weight=self._weights[v])
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._adj == other._adj and self._weights == other._weights

    def __hash__(self):
        raise TypeError("WeightedGraph is not hashable; compare explicitly")

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m}, max_degree={self.max_degree})"


def _validate_adjacency(adj: Mapping[int, Sequence[int]]) -> None:
    for v, nbrs in adj.items():
        if v < 0:
            raise GraphError(f"negative node id {v}")
        for u in nbrs:
            if u == v:
                raise GraphError(f"self loop on node {v}")
            if u not in adj:
                raise GraphError(f"edge ({v}, {u}) references unknown node {u}")
            if v not in adj[u]:
                raise GraphError(f"asymmetric adjacency between {v} and {u}")
