"""Core graph data structure: an immutable node-weighted undirected graph.

The whole library operates on :class:`WeightedGraph`.  It is deliberately
self-contained (no networkx in the hot path) so that simulations are
deterministic and fast; converters to and from ``networkx`` are provided for
interoperability and for the flow-based arboricity computation.

Node identifiers are arbitrary non-negative integers.  Induced subgraphs keep
the original identifiers, which is essential for the paper's phase-based
algorithms (the same physical node participates in many sub-simulations).

Instances are immutable, which buys two performance layers (see
``docs/performance.md``):

* scalar graph statistics (``max_degree``, ``total_weight()``, ``nodes``,
  ``fingerprint()``) are memoized on first use;
* a :class:`~repro.graphs.csr.CSRIndex` — contiguous numpy adjacency over
  node *slots* plus id↔slot maps — is built lazily and backs the
  whole-graph kernels (``induced_subgraph`` on large vertex sets).  The
  dict API and every iteration order stay byte-identical either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import GraphError

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected graph with non-negative node weights.

    Instances are immutable: all "mutating" operations (reweighting, taking
    subgraphs) return new graphs.  Adjacency lists are stored as sorted
    tuples, so iteration order is deterministic everywhere.
    """

    __slots__ = ("_adj", "_weights", "_m", "_nbr_sets", "_nodes",
                 "_max_degree", "_total_weight", "_fingerprint", "_csr")

    def __init__(
        self,
        adjacency: Mapping[int, Iterable[int]],
        weights: Optional[Mapping[int, float]] = None,
        *,
        _skip_validation: bool = False,
    ):
        adj: Dict[int, Tuple[int, ...]] = {
            int(v): tuple(sorted(set(int(u) for u in nbrs)))
            for v, nbrs in adjacency.items()
        }
        if not _skip_validation:
            _validate_adjacency(adj)
        self._adj = adj
        if weights is None:
            self._weights = {v: 1.0 for v in adj}
        else:
            self._weights = _validated_weights(weights, adj)
        self._m = sum(len(nbrs) for nbrs in adj.values()) // 2
        self._init_caches()

    def _init_caches(self) -> None:
        self._nbr_sets: Optional[Dict[int, frozenset]] = None
        self._nodes: Optional[Tuple[int, ...]] = None
        self._max_degree: Optional[int] = None
        self._total_weight: Optional[float] = None
        self._fingerprint: Optional[str] = None
        self._csr = None

    @classmethod
    def _from_canonical(
        cls,
        adj: Dict[int, Tuple[int, ...]],
        weights: Dict[int, float],
        m: Optional[int] = None,
    ) -> "WeightedGraph":
        """Fast constructor for adjacency that is already canonical.

        ``adj`` must map every node to a *sorted tuple* of distinct
        neighbour ids, symmetric and self-loop free, and ``weights`` must
        cover exactly the same keys with plain floats — the invariants
        the public constructor establishes.  Derived-graph kernels
        (``induced_subgraph``, reweighting) call this to skip the
        re-sort/re-validate pass; all memo caches start fresh.
        """
        g = object.__new__(cls)
        g._adj = adj
        g._weights = weights
        g._m = sum(map(len, adj.values())) // 2 if m is None else m
        g._init_caches()
        return g

    @classmethod
    def _from_csr_arrays(
        cls,
        ids,
        indptr,
        indices,
        weights,
        *,
        fingerprint: Optional[str] = None,
    ) -> "WeightedGraph":
        """Fast constructor from canonical CSR arrays (the binary codec /
        graph-store attach path).

        ``ids`` are the node ids in ascending order, ``indptr``/``indices``
        the slot-based CSR adjacency with rows sorted ascending, and
        ``weights`` the per-slot float64 weights — the exact arrays
        :class:`~repro.graphs.csr.CSRIndex` builds.  The dict adjacency is
        reconstructed in bulk (one vectorized slot→id gather plus per-row
        tuple slicing), the CSR index is pre-seeded with the given arrays
        (no rebuild on first kernel use), and a known ``fingerprint`` is
        installed directly so attach never re-hashes the graph.
        """
        from repro.graphs.csr import CSRIndex

        import numpy as np

        ids = np.asarray(ids, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights_arr = np.asarray(weights, dtype=np.float64)
        csr = CSRIndex.from_arrays(ids, indptr, indices, weights_arr)
        id_list = csr._id_list
        nbr_ids = ids[indices].tolist()  # python ints, row-major order
        bounds = indptr.tolist()
        adj = {
            v: tuple(nbr_ids[bounds[s]:bounds[s + 1]])
            for s, v in enumerate(id_list)
        }
        w_list = weights_arr.tolist()
        w = {v: w_list[s] for s, v in enumerate(id_list)}
        g = cls._from_canonical(adj, w, m=len(nbr_ids) // 2)
        g._csr = csr
        if fingerprint is not None:
            g._fingerprint = fingerprint
        return g

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[int],
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Mapping[int, float]] = None,
    ) -> "WeightedGraph":
        """Build a graph from an explicit node set and edge list."""
        adj: Dict[int, list] = {int(v): [] for v in nodes}
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise GraphError(f"self loop on node {u}")
            if u not in adj or v not in adj:
                raise GraphError(f"edge ({u}, {v}) references unknown node")
            adj[u].append(v)
            adj[v].append(u)
        return cls(adj, weights, _skip_validation=True)

    @classmethod
    def empty(cls, n: int) -> "WeightedGraph":
        """An edgeless graph on nodes ``0 .. n-1`` with unit weights."""
        return cls({v: () for v in range(n)}, _skip_validation=True)

    @classmethod
    def from_networkx(cls, g, weight_attr: str = "weight") -> "WeightedGraph":
        """Convert from a ``networkx`` graph; missing weights default to 1."""
        adj = {int(v): [int(u) for u in g.neighbors(v)] for v in g.nodes}
        weights = {int(v): float(g.nodes[v].get(weight_attr, 1.0)) for v in g.nodes}
        return cls(adj, weights)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def nodes(self) -> Tuple[int, ...]:
        """All node ids, sorted ascending (memoized)."""
        nodes = self._nodes
        if nodes is None:
            nodes = self._nodes = tuple(sorted(self._adj))
        return nodes

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``, sorted."""
        adj = self._adj
        for u in self.nodes:
            for v in adj[u]:
                if u < v:
                    yield (u, v)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``v``."""
        return self._adj[v]

    def inclusive_neighbors(self, v: int) -> Tuple[int, ...]:
        """``N+(v) = N(v) ∪ {v}`` as used throughout the paper."""
        return tuple(sorted(self._adj[v] + (v,)))

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_node(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        if self._nbr_sets is None:
            self._nbr_sets = {x: frozenset(nbrs) for x, nbrs in self._adj.items()}
        return v in self._nbr_sets.get(u, frozenset())

    def neighbor_set(self, v: int) -> frozenset:
        """``N(v)`` as a frozenset (lazily built once, shared thereafter).

        The simulator hands this to every :class:`NodeContext`, so the
        per-run membership structures are built once per graph instead of
        once per ``run()``.
        """
        if self._nbr_sets is None:
            self._nbr_sets = {x: frozenset(nbrs) for x, nbrs in self._adj.items()}
        return self._nbr_sets[v]

    def weight(self, v: int) -> float:
        return self._weights[v]

    @property
    def weights(self) -> Dict[int, float]:
        """A copy of the node-weight mapping."""
        return dict(self._weights)

    def total_weight(self, nodes: Optional[Iterable[int]] = None) -> float:
        """``w(V')`` — sum of weights over ``nodes`` (default: all nodes)."""
        if nodes is None:
            total = self._total_weight
            if total is None:
                total = self._total_weight = sum(self._weights.values())
            return total
        w = self._weights
        return sum(w[v] for v in nodes)

    @property
    def max_degree(self) -> int:
        """``Δ`` — the maximum degree; 0 for the empty graph (memoized)."""
        delta = self._max_degree
        if delta is None:
            if not self._adj:
                delta = 0
            else:
                delta = max(map(len, self._adj.values()))
            self._max_degree = delta
        return delta

    def max_weight(self) -> float:
        """``W`` — the maximum node weight; 0 for the empty graph."""
        if not self._weights:
            return 0.0
        return max(self._weights.values())

    def weighted_degree(self, v: int) -> float:
        """``w(N(v))`` — the paper's *weighted degree* (§4.2)."""
        w = self._weights
        return sum(w[u] for u in self._adj[v])

    # ------------------------------------------------------------------ #
    # CSR index
    # ------------------------------------------------------------------ #

    @property
    def csr(self):
        """The lazily built :class:`~repro.graphs.csr.CSRIndex`.

        Derived data: building it never changes the graph, and every
        kernel that uses it reproduces the dict API's answers exactly.
        """
        index = self._csr
        if index is None:
            from repro.graphs.csr import CSRIndex

            index = self._csr = CSRIndex(self._adj, self._weights)
        return index

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Iterable[int]) -> "WeightedGraph":
        """Subgraph induced by ``nodes``; original ids and weights are kept."""
        keep = set(nodes)
        unknown = keep - set(self._adj)
        if unknown:
            raise GraphError(f"unknown nodes in induced_subgraph: {sorted(unknown)[:5]}")
        weights = self._weights
        n = len(self._adj)
        if len(keep) * 4 < n or n < 64:
            # Small subgraph (or tiny graph): the per-row dict sweep beats
            # building/consulting the whole-graph CSR mask.
            adj = {
                v: tuple(u for u in self._adj[v] if u in keep)
                for v in sorted(keep)
            }
            sub_w = {v: weights[v] for v in adj}
            return WeightedGraph._from_canonical(adj, sub_w)
        # Large subgraph: one vectorized mask pass over the CSR arrays.
        csr = self.csr
        import numpy as np

        kept_slots = np.fromiter((csr.slot_of[v] for v in keep),
                                 dtype=np.int64, count=len(keep))
        ordered, counts, kept_neighbors = csr.induced_rows(kept_slots)
        ids = csr._id_list
        nbr_ids = csr.ids[kept_neighbors].tolist()  # python ints, row order
        adj = {}
        sub_w = {}
        offset = 0
        for s, c in zip(ordered.tolist(), counts.tolist()):
            v = ids[s]
            adj[v] = tuple(nbr_ids[offset:offset + c])
            sub_w[v] = weights[v]
            offset += c
        return WeightedGraph._from_canonical(adj, sub_w, m=len(nbr_ids) // 2)

    def with_weights(self, weights: Mapping[int, float]) -> "WeightedGraph":
        """Same topology with a different weight function (paper's ``G_w'``)."""
        return WeightedGraph._from_canonical(
            self._adj, _validated_weights(weights, self._adj), m=self._m
        )

    def with_unit_weights(self) -> "WeightedGraph":
        """Same topology, all weights set to 1 (the unweighted view)."""
        return WeightedGraph._from_canonical(
            self._adj, {v: 1.0 for v in self._adj}, m=self._m
        )

    def fingerprint(self) -> str:
        """Content hash of the graph (topology + weights), hex sha256.

        Two graphs compare equal iff their fingerprints match, so the
        batch engine can key its on-disk result cache by this string.
        Weights are hashed via ``repr(float)`` (shortest round-trippable
        form), so the hash is stable across processes and sessions.
        Memoized: graphs are immutable and sweeps fingerprint the same
        instance once per job.
        """
        cached = self._fingerprint
        if cached is not None:
            return cached
        import hashlib

        w = self._weights
        adj = self._adj
        parts = [f"n{v}:{w[v]!r};" for v in self.nodes]
        parts.extend(
            f"e{u},{v};" for u in self.nodes for v in adj[u] if u < v
        )
        digest = hashlib.sha256("".join(parts).encode()).hexdigest()
        self._fingerprint = digest
        return digest

    def relabeled(self) -> Tuple["WeightedGraph", Dict[int, int]]:
        """Relabel nodes to ``0..n-1``; returns ``(graph, old_id -> new_id)``."""
        mapping = {old: new for new, old in enumerate(self.nodes)}
        adj = {
            mapping[v]: tuple(sorted(mapping[u] for u in self._adj[v]))
            for v in self._adj
        }
        weights = {mapping[v]: self._weights[v] for v in self._adj}
        return WeightedGraph(adj, weights, _skip_validation=True), mapping

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with a ``weight`` node attribute."""
        import networkx as nx

        g = nx.Graph()
        for v in self.nodes:
            g.add_node(v, weight=self._weights[v])
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._adj == other._adj and self._weights == other._weights

    def __hash__(self):
        raise TypeError("WeightedGraph is not hashable; compare explicitly")

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m}, max_degree={self.max_degree})"


def _validated_weights(
    weights: Mapping[int, float], adj: Mapping[int, Tuple[int, ...]]
) -> Dict[int, float]:
    w = {int(v): float(weights[v]) for v in adj}
    bad = [v for v, x in w.items() if x < 0 or x != x]  # negative or NaN
    if bad:
        raise GraphError(f"negative or NaN weights on nodes {bad[:5]}")
    return w


def _validate_adjacency(adj: Mapping[int, Sequence[int]]) -> None:
    for v, nbrs in adj.items():
        if v < 0:
            raise GraphError(f"negative node id {v}")
        for u in nbrs:
            if u == v:
                raise GraphError(f"self loop on node {v}")
            if u not in adj:
                raise GraphError(f"edge ({v}, {u}) references unknown node {u}")
            if v not in adj[u]:
                raise GraphError(f"asymmetric adjacency between {v} and {u}")
