"""Forest decompositions and exact arboricity (Nash–Williams, Definition 1).

The arboricity ``α(G)`` is the minimum number of forests needed to cover all
edges; by Nash–Williams it equals ``max_H ceil(m_H / (n_H - 1))`` over
subgraphs ``H`` (the paper's Definition 1).  Theorem 3's approximation
factor is stated in terms of exact ``α``, so the experiment suite needs a
certified value, not an estimate.

We compute it constructively: :func:`partition_into_forests` decides, via the
classic matroid-partition augmenting-path algorithm specialised to graphic
matroids, whether the edges fit into ``k`` forests — and returns the witness
decomposition when they do.  :func:`arboricity` searches the smallest such
``k`` between the trivial density lower bound and the degeneracy upper bound.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "degeneracy",
    "partition_into_forests",
    "arboricity",
    "nash_williams_lower_bound",
]

Edge = Tuple[int, int]


def degeneracy(g: WeightedGraph) -> int:
    """The degeneracy of ``g`` via min-degree peeling (bucket queue).

    Degeneracy sandwiches arboricity: ``α <= degeneracy <= 2α - 1``.
    """
    if g.n == 0:
        return 0
    degrees = {v: g.degree(v) for v in g.nodes}
    max_deg = max(degrees.values(), default=0)
    buckets: List[Set[int]] = [set() for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].add(v)
    removed: Set[int] = set()
    best = 0
    cur = 0
    for _ in range(g.n):
        while cur <= max_deg and not buckets[cur]:
            cur += 1
        if cur > max_deg:
            break
        v = buckets[cur].pop()
        best = max(best, cur)
        removed.add(v)
        for u in g.neighbors(v):
            if u in removed:
                continue
            d = degrees[u]
            buckets[d].discard(u)
            degrees[u] = d - 1
            buckets[d - 1].add(u)
        cur = max(cur - 1, 0)
    return best


class _Forest:
    """One forest of a partial decomposition, supporting path queries."""

    __slots__ = ("adj", "edges")

    def __init__(self) -> None:
        self.adj: Dict[int, Set[int]] = {}
        self.edges: Set[Edge] = set()

    def has_edge(self, e: Edge) -> bool:
        return e in self.edges

    def add(self, e: Edge) -> None:
        u, v = e
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set()).add(u)
        self.edges.add(e)

    def remove(self, e: Edge) -> None:
        u, v = e
        self.adj[u].discard(v)
        self.adj[v].discard(u)
        self.edges.discard(e)

    def path(self, src: int, dst: int) -> Optional[List[Edge]]:
        """The unique forest path ``src -> dst`` as edges, or None."""
        if src not in self.adj or dst not in self.adj:
            return None
        parent: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            x = queue.popleft()
            if x == dst:
                break
            for y in self.adj.get(x, ()):
                if y not in parent:
                    parent[y] = x
                    queue.append(y)
        if dst not in parent:
            return None
        out: List[Edge] = []
        x = dst
        while x != src:
            p = parent[x]
            out.append((min(p, x), max(p, x)))
            x = p
        return out

    def creates_cycle(self, e: Edge) -> bool:
        return self.path(e[0], e[1]) is not None


def partition_into_forests(g: WeightedGraph, k: int) -> Optional[List[Set[Edge]]]:
    """Partition the edges of ``g`` into ``k`` forests, or return ``None``.

    Matroid-partition augmentation: to place an edge, BFS over displacement
    chains ("insert x into forest i after evicting a cycle edge y, then
    re-place y") until an edge inserts freely.  First-visit labelling keeps
    the search linear in the number of edges per insertion.
    """
    if k < 0:
        raise GraphError(f"k must be >= 0, got {k}")
    forests = [_Forest() for _ in range(k)]
    if g.m == 0:
        return [set() for _ in range(k)]
    if k == 0:
        return None

    for e0 in g.edges():
        if not _augment(forests, e0):
            return None
    return [set(f.edges) for f in forests]


def _augment(forests: List[_Forest], e0: Edge) -> bool:
    """Place ``e0`` into the decomposition via a displacement chain."""
    k = len(forests)
    # parent[x] = (y, forest_index) meaning: y evicts x from that forest.
    parent: Dict[Edge, Tuple[Optional[Edge], int]] = {}
    visited: Set[Edge] = {e0}
    queue = deque([e0])
    terminal: Optional[Tuple[Edge, int]] = None

    while queue and terminal is None:
        y = queue.popleft()
        for i in range(k):
            f = forests[i]
            if f.has_edge(y):
                continue
            cycle = f.path(y[0], y[1])
            if cycle is None:
                terminal = (y, i)
                break
            for x in cycle:
                if x not in visited:
                    visited.add(x)
                    parent[x] = (y, i)
                    queue.append(x)

    if terminal is None:
        return False

    # Realize the chain from the free insertion back up to e0.
    x, i = terminal
    forests[i].add(x)
    while x != e0:
        y, j = parent[x]
        forests[j].remove(x)
        forests[j].add(y)
        assert y is not None
        x = y
    return True


def nash_williams_lower_bound(g: WeightedGraph) -> int:
    """``ceil(m / (n - 1))`` — the whole-graph Nash–Williams density."""
    if g.n <= 1 or g.m == 0:
        return 0
    return -(-g.m // (g.n - 1))


def arboricity(g: WeightedGraph, *, return_witness: bool = False):
    """Exact arboricity ``α(G)`` (Definition 1), optionally with the witness.

    Searches ``k`` upward from the Nash–Williams whole-graph bound; the
    degeneracy caps the search, so at most ``~α`` partition attempts run.

    Args:
        g: input graph.
        return_witness: when True, return ``(alpha, forests)`` where
            ``forests`` is a list of ``alpha`` edge sets, each acyclic,
            that together partition ``E(G)``.
    """
    if g.m == 0:
        return (0, []) if return_witness else 0
    lo = max(1, nash_williams_lower_bound(g))
    hi = max(lo, degeneracy(g))
    for k in range(lo, hi + 1):
        witness = partition_into_forests(g, k)
        if witness is not None:
            return (k, witness) if return_witness else k
    raise AssertionError(
        "arboricity search failed: degeneracy should always suffice"
    )  # pragma: no cover
