"""Compact ``kind:args`` instance specs — the generator-zoo vocabulary.

One string names a graph (``gnp:300,0.04``, ``grid:10,20``,
``file:PATH``) and another names a weight scheme (``uniform:1,100``,
``skewed:0.01,1e6``).  The CLI has always spoken this language; the
solver service speaks it too (a solve request may carry a spec instead
of an inline node/edge list), so parsing lives here in the graphs layer
and raises :class:`ValueError` — callers decide whether that becomes a
``SystemExit`` (CLI) or an HTTP 400 (service).

Graph specs: ``gnp:n,p`` | ``regular:n,d`` | ``tree:n`` | ``grid:r,c`` |
``cycle:n`` | ``path:n`` | ``geometric:n,radius`` | ``caterpillar:spine,legs``
| ``file:PATH`` (the text format of :mod:`repro.graphs.io`).

Weight specs: ``unit`` | ``uniform:lo,hi`` | ``integers:W`` |
``skewed:fraction,heavy`` | ``degree`` | ``keep``.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["declared_nodes", "graph_from_spec", "weights_from_spec"]


def declared_nodes(spec: str) -> Optional[int]:
    """Node count a graph spec *declares*, without materializing it.

    Admission control needs this: the service must reject a
    ``gnp:100000000,0.5`` request before the generator allocates
    anything.  Returns ``None`` for specs whose size is not declared in
    the string (``file:PATH``) and for unknown kinds / unparsable
    arguments — those fail properly in :func:`graph_from_spec`.
    """
    kind, _, args = spec.partition(":")
    parts = [a for a in args.split(",") if a] if args else []
    try:
        if kind in ("gnp", "regular", "tree", "cycle", "path", "geometric"):
            return max(0, int(parts[0]))
        if kind == "grid":
            return max(0, int(parts[0])) * max(0, int(parts[1]))
        if kind == "caterpillar":
            # spine vertices plus legs pendant vertices per spine vertex
            return max(0, int(parts[0])) * (1 + max(0, int(parts[1])))
    except (IndexError, ValueError):
        return None
    return None


def graph_from_spec(spec: str, seed: Optional[int]) -> WeightedGraph:
    """Materialize a graph from a ``kind:args`` spec string.

    Raises:
        ValueError: unknown kind, or arguments that do not parse.
    """
    from repro.graphs.generators import (
        caterpillar,
        cycle,
        gnp,
        grid_2d,
        path,
        random_geometric,
        random_regular,
        random_tree,
    )
    from repro.graphs.io import load

    kind, _, args = spec.partition(":")
    parts = [a for a in args.split(",") if a] if args else []
    try:
        if kind == "gnp":
            return gnp(int(parts[0]), float(parts[1]), seed=seed)
        if kind == "regular":
            return random_regular(int(parts[0]), int(parts[1]), seed=seed)
        if kind == "tree":
            return random_tree(int(parts[0]), seed=seed)
        if kind == "grid":
            return grid_2d(int(parts[0]), int(parts[1]))
        if kind == "cycle":
            return cycle(int(parts[0]))
        if kind == "path":
            return path(int(parts[0]))
        if kind == "geometric":
            return random_geometric(int(parts[0]), float(parts[1]), seed=seed)
        if kind == "caterpillar":
            return caterpillar(int(parts[0]), int(parts[1]))
        if kind == "file":
            return load(args)
    except (IndexError, ValueError) as exc:
        raise ValueError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ValueError(f"unknown graph kind {kind!r}")


def weights_from_spec(spec: str, graph: WeightedGraph,
                      seed: Optional[int]) -> WeightedGraph:
    """Apply a weight-scheme spec to ``graph``.

    Raises:
        ValueError: unknown scheme, or arguments that do not parse.
    """
    from repro.graphs.weights import (
        degree_proportional_weights,
        integer_weights,
        skewed_heavy_set,
        uniform_weights,
        unit_weights,
    )

    kind, _, args = spec.partition(":")
    parts = [a for a in args.split(",") if a] if args else []
    try:
        if kind == "unit":
            return unit_weights(graph)
        if kind == "uniform":
            lo, hi = (float(parts[0]), float(parts[1])) if parts else (0.0, 1.0)
            return uniform_weights(graph, lo, hi, seed=seed)
        if kind == "integers":
            return integer_weights(graph, int(parts[0]), seed=seed)
        if kind == "skewed":
            frac = float(parts[0]) if parts else 0.01
            heavy = float(parts[1]) if len(parts) > 1 else 1e6
            return skewed_heavy_set(graph, fraction=frac, heavy=heavy, seed=seed)
        if kind == "degree":
            return degree_proportional_weights(graph)
        if kind == "keep":
            return graph
    except (IndexError, ValueError) as exc:
        raise ValueError(f"bad weight spec {spec!r}: {exc}") from exc
    raise ValueError(f"unknown weight scheme {kind!r}")
