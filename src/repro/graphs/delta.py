"""Graph deltas: canonical edit scripts over :class:`WeightedGraph`.

The delta plane's vocabulary.  A :class:`GraphDelta` is an ordered list
of edit operations —

* ``["add_node", v, w]`` — introduce an isolated node with weight ``w``;
* ``["remove_node", v]`` — drop ``v`` and every incident edge;
* ``["add_edge", u, v]`` — connect two existing nodes;
* ``["remove_edge", u, v]`` — disconnect them;
* ``["set_weight", v, w]`` — reweight an existing node —

applied *sequentially* by :func:`apply_delta`.  The contract that makes
the whole plane work: the child graph is **byte-identical** to building
the edited graph from scratch — same canonical adjacency, same weights,
and therefore the same ``fingerprint()`` — so delta children are
first-class citizens of the content-addressed graph store, and a solve
of a delta child has the same cache/coalescing key as a solve of the
equivalently constructed graph.

Application is copy-on-write: untouched adjacency rows are *shared* with
the parent (tuple references, never copied), and a weight-only delta
additionally shares the parent's CSR arrays (ids/indptr/indices) so a
10⁵-node reweight costs O(edits) + one weights array, not O(m).

Conflicting edits (adding an edge that exists, removing a node that
does not, …) raise :class:`DeltaConflictError` — HTTP 409 on the
service's ``POST /v1/graphs/{ref}/deltas`` endpoint — rather than being
silently ignored, because an idempotent interpretation would make the
child's identity depend on the parent's state in ways callers cannot
audit.

:func:`dirty_region` is the incremental re-solve path's certification
lens: the BFS ball around the touched nodes, the only neighbourhoods
whose structure an edit can have changed.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "DELTA_OPS",
    "DeltaApplication",
    "DeltaConflictError",
    "GraphDelta",
    "apply_delta",
    "apply_delta_info",
    "dirty_region",
]

DELTA_OPS = ("add_node", "remove_node", "add_edge", "remove_edge",
             "set_weight")


class DeltaConflictError(ReproError, ValueError):
    """An edit contradicts the graph it is applied to (HTTP 409)."""


@dataclass(frozen=True)
class GraphDelta:
    """An immutable, canonically serializable edit script.

    ``ops`` is a tuple of ``(kind, *args)`` tuples in application order.
    Two deltas with the same canonical JSON are the same edit script;
    :meth:`fingerprint` hashes exactly that form.
    """

    ops: Tuple[Tuple[Any, ...], ...]

    @classmethod
    def of(cls, ops: Iterable[Sequence[Any]]) -> "GraphDelta":
        """Build a delta from op sequences, validating each op's shape."""
        return cls(ops=tuple(_canonical_op(op) for op in ops))

    @classmethod
    def from_doc(cls, doc: Any) -> "GraphDelta":
        """Parse the wire form: a list of op lists (the ``ops`` field of
        the schema-v2 delta union and of ``POST .../deltas`` bodies)."""
        if isinstance(doc, dict):
            doc = doc.get("ops")
        if not isinstance(doc, (list, tuple)):
            raise DeltaConflictError(
                f"delta ops must be a list, got {type(doc).__name__}")
        return cls.of(doc)

    def to_doc(self) -> List[List[Any]]:
        return [list(op) for op in self.ops]

    def to_json(self) -> str:
        """Canonical serialization (compact separators, order preserved)."""
        return json.dumps(self.to_doc(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """Content hash of the edit script itself (not of any graph)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @property
    def weight_only(self) -> bool:
        """True when every op is ``set_weight`` — topology unchanged."""
        return all(op[0] == "set_weight" for op in self.ops)

    def named_nodes(self) -> FrozenSet[int]:
        """Every node id an op names (edge ops name both endpoints).

        Note ``remove_node`` touches its *neighbours* too; that spill is
        only known at application time — see
        :attr:`DeltaApplication.touched`.
        """
        out = set()
        for op in self.ops:
            kind = op[0]
            if kind in ("add_edge", "remove_edge"):
                out.add(op[1])
                out.add(op[2])
            else:
                out.add(op[1])
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.ops)


def _canonical_op(op: Sequence[Any]) -> Tuple[Any, ...]:
    if not isinstance(op, (list, tuple)) or not op:
        raise DeltaConflictError(f"malformed delta op {op!r}")
    kind = op[0]
    if kind == "add_node":
        if len(op) != 3:
            raise DeltaConflictError(f"add_node takes (v, weight): {op!r}")
        return ("add_node", _node_id(op[1]), _weight(op[2]))
    if kind == "remove_node":
        if len(op) != 2:
            raise DeltaConflictError(f"remove_node takes (v,): {op!r}")
        return ("remove_node", _node_id(op[1]))
    if kind in ("add_edge", "remove_edge"):
        if len(op) != 3:
            raise DeltaConflictError(f"{kind} takes (u, v): {op!r}")
        u, v = _node_id(op[1]), _node_id(op[2])
        if u == v:
            raise DeltaConflictError(f"self loop in {kind}: {op!r}")
        return (kind, min(u, v), max(u, v))
    if kind == "set_weight":
        if len(op) != 3:
            raise DeltaConflictError(f"set_weight takes (v, weight): {op!r}")
        return ("set_weight", _node_id(op[1]), _weight(op[2]))
    raise DeltaConflictError(
        f"unknown delta op kind {kind!r}; known: {list(DELTA_OPS)}")


def _node_id(v: Any) -> int:
    if isinstance(v, bool) or not isinstance(v, int):
        raise DeltaConflictError(f"node id must be an int, got {v!r}")
    if v < 0:
        raise DeltaConflictError(f"negative node id {v}")
    return v


def _weight(w: Any) -> float:
    try:
        w = float(w)
    except (TypeError, ValueError):
        raise DeltaConflictError(f"weight must be a number, got {w!r}") from None
    if w < 0 or w != w:
        raise DeltaConflictError(f"negative or NaN weight {w!r}")
    return w


# --------------------------------------------------------------------- #
# application
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class DeltaApplication:
    """The result of applying a delta: the child plus edit provenance.

    ``touched`` is every node whose weight or neighbourhood differs
    between parent and child (including the former neighbours of removed
    nodes); ``weight_only`` says topology survived unchanged — the
    precondition of the incremental re-solve fast path.
    """

    graph: WeightedGraph
    touched: FrozenSet[int]
    weight_only: bool
    edits: int


def apply_delta(graph: WeightedGraph, delta: GraphDelta) -> WeightedGraph:
    """The child graph of ``graph`` under ``delta``.

    Canonically equal to building the edited graph from scratch: same
    adjacency tuples, same weights, same ``fingerprint()``.
    """
    return apply_delta_info(graph, delta).graph


def apply_delta_info(graph: WeightedGraph,
                     delta: GraphDelta) -> DeltaApplication:
    """Apply ``delta`` and report which nodes it touched.

    Copy-on-write: the child's adjacency dict is fresh, but every row a
    delta never edits is the parent's tuple object.  A weight-only delta
    shares the parent's adjacency dict outright, and — when the parent
    has a built CSR index — its ids/indptr/indices arrays too.
    """
    if delta.weight_only and delta.ops:
        return _apply_weight_only(graph, delta)
    adj: Dict[int, Any] = dict(graph._adj)      # row tuples shared
    weights: Dict[int, float] = dict(graph._weights)
    dirty: Dict[int, List[int]] = {}            # rows under edit, as lists
    touched = set()
    m = graph.m

    def row(v: int) -> List[int]:
        r = dirty.get(v)
        if r is None:
            r = dirty[v] = list(adj[v])
        return r

    for op in delta.ops:
        kind = op[0]
        if kind == "add_node":
            v, w = op[1], op[2]
            if v in weights:
                raise DeltaConflictError(f"add_node: node {v} already exists")
            adj[v] = ()
            weights[v] = w
            touched.add(v)
        elif kind == "remove_node":
            v = op[1]
            if v not in weights:
                raise DeltaConflictError(f"remove_node: unknown node {v}")
            neighbors = tuple(row(v)) if v in dirty else adj[v]
            for u in neighbors:
                r = row(u)
                r.remove(v)
                touched.add(u)
            m -= len(neighbors)
            adj.pop(v)
            weights.pop(v)
            dirty.pop(v, None)
            touched.add(v)
        elif kind == "add_edge":
            u, v = op[1], op[2]
            if u not in weights or v not in weights:
                missing = u if u not in weights else v
                raise DeltaConflictError(f"add_edge: unknown node {missing}")
            ru = row(u)
            i = bisect_left(ru, v)
            if i < len(ru) and ru[i] == v:
                raise DeltaConflictError(
                    f"add_edge: edge ({u}, {v}) already exists")
            ru.insert(i, v)
            insort(row(v), u)
            m += 1
            touched.add(u)
            touched.add(v)
        elif kind == "remove_edge":
            u, v = op[1], op[2]
            if u not in weights or v not in weights:
                missing = u if u not in weights else v
                raise DeltaConflictError(f"remove_edge: unknown node {missing}")
            ru = row(u)
            i = bisect_left(ru, v)
            if i >= len(ru) or ru[i] != v:
                raise DeltaConflictError(
                    f"remove_edge: no edge ({u}, {v})")
            ru.pop(i)
            row(v).remove(u)
            m -= 1
            touched.add(u)
            touched.add(v)
        else:  # set_weight
            v, w = op[1], op[2]
            if v not in weights:
                raise DeltaConflictError(f"set_weight: unknown node {v}")
            weights[v] = w
            touched.add(v)
    for v, r in dirty.items():
        adj[v] = tuple(r)
    child = WeightedGraph._from_canonical(adj, weights, m=m)
    return DeltaApplication(graph=child, touched=frozenset(touched),
                            weight_only=False, edits=len(delta.ops))


def _apply_weight_only(graph: WeightedGraph,
                       delta: GraphDelta) -> DeltaApplication:
    weights = dict(graph._weights)
    touched = set()
    for op in delta.ops:
        v, w = op[1], op[2]
        if v not in weights:
            raise DeltaConflictError(f"set_weight: unknown node {v}")
        weights[v] = w
        touched.add(v)
    child = WeightedGraph._from_canonical(graph._adj, weights, m=graph.m)
    csr = graph._csr
    if csr is not None:
        # Topology untouched: the child's CSR reuses the parent's
        # ids/indptr/indices arrays verbatim; only the per-slot weights
        # array is rebuilt.
        import numpy as np

        from repro.graphs.csr import CSRIndex

        new_w = np.array(csr.weights, dtype=np.float64)
        for v in touched:
            new_w[csr.slot_of[v]] = weights[v]
        child._csr = CSRIndex.from_arrays(csr.ids, csr.indptr, csr.indices,
                                          new_w)
    return DeltaApplication(graph=child, touched=frozenset(touched),
                            weight_only=True, edits=len(delta.ops))


# --------------------------------------------------------------------- #
# dirty region
# --------------------------------------------------------------------- #

def dirty_region(graph: WeightedGraph, touched: Iterable[int], *,
                 radius: int = 1,
                 ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """The BFS ball of ``radius`` around ``touched`` in ``graph``.

    Returns ``(region, frontier)``: every node within ``radius`` hops of
    a touched node (touched nodes no longer present in ``graph`` — e.g.
    removed ones — contribute nothing), and the region's outermost shell.
    The incremental re-solve path re-certifies the cached independent
    set against exactly this region: an edit cannot have changed the
    structural facts (independence, local maximality) anywhere else.
    """
    region = {v for v in touched if graph.has_node(v)}
    frontier = set(region)
    for _ in range(max(0, radius)):
        nxt = set()
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in region:
                    region.add(u)
                    nxt.add(u)
        frontier = nxt
        if not frontier:
            break
    return frozenset(region), frozenset(frontier)


def chain_doc(parent: str, delta: GraphDelta, child: str) -> Dict[str, Any]:
    """The persisted lineage record of one delta application (the graph
    store's ``<child>.delta.json`` sidecar)."""
    return {
        "schema": "v1",
        "kind": "graph_delta",
        "parent": parent,
        "child": child,
        "ops": delta.to_doc(),
        "delta_fingerprint": delta.fingerprint(),
        "weight_only": delta.weight_only,
    }


def chain_from_doc(doc: Any) -> Optional[Tuple[str, GraphDelta]]:
    """Parse a lineage sidecar; ``None`` when the doc is not one."""
    if not isinstance(doc, dict) or doc.get("kind") != "graph_delta":
        return None
    parent = doc.get("parent")
    if not isinstance(parent, str) or not parent:
        return None
    try:
        return parent, GraphDelta.from_doc(doc.get("ops"))
    except DeltaConflictError:
        return None
