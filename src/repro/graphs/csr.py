"""Compressed-sparse-row (CSR) index over a :class:`WeightedGraph`.

The dict-of-tuples adjacency of :class:`~repro.graphs.weighted_graph.
WeightedGraph` is the canonical representation — deterministic iteration
order, arbitrary node ids, friendly to the per-node view of the simulator.
It is, however, a poor shape for the whole-graph kernels the phase-based
algorithms hammer: repeated ``induced_subgraph`` calls, degree scans, and
fingerprints over the same physical graph.

:class:`CSRIndex` is a *derived, lazily built* view: contiguous numpy
``indptr``/``indices`` arrays over node *slots* (positions in the sorted
id order), a contiguous weight array, and the id↔slot maps needed to
translate back.  Because slots are assigned in ascending id order, sorted
slot sequences map back to sorted id sequences — which is what lets the
CSR kernels reproduce the dict API's iteration orders byte for byte.

The index never escapes the graph API: callers keep using ``neighbors``/
``induced_subgraph``/``fingerprint`` and get the same answers, just
faster.  See ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = ["CSRIndex"]


class CSRIndex:
    """Immutable CSR adjacency over node slots.

    Attributes:
        ids: node ids in ascending order; ``ids[slot]`` is the id of a slot.
        slot_of: inverse map, node id -> slot.
        indptr: ``indptr[s]:indptr[s+1]`` delimits the neighbour slots of
            slot ``s`` inside ``indices``.
        indices: neighbour *slots*, sorted ascending within each row (a
            consequence of slot order following id order).
        degrees: per-slot degree, ``indptr[1:] - indptr[:-1]``.
        weights: per-slot node weight, float64.
    """

    __slots__ = ("ids", "slot_of", "indptr", "indices", "degrees", "weights",
                 "_id_list")

    def __init__(self, adjacency: Mapping[int, Tuple[int, ...]],
                 weights: Mapping[int, float]):
        ids = sorted(adjacency)
        n = len(ids)
        self.ids = np.asarray(ids, dtype=np.int64)
        self._id_list = ids  # python ints, shared with kernels below
        slot_of: Dict[int, int] = {v: s for s, v in enumerate(ids)}
        self.slot_of = slot_of
        degrees = np.fromiter((len(adjacency[v]) for v in ids),
                              dtype=np.int64, count=n)
        self.degrees = degrees
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        self.indptr = indptr
        indices = np.empty(int(indptr[n]), dtype=np.int64)
        pos = 0
        for v in ids:
            for u in adjacency[v]:
                indices[pos] = slot_of[u]
                pos += 1
        self.indices = indices
        self.weights = np.fromiter((weights[v] for v in ids),
                                   dtype=np.float64, count=n)

    @classmethod
    def from_arrays(cls, ids: np.ndarray, indptr: np.ndarray,
                    indices: np.ndarray, weights: np.ndarray) -> "CSRIndex":
        """Rehydrate an index from already-canonical CSR arrays.

        ``ids`` must be strictly ascending int64, ``indptr``/``indices``
        a valid CSR adjacency over slots with each row sorted ascending,
        and ``weights`` float64 per slot — exactly what ``__init__``
        produces and what the binary graph codec / graph store persist.
        The arrays are adopted as-is (they may be read-only views into a
        shared arena); only the derived ``degrees``/``slot_of``/id list
        are materialized here.
        """
        self = object.__new__(cls)
        self.ids = ids
        self._id_list = ids.tolist()
        self.slot_of = {v: s for s, v in enumerate(self._id_list)}
        self.indptr = indptr
        self.indices = indices
        self.degrees = indptr[1:] - indptr[:-1]
        self.weights = weights
        return self

    @property
    def n(self) -> int:
        return len(self._id_list)

    @property
    def max_degree(self) -> int:
        """``Δ`` over slots; 0 for the empty graph (``degrees.max()``
        would raise on a zero-length array)."""
        return int(self.degrees.max()) if len(self.degrees) else 0

    def neighbor_slots(self, slot: int) -> np.ndarray:
        """Neighbour slots of ``slot`` (a view into ``indices``)."""
        return self.indices[self.indptr[slot]:self.indptr[slot + 1]]

    def induced_rows(self, kept_slots: np.ndarray):
        """Mask-filter the adjacency to the rows/columns in ``kept_slots``.

        Returns ``(ordered_kept_slots, counts, kept_neighbor_slots)``:
        the kept slots in ascending order, the number of surviving
        neighbours per kept slot (aligned with the first array), and the
        surviving neighbour slots concatenated in row order.  Rows stay
        internally sorted, so translating slots back through ``ids``
        reproduces the dict implementation's sorted tuples exactly.
        """
        # Callers pass slot arrays from many sources; an *empty* selection
        # often arrives as float64 (numpy's default for `np.array([])`),
        # which is not a legal index dtype.
        kept_slots = np.asarray(kept_slots, dtype=np.int64)
        mask = np.zeros(self.n, dtype=bool)
        mask[kept_slots] = True
        entry_kept = np.repeat(mask, self.degrees) & mask[self.indices]
        kept_neighbors = self.indices[entry_kept]
        # Prefix sums over the kept-entry mask give exact per-row counts,
        # including empty rows (reduceat mishandles those).
        prefix = np.zeros(len(self.indices) + 1, dtype=np.int64)
        np.cumsum(entry_kept, out=prefix[1:])
        row_counts = prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]
        ordered = np.flatnonzero(mask)
        return ordered, row_counts[ordered], kept_neighbors
