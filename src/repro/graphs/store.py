"""Content-addressed graph store: the zero-copy arena of the graph plane.

A :class:`GraphStore` persists the canonical CSR arrays of a
:class:`~repro.graphs.weighted_graph.WeightedGraph` as binary blobs
(:mod:`repro.blob` via :func:`repro.graphs.io.to_bytes`) keyed by
``WeightedGraph.fingerprint()``.  Readers *attach* instead of parsing:

* same process — a memoized graph instance per fingerprint;
* co-located processes — a ``multiprocessing.shared_memory`` segment
  (named after the fingerprint) or an ``mmap`` of the blob file, with
  the CSR arrays as read-only zero-copy views into the mapping.

Because the key *is* the graph fingerprint, a :class:`GraphRef` can
stand in for the graph everywhere only the fingerprint matters — cache
keys, request coalescing keys, solve reports — which is what makes
solve-by-reference byte-identical to solve-with-body for free.

Batch workers resolve refs through the process-global :func:`get_store`
memo, so a pool process attaches each graph once and reuses it across
jobs instead of unpickling the graph per job.

Lifecycle: the store that *created* a shared-memory segment owns it and
unlinks it in :meth:`close` (and, on crash, via the stdlib resource
tracker).  Attach-side stores deliberately unregister their segments
from the resource tracker — on Python ≤3.12 an attaching process would
otherwise unlink the creator's segment when it exits.
"""

from __future__ import annotations

import json
import mmap
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import GraphFormatError, ReproError
from repro.graphs import io as graph_io
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["GraphRef", "GraphStore", "UnknownGraphRef", "get_store",
           "resolve", "shm_segment_name"]

_BLOB_SUFFIX = ".rwg"
_SHM_PREFIX = "repro_g_"


class UnknownGraphRef(ReproError, KeyError):
    """A ``graph_ref`` names a fingerprint the store has never seen."""

    def __init__(self, ref: str):
        self.ref = ref
        super().__init__(f"unknown graph_ref {ref!r}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return f"unknown graph_ref {self.ref!r}"


def shm_segment_name(fingerprint: str) -> str:
    """Shared-memory segment name for a fingerprint (64-bit prefix —
    collision-free in practice, and short enough for every platform's
    segment-name limit)."""
    return _SHM_PREFIX + fingerprint[:16]


@dataclass(frozen=True)
class GraphRef:
    """A fingerprint-addressed handle to a stored graph.

    Duck-types as a graph wherever only identity and size matter:
    ``fingerprint()`` returns the content hash (so batch cache keys,
    coalescing keys, and solve reports come out byte-identical to the
    materialized-graph path), and ``n``/``m`` carry the stored counts
    for admission control.  ``root`` names the store directory, so a
    pickled ref is self-describing — a pool worker can resolve it with
    no ambient configuration.
    """

    ref: str
    root: str
    n: int
    m: int

    def fingerprint(self) -> str:
        return self.ref

    def resolve(self) -> WeightedGraph:
        """Attach the referenced graph via the process-global store memo."""
        return resolve(self)


class GraphStore:
    """Content-addressed store of binary graph blobs under one directory.

    Thread-compatible for the service's use (all mutation happens on the
    event loop; pool workers only attach).  ``use_shm`` defaults to
    enabled when the platform supports POSIX shared memory; pass
    ``False`` to force the mmap path (still zero-copy across co-located
    processes via the page cache).
    """

    def __init__(self, root: Union[str, Path], *,
                 use_shm: Optional[bool] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if use_shm is None:
            use_shm = _shm_supported()
        self.use_shm = bool(use_shm)
        self._graphs: Dict[str, WeightedGraph] = {}
        self._chains: Dict[str, Any] = {}         # child fp -> (parent, delta)
        self._owned_shm: Dict[str, Any] = {}      # fingerprint -> SharedMemory
        self._attached_shm: Dict[str, Any] = {}   # fingerprint -> SharedMemory
        self._mmaps: Dict[str, mmap.mmap] = {}    # fingerprint -> mapping
        self._closed = False

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def put(self, graph: WeightedGraph) -> GraphRef:
        """Register ``graph``, returning its ref.  Idempotent: a second
        ``put`` of the same content is a no-op that returns the same ref."""
        fp = graph.fingerprint()
        path = self._path(fp)
        if not path.exists():
            _atomic_write(path, graph_io.to_bytes(graph))
        self._graphs.setdefault(fp, graph)
        if self.use_shm and fp not in self._owned_shm:
            self._export_shm(fp, path)
        return GraphRef(ref=fp, root=str(self.root), n=graph.n, m=graph.m)

    def put_bytes(self, data: bytes) -> GraphRef:
        """Register a graph posted as a binary blob.

        The blob is re-validated: the graph is rebuilt from the arrays
        and its fingerprint recomputed, so a client cannot poison the
        content-addressed namespace with a mislabelled blob.
        """
        graph = graph_io.from_bytes(data)
        claimed = _blob_meta(data).get("fingerprint")
        graph._fingerprint = None  # force a real recomputation
        actual = graph.fingerprint()
        if claimed is not None and claimed != actual:
            raise GraphFormatError(
                f"blob fingerprint mismatch: header says {claimed[:12]}…, "
                f"content hashes to {actual[:12]}…")
        return self.put(graph)

    def put_doc(self, doc: Dict[str, Any]) -> GraphRef:
        """Register a graph posted as a JSON graph document."""
        return self.put(graph_io.from_doc(doc))

    def put_delta(self, parent: str, delta) -> GraphRef:
        """Register the child of a stored graph under an edit script.

        Applies ``delta`` (a :class:`~repro.graphs.delta.GraphDelta`) to
        the graph stored as ``parent`` — copy-on-write, untouched rows
        shared with the parent's in-memory instance — and registers the
        child under its own content fingerprint, byte-identical to
        registering the from-scratch edited graph.  The lineage
        (parent fingerprint + canonical ops) is persisted in a
        ``<child>.delta.json`` sidecar so any process attached to this
        store — including the incremental re-solve path — can recover
        the chain.  Raises :class:`UnknownGraphRef` for an unknown
        parent and :class:`~repro.graphs.delta.DeltaConflictError` for
        contradictory edits.
        """
        from repro.graphs.delta import apply_delta_info, chain_doc

        parent_graph = self.attach(parent)
        info = apply_delta_info(parent_graph, delta)
        ref = self.put(info.graph)
        doc = chain_doc(parent, delta, ref.ref)
        doc["touched"] = sorted(info.touched)
        sidecar = self._chain_path(ref.ref)
        if not sidecar.exists():
            _atomic_write(sidecar, json.dumps(
                doc, sort_keys=True, separators=(",", ":")).encode())
        self._chains[ref.ref] = (parent, delta)
        return ref

    def delta_chain(self, fingerprint: str):
        """``(parent_fingerprint, GraphDelta)`` if ``fingerprint`` was
        registered through :meth:`put_delta` (here or by any process
        sharing this store directory), else ``None``."""
        chain = self._chains.get(fingerprint)
        if chain is not None:
            return chain
        path = self._chain_path(fingerprint)
        try:
            doc = json.loads(path.read_text())
        except (FileNotFoundError, ValueError, OSError):
            return None
        from repro.graphs.delta import chain_from_doc

        chain = chain_from_doc(doc)
        if chain is not None:
            self._chains[fingerprint] = chain
        return chain

    # ------------------------------------------------------------------ #
    # attach / inspect
    # ------------------------------------------------------------------ #

    def attach(self, fingerprint: str) -> WeightedGraph:
        """Materialize the graph for ``fingerprint`` (memoized).

        Resolution order: in-process memo → shared-memory segment →
        mmap of the blob file.  Raises :class:`UnknownGraphRef` when the
        fingerprint is nowhere to be found.
        """
        g = self._graphs.get(fingerprint)
        if g is not None:
            return g
        if self.use_shm:
            g = self._attach_shm(fingerprint)
        if g is None:
            g = self._attach_mmap(fingerprint)
        if g is None:
            raise UnknownGraphRef(fingerprint)
        if g.fingerprint() != fingerprint:
            raise GraphFormatError(
                f"stored blob for {fingerprint[:12]}… carries a different "
                f"fingerprint — store corrupted?")
        self._graphs[fingerprint] = g
        return g

    def describe(self, fingerprint: str) -> Dict[str, Any]:
        """Header-only metadata (``fingerprint``/``n``/``m``/``nbytes``)
        without materializing the graph — the 413 admission check reads
        node counts through this."""
        g = self._graphs.get(fingerprint)
        path = self._path(fingerprint)
        if g is not None:
            return {"fingerprint": fingerprint, "n": g.n, "m": g.m,
                    "nbytes": path.stat().st_size if path.exists() else None}
        if not path.exists():
            raise UnknownGraphRef(fingerprint)
        meta = _read_meta(path)
        return {"fingerprint": fingerprint, "n": int(meta["n"]),
                "m": int(meta["m"]), "nbytes": path.stat().st_size}

    def ref(self, fingerprint: str) -> GraphRef:
        """The :class:`GraphRef` for a stored fingerprint (404-checking
        variant of construction)."""
        info = self.describe(fingerprint)
        return GraphRef(ref=fingerprint, root=str(self.root),
                        n=info["n"], m=info["m"])

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._graphs or self._path(fingerprint).exists()

    def refs(self) -> List[str]:
        """All stored fingerprints (sorted)."""
        on_disk = {p.stem for p in self.root.glob(f"*{_BLOB_SUFFIX}")}
        return sorted(on_disk | set(self._graphs))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def evict(self, fingerprint: str) -> bool:
        """Drop a graph from the store (memo, blob file, and any shm
        segment this store owns).  Returns whether anything was removed."""
        found = fingerprint in self
        self._graphs.pop(fingerprint, None)
        self._chains.pop(fingerprint, None)
        self._release_mapping(fingerprint, unlink_owned=True)
        for path in (self._path(fingerprint), self._chain_path(fingerprint)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return found

    def close(self) -> None:
        """Release every mapping; unlink owned shared-memory segments.

        Safe to call twice.  Attached numpy views may outlive the store
        (a caller can hold a graph after ``close``); releasing the OS
        handles is best-effort in that case — the memory itself stays
        valid until the last view drops.
        """
        if self._closed:
            return
        self._closed = True
        for fp in list(self._owned_shm) + list(self._attached_shm) + list(self._mmaps):
            self._release_mapping(fp, unlink_owned=True)
        self._graphs.clear()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _path(self, fingerprint: str) -> Path:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise GraphFormatError(f"malformed graph_ref {fingerprint!r}")
        return self.root / f"{fingerprint}{_BLOB_SUFFIX}"

    def _chain_path(self, fingerprint: str) -> Path:
        self._path(fingerprint)  # same ref validation
        return self.root / f"{fingerprint}.delta.json"

    def _export_shm(self, fingerprint: str, path: Path) -> None:
        from multiprocessing import shared_memory

        name = shm_segment_name(fingerprint)
        data = path.read_bytes()
        try:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=len(data))
        except FileExistsError:
            return  # another worker already exported it
        except OSError:
            self.use_shm = False  # e.g. /dev/shm missing or full
            return
        shm.buf[:len(data)] = data
        self._owned_shm[fingerprint] = shm

    def _attach_shm(self, fingerprint: str) -> Optional[WeightedGraph]:
        from multiprocessing import shared_memory

        name = shm_segment_name(fingerprint)
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        # Note on the resource tracker: attaching registers the segment in
        # this process tree's tracker (Python ≤3.12).  Within the creator's
        # tree that is an idempotent no-op; from a *different* tree it can
        # unlink the name early when this tree exits — which is safe
        # (existing mappings stay valid; later attaches fall back to the
        # mmap path) and is exactly the crash-cleanup guarantee that keeps
        # /dev/shm leak-free.  Unregistering here would instead cancel the
        # creator's cleanup entry whenever trees share a tracker.
        try:
            g = graph_io.from_buffer(shm.buf)
        except GraphFormatError:
            shm.close()
            return None
        self._attached_shm[fingerprint] = shm
        return g

    def _attach_mmap(self, fingerprint: str) -> Optional[WeightedGraph]:
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as fh:
                mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (FileNotFoundError, ValueError, OSError):
            return None
        try:
            g = graph_io.from_buffer(mapping)
        except GraphFormatError:
            mapping.close()
            raise
        self._mmaps[fingerprint] = mapping
        return g

    def _release_mapping(self, fingerprint: str, *, unlink_owned: bool) -> None:
        shm = self._owned_shm.pop(fingerprint, None)
        if shm is not None:
            if unlink_owned:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass  # an attacher's tracker already reclaimed it
            _close_shm(shm)
        shm = self._attached_shm.pop(fingerprint, None)
        if shm is not None:
            _close_shm(shm)
        mapping = self._mmaps.pop(fingerprint, None)
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                pass  # live views; freed when the last view drops


# ---------------------------------------------------------------------- #
# process-global resolution (the pool-worker fast path)
# ---------------------------------------------------------------------- #

_STORES: Dict[str, GraphStore] = {}


def _close_global_stores() -> None:
    # atexit: release OS handles before interpreter teardown so that
    # SharedMemory.__del__ never races live numpy views at shutdown.
    for store in _STORES.values():
        store.close()
    _STORES.clear()


import atexit as _atexit  # noqa: E402 — registration belongs next to the memo

_atexit.register(_close_global_stores)


def get_store(root: Union[str, Path]) -> GraphStore:
    """Per-process memoized :class:`GraphStore` for ``root``.

    Pool workers funnel every :class:`GraphRef` through this, so a
    long-lived worker attaches each graph once and serves all subsequent
    jobs from the memo — the zero-copy replacement for per-job graph
    unpickling.  Attach-only by construction: stores obtained here never
    own shm segments (they only ever attach), so worker exit cannot tear
    down the creator's arena.
    """
    key = str(Path(root).resolve())
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = GraphStore(key)
    return store


def resolve(ref: GraphRef) -> WeightedGraph:
    """Materialize a :class:`GraphRef` via the process-global memo."""
    return get_store(ref.root).attach(ref.ref)


def ephemeral_store(prefix: str = "repro-graphs-") -> GraphStore:
    """A store over a fresh temp directory (engine default when no cache
    dir is configured); the directory is removed on :meth:`close`."""
    tmpdir = tempfile.mkdtemp(prefix=prefix)
    store = GraphStore(tmpdir)
    original_close = store.close

    def close_and_remove() -> None:
        original_close()
        import shutil

        shutil.rmtree(tmpdir, ignore_errors=True)

    store.close = close_and_remove  # type: ignore[method-assign]
    return store


# ---------------------------------------------------------------------- #
# blob-header helpers
# ---------------------------------------------------------------------- #

def _blob_meta(data: bytes) -> Dict[str, Any]:
    from repro import blob

    if len(data) < 16 or data[:8] != blob.MAGIC:
        raise GraphFormatError("bad binary graph blob: bad magic")
    header_len = int.from_bytes(data[12:16], "little")
    try:
        doc = json.loads(data[16:16 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"bad binary graph blob header: {exc}") from exc
    return doc.get("meta", {})


def _read_meta(path: Path) -> Dict[str, Any]:
    with open(path, "rb") as fh:
        head = fh.read(16)
        if len(head) < 16:
            raise GraphFormatError(f"truncated graph blob {path.name}")
        header_len = int.from_bytes(head[12:16], "little")
        return _blob_meta(head + fh.read(header_len))


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _close_shm(shm) -> None:
    """Close a ``SharedMemory`` handle even when live numpy views pin the
    buffer.  In that case the mapping is deliberately handed over to the
    views (the OS reclaims it when the last one drops); the handle's
    internals are detached so its ``__del__`` does not retry — and fail —
    at garbage-collection time."""
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None


def _shm_supported() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return os.path.isdir("/dev/shm") or os.name == "nt"
