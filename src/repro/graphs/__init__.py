"""Graph substrate: the weighted-graph data structure, generators,
arboricity machinery, and the lower-bound instance family."""

from repro.graphs.weighted_graph import WeightedGraph
from repro.graphs.generators import (
    barabasi_albert,
    caterpillar,
    complete,
    cycle,
    disjoint_union,
    empty,
    gnp,
    grid_2d,
    path,
    planted_heavy_hub,
    power_law,
    random_bipartite,
    random_geometric,
    random_regular,
    random_tree,
    star,
    union_of_random_forests,
)
from repro.graphs.weights import (
    degree_proportional_weights,
    exponential_weights,
    integer_weights,
    polynomial_weights,
    skewed_heavy_set,
    uniform_weights,
    unit_weights,
)
from repro.graphs.cliques import CycleOfCliques, cycle_of_cliques
from repro.graphs.forests import (
    arboricity,
    degeneracy,
    nash_williams_lower_bound,
    partition_into_forests,
)
from repro.graphs.specs import graph_from_spec, weights_from_spec
from repro.graphs.properties import (
    GraphSummary,
    complement,
    average_degree,
    bfs_distances,
    connected_components,
    degree_histogram,
    diameter,
    is_connected,
    summarize,
)

__all__ = [
    "WeightedGraph",
    # generators
    "cycle", "path", "complete", "star", "empty", "gnp", "random_regular",
    "grid_2d", "random_tree", "caterpillar", "union_of_random_forests",
    "random_bipartite", "random_geometric", "power_law", "barabasi_albert",
    "disjoint_union", "planted_heavy_hub",
    # weights
    "unit_weights", "uniform_weights", "integer_weights", "polynomial_weights",
    "exponential_weights", "degree_proportional_weights", "skewed_heavy_set",
    # instance specs (generator-zoo vocabulary)
    "graph_from_spec", "weights_from_spec",
    # lower-bound instance
    "CycleOfCliques", "cycle_of_cliques",
    # arboricity
    "arboricity", "degeneracy", "partition_into_forests", "nash_williams_lower_bound",
    # properties
    "GraphSummary", "summarize", "degree_histogram", "average_degree",
    "connected_components", "is_connected", "bfs_distances", "diameter", "complement",
]
