"""Weight-assignment schemes for MaxIS experiments.

The paper's weighted results are sensitive to the *shape* of the weight
distribution (``W`` can be ``poly(n)``; the sparsification ablation needs
adversarially skewed weights), so the experiment suite draws from several
named schemes.  Every scheme returns a new :class:`WeightedGraph` with the
same topology.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "unit_weights",
    "uniform_weights",
    "integer_weights",
    "polynomial_weights",
    "exponential_weights",
    "degree_proportional_weights",
    "skewed_heavy_set",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def unit_weights(g: WeightedGraph) -> WeightedGraph:
    """All weights 1 (the unweighted case)."""
    return g.with_unit_weights()


def uniform_weights(g: WeightedGraph, low: float = 0.0, high: float = 1.0,
                    seed: RngLike = None) -> WeightedGraph:
    """I.i.d. uniform weights in ``[low, high)``."""
    rng = _rng(seed)
    return g.with_weights({v: float(rng.uniform(low, high)) for v in g.nodes})


def integer_weights(g: WeightedGraph, w_max: int, seed: RngLike = None) -> WeightedGraph:
    """I.i.d. integer weights in ``{1, ..., w_max}``.

    This is the paper's setting for the Bar-Yehuda et al. baseline, whose
    round complexity carries a ``log W`` factor.
    """
    if w_max < 1:
        raise GraphError(f"w_max must be >= 1, got {w_max}")
    rng = _rng(seed)
    return g.with_weights({v: float(rng.integers(1, w_max + 1)) for v in g.nodes})


def polynomial_weights(g: WeightedGraph, exponent: float = 2.0, seed: RngLike = None) -> WeightedGraph:
    """Integer weights up to ``W = n^exponent`` (the paper's ``W = poly(n)``)."""
    w_max = max(1, int(round(g.n ** exponent)))
    return integer_weights(g, w_max, seed)


def exponential_weights(g: WeightedGraph, scale: float = 1.0, seed: RngLike = None) -> WeightedGraph:
    """I.i.d. exponential weights — a heavy-ish tail with W >> median."""
    rng = _rng(seed)
    return g.with_weights({v: float(rng.exponential(scale)) + 1e-12 for v in g.nodes})


def degree_proportional_weights(g: WeightedGraph, offset: float = 1.0) -> WeightedGraph:
    """Weight = degree + offset: correlates value with conflict."""
    return g.with_weights({v: float(g.degree(v)) + offset for v in g.nodes})


def skewed_heavy_set(g: WeightedGraph, fraction: float = 0.01,
                     heavy: float = 1e6, light: float = 1.0,
                     seed: RngLike = None) -> WeightedGraph:
    """A tiny random fraction of nodes carries almost all the weight.

    The adversarial instance for *unweighted* (uniform-probability)
    sparsification: sampling must use the ``w(v)/wmax(v)`` boost term
    (§4.2) or it misses the heavy nodes.  Used in the E10 ablation.
    """
    if not 0 < fraction <= 1:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    rng = _rng(seed)
    k = max(1, int(round(fraction * g.n)))
    heavy_nodes = set(
        int(v) for v in rng.choice(np.array(g.nodes), size=k, replace=False)
    )
    return g.with_weights(
        {v: heavy if v in heavy_nodes else light for v in g.nodes}
    )
