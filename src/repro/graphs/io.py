"""Serialization of weighted graphs.

Three formats:

* a human-readable text format (``.wg``): header line ``n m``, then ``n``
  lines ``node weight``, then ``m`` lines ``u v``;
* JSON, for embedding instances in experiment manifests;
* a binary CSR blob (``.rwg``) built on :mod:`repro.blob` — the
  zero-copy wire/arena format of the graph plane.  Round-trip equal to
  the JSON codec (same graph, same fingerprint), but :func:`from_bytes`
  rebuilds through :meth:`WeightedGraph._from_csr_arrays` instead of
  re-sorting an edge list, and the stored fingerprint makes re-hashing
  on load unnecessary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import GraphFormatError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["dumps", "loads", "save", "load", "to_doc", "from_doc",
           "to_json", "from_json", "to_bytes", "from_bytes", "from_buffer",
           "save_binary", "load_binary"]


def dumps(g: WeightedGraph) -> str:
    """Serialize ``g`` to the text format."""
    lines = [f"{g.n} {g.m}"]
    for v in g.nodes:
        lines.append(f"{v} {g.weight(v)!r}")
    for u, v in g.edges():
        lines.append(f"{u} {v}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> WeightedGraph:
    """Parse the text format produced by :func:`dumps`."""
    raw = [ln for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not raw:
        raise GraphFormatError("empty graph document")
    try:
        n, m = (int(x) for x in raw[0].split())
    except ValueError as exc:
        raise GraphFormatError(f"bad header line: {raw[0]!r}") from exc
    if len(raw) != 1 + n + m:
        raise GraphFormatError(
            f"expected {1 + n + m} lines for n={n}, m={m}; got {len(raw)}"
        )
    weights = {}
    nodes = []
    for ln in raw[1:1 + n]:
        parts = ln.split()
        if len(parts) != 2:
            raise GraphFormatError(f"bad node line: {ln!r}")
        v = int(parts[0])
        nodes.append(v)
        weights[v] = float(parts[1])
    edges = []
    for ln in raw[1 + n:]:
        parts = ln.split()
        if len(parts) != 2:
            raise GraphFormatError(f"bad edge line: {ln!r}")
        edges.append((int(parts[0]), int(parts[1])))
    return WeightedGraph.from_edges(nodes, edges, weights)


def save(g: WeightedGraph, path: Union[str, Path]) -> None:
    """Write ``g`` to ``path`` in the text format."""
    Path(path).write_text(dumps(g))


def load(path: Union[str, Path]) -> WeightedGraph:
    """Read a graph from ``path`` (text format)."""
    return loads(Path(path).read_text())


def to_doc(g: WeightedGraph) -> Dict[str, Any]:
    """``g`` as a JSON-compatible dict (the wire form of a graph).

    This is the inline graph encoding of the solver service's
    request/response schema; :func:`from_doc` is its inverse.
    """
    return {
        "nodes": [[v, g.weight(v)] for v in g.nodes],
        "edges": [[u, v] for u, v in g.edges()],
    }


def from_doc(doc: Dict[str, Any]) -> WeightedGraph:
    """Parse the dict produced by :func:`to_doc`."""
    try:
        nodes = [int(v) for v, _ in doc["nodes"]]
        weights = {int(v): float(w) for v, w in doc["nodes"]}
        edges = [(int(u), int(v)) for u, v in doc["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphFormatError(f"bad JSON graph document: {exc}") from exc
    return WeightedGraph.from_edges(nodes, edges, weights)


def to_bytes(g: WeightedGraph) -> bytes:
    """Serialize ``g`` to the binary CSR blob format.

    The blob stores the canonical CSR arrays (``ids``/``indptr``/
    ``indices``/``weights``) plus the graph fingerprint and counts in the
    header, so loading is a bulk array attach rather than an edge-list
    parse, and the fingerprint never has to be recomputed.
    """
    from repro import blob

    csr = g.csr
    meta = {
        "kind": "weighted_graph",
        "fingerprint": g.fingerprint(),
        "n": g.n,
        "m": g.m,
    }
    return blob.pack(meta, [
        ("ids", csr.ids),
        ("indptr", csr.indptr),
        ("indices", csr.indices),
        ("weights", csr.weights),
    ])


def from_buffer(buf) -> WeightedGraph:
    """Rebuild a graph from a binary blob *without copying the arrays*.

    ``buf`` may be ``bytes``, an ``mmap``, or a shared-memory buffer; the
    returned graph's CSR index holds read-only views into it, so the
    caller must keep ``buf`` alive for the graph's lifetime (the graph
    store does this by owning the mapping).  Use :func:`from_bytes` when
    the buffer's lifetime is not managed.
    """
    from repro import blob

    try:
        meta, arrays = blob.unpack(buf)
    except blob.BlobFormatError as exc:
        raise GraphFormatError(f"bad binary graph blob: {exc}") from exc
    if meta.get("kind") != "weighted_graph":
        raise GraphFormatError(
            f"bad binary graph blob: kind={meta.get('kind')!r}")
    try:
        ids = arrays["ids"]
        indptr = arrays["indptr"]
        indices = arrays["indices"]
        weights = arrays["weights"]
    except KeyError as exc:
        raise GraphFormatError(
            f"bad binary graph blob: missing array {exc}") from exc
    if len(indptr) != len(ids) + 1:
        raise GraphFormatError("bad binary graph blob: indptr/ids mismatch")
    return WeightedGraph._from_csr_arrays(
        ids, indptr, indices, weights,
        fingerprint=meta.get("fingerprint"),
    )


def from_bytes(buf) -> WeightedGraph:
    """Parse the binary blob produced by :func:`to_bytes`.

    The arrays are copied out of ``buf``, so the result is self-contained
    (safe to use after the buffer is freed or the file is replaced).
    """
    g = from_buffer(buf)
    csr = g._csr
    if csr is not None:
        import numpy as np

        csr.ids = np.array(csr.ids)
        csr.indptr = np.array(csr.indptr)
        csr.indices = np.array(csr.indices)
        csr.degrees = np.array(csr.degrees)
        csr.weights = np.array(csr.weights)
    return g


def save_binary(g: WeightedGraph, path: Union[str, Path]) -> None:
    """Write ``g`` to ``path`` in the binary blob format."""
    Path(path).write_bytes(to_bytes(g))


def load_binary(path: Union[str, Path]) -> WeightedGraph:
    """Read a graph from ``path`` (binary blob format)."""
    return from_bytes(Path(path).read_bytes())


def to_json(g: WeightedGraph) -> str:
    """Serialize ``g`` as a JSON object."""
    return json.dumps(to_doc(g))


def from_json(text: str) -> WeightedGraph:
    """Parse the JSON produced by :func:`to_json`."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise GraphFormatError(f"bad JSON graph document: {exc}") from exc
    if not isinstance(doc, dict):
        raise GraphFormatError(
            f"bad JSON graph document: expected an object, "
            f"got {type(doc).__name__}"
        )
    return from_doc(doc)
