"""Graph generators used by examples, tests, and the experiment suite.

All randomized generators take an explicit ``seed`` (or a ``numpy`` Generator)
so every experiment in the repository is reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "cycle",
    "path",
    "complete",
    "star",
    "empty",
    "gnp",
    "random_regular",
    "grid_2d",
    "random_tree",
    "caterpillar",
    "union_of_random_forests",
    "power_law",
    "barabasi_albert",
    "random_geometric",
    "random_bipartite",
    "disjoint_union",
    "planted_heavy_hub",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def cycle(n: int) -> WeightedGraph:
    """The ``n``-cycle ``C_n`` (``n >= 3``)."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return WeightedGraph.from_edges(range(n), edges)


def path(n: int) -> WeightedGraph:
    """The path ``P_n`` on ``n`` nodes."""
    if n < 1:
        raise GraphError(f"path needs n >= 1, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return WeightedGraph.from_edges(range(n), edges)


def complete(n: int) -> WeightedGraph:
    """The complete graph ``K_n``."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return WeightedGraph.from_edges(range(n), edges)


def star(n_leaves: int) -> WeightedGraph:
    """A star: node 0 is the hub, nodes ``1..n_leaves`` are leaves."""
    edges = [(0, i) for i in range(1, n_leaves + 1)]
    return WeightedGraph.from_edges(range(n_leaves + 1), edges)


def empty(n: int) -> WeightedGraph:
    """The edgeless graph on ``n`` nodes."""
    return WeightedGraph.empty(n)


def gnp(n: int, p: float, seed: RngLike = None) -> WeightedGraph:
    """Erdős–Rényi ``G(n, p)`` sampled edge-by-edge with geometric skipping."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    if p > 0:
        if p == 1.0:
            return complete(n)
        # Geometric skipping over the n*(n-1)/2 potential edges.
        total = n * (n - 1) // 2
        log_q = math.log1p(-p)
        idx = -1
        while True:
            r = rng.random()
            idx += int(math.floor(math.log(max(r, 1e-300)) / log_q)) + 1
            if idx >= total:
                break
            # Map linear index -> (u, v), u < v.
            u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * idx)) // 2)
            base = u * (2 * n - u - 1) // 2
            v = idx - base + u + 1
            edges.append((u, v))
    return WeightedGraph.from_edges(range(n), edges)


def random_regular(n: int, d: int, seed: RngLike = None) -> WeightedGraph:
    """A random ``d``-regular graph (networkx's pairing-with-repair model)."""
    if n * d % 2 != 0:
        raise GraphError(f"n*d must be even for a d-regular graph (n={n}, d={d})")
    if d >= n:
        raise GraphError(f"need d < n (n={n}, d={d})")
    if d == 0:
        return WeightedGraph.empty(n)
    import networkx as nx

    rng = _rng(seed)
    # networkx wants a stdlib-style seed; derive one deterministically.
    nx_seed = int(rng.integers(0, 2 ** 31 - 1))
    g = nx.random_regular_graph(d, n, seed=nx_seed)
    return WeightedGraph.from_edges(range(n), g.edges())


def grid_2d(rows: int, cols: int) -> WeightedGraph:
    """The ``rows x cols`` grid graph (planar, arboricity <= 2)."""
    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return WeightedGraph.from_edges(range(rows * cols), edges)


def random_tree(n: int, seed: RngLike = None) -> WeightedGraph:
    """A uniformly random labelled tree via a random Prüfer sequence."""
    if n < 1:
        raise GraphError(f"tree needs n >= 1, got {n}")
    if n == 1:
        return WeightedGraph.empty(1)
    if n == 2:
        return WeightedGraph.from_edges(range(2), [(0, 1)])
    rng = _rng(seed)
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    edges = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return WeightedGraph.from_edges(range(n), edges)


def caterpillar(spine: int, legs_per_node: int) -> WeightedGraph:
    """A caterpillar tree: a spine path with ``legs_per_node`` pendant leaves each.

    Arboricity 1 with max degree ``legs_per_node + 2`` — a useful instance
    where Theorem 3's guarantee beats Theorem 2's.
    """
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return WeightedGraph.from_edges(range(nxt), edges)


def union_of_random_forests(n: int, k: int, seed: RngLike = None) -> WeightedGraph:
    """Union of ``k`` random spanning trees on ``n`` nodes: arboricity <= k."""
    rng = _rng(seed)
    edge_set: Set[Tuple[int, int]] = set()
    for _ in range(k):
        t = random_tree(n, rng)
        edge_set.update(t.edges())
    return WeightedGraph.from_edges(range(n), sorted(edge_set))


def barabasi_albert(n: int, m_edges: int = 2, seed: RngLike = None) -> WeightedGraph:
    """Barabási–Albert preferential attachment (unbounded-hub power law).

    Unlike :func:`power_law` (degrees truncated at ``sqrt(n)``), BA hubs
    grow without bound — the strongest α ≪ Δ regime available here.
    """
    if n < m_edges + 1:
        raise GraphError(f"need n > m_edges (n={n}, m_edges={m_edges})")
    if m_edges < 1:
        raise GraphError(f"m_edges must be >= 1, got {m_edges}")
    rng = _rng(seed)
    edges: Set[Tuple[int, int]] = set()
    # Seed clique on the first m_edges+1 nodes.
    targets = list(range(m_edges + 1))
    for i in range(m_edges + 1):
        for j in range(i + 1, m_edges + 1):
            edges.add((i, j))
    # Repeated-endpoint list implements preferential attachment.
    endpoint_pool: List[int] = [v for e in edges for v in e]
    for v in range(m_edges + 1, n):
        chosen: Set[int] = set()
        while len(chosen) < m_edges:
            chosen.add(int(endpoint_pool[int(rng.integers(0, len(endpoint_pool)))]))
        for u in chosen:
            edges.add((min(u, v), max(u, v)))
            endpoint_pool.extend((u, v))
    return WeightedGraph.from_edges(range(n), sorted(edges))


def power_law(n: int, exponent: float = 2.5, min_degree: int = 1,
              seed: RngLike = None) -> WeightedGraph:
    """A power-law degree graph via the configuration model with repair.

    Degrees are drawn from a discrete Pareto-ish tail
    ``P(d) ∝ d^{-exponent}`` truncated at ``sqrt(n)``; self loops and
    parallel edges are dropped (the standard "erased" configuration
    model).  Produces the hub-heavy sparse topology of social/internet
    graphs — large ``Δ``, small arboricity — a natural Theorem 3 workload.
    """
    if n < 2:
        raise GraphError(f"power_law needs n >= 2, got {n}")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    rng = _rng(seed)
    max_degree = max(min_degree + 1, int(math.isqrt(n)))
    support = np.arange(min_degree, max_degree + 1, dtype=float)
    probs = support ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(support.astype(int), size=n, p=probs)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    edges: Set[Tuple[int, int]] = set()
    for a, b in stubs.reshape(-1, 2):
        a, b = int(a), int(b)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return WeightedGraph.from_edges(range(n), sorted(edges))


def random_geometric(n: int, radius: float, seed: RngLike = None) -> WeightedGraph:
    """A random geometric graph on the unit square (unit-disk model).

    Nodes are uniform points; an edge joins pairs within ``radius``.  The
    standard model of wireless interference — the motivating application
    for distributed MaxIS (transmission scheduling).
    """
    rng = _rng(seed)
    pts = rng.random((n, 2))
    edges = []
    r2 = radius * radius
    for u in range(n):
        d = pts[u + 1:] - pts[u]
        close = np.nonzero((d * d).sum(axis=1) <= r2)[0]
        edges.extend((u, u + 1 + int(v)) for v in close)
    return WeightedGraph.from_edges(range(n), edges)


def random_bipartite(n_left: int, n_right: int, p: float, seed: RngLike = None) -> WeightedGraph:
    """Random bipartite graph; left ids ``0..n_left-1``, right follow."""
    rng = _rng(seed)
    edges = []
    for u in range(n_left):
        for v in range(n_left, n_left + n_right):
            if rng.random() < p:
                edges.append((u, v))
    return WeightedGraph.from_edges(range(n_left + n_right), edges)


def disjoint_union(graphs: Sequence[WeightedGraph]) -> WeightedGraph:
    """Disjoint union; node ids of later graphs are shifted upward."""
    adj: Dict[int, List[int]] = {}
    weights: Dict[int, float] = {}
    offset = 0
    for g in graphs:
        # Relabel each component into a contiguous block.
        ordered = {old: offset + i for i, old in enumerate(g.nodes)}
        for old in g.nodes:
            new = ordered[old]
            adj[new] = [ordered[u] for u in g.neighbors(old)]
            weights[new] = g.weight(old)
        offset += g.n
    return WeightedGraph(adj, weights, _skip_validation=True)


def planted_heavy_hub(n: int, hub_degree: int, base_p: float, seed: RngLike = None) -> WeightedGraph:
    """A sparse ``G(n, p)`` with one planted high-degree hub (node 0).

    Produces graphs where ``Δ`` is large but the arboricity stays small —
    the regime where Theorem 3 beats the Δ-based algorithms.
    """
    rng = _rng(seed)
    g = gnp(n, base_p, rng)
    hub_targets = rng.choice(np.arange(1, n), size=min(hub_degree, n - 1), replace=False)
    edges = set(g.edges())
    for t in hub_targets:
        edges.add((0, int(t)))
    return WeightedGraph.from_edges(range(n), sorted(edges))
