"""Structural graph properties used for workload characterisation."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "complement",
    "degree_histogram",
    "average_degree",
    "connected_components",
    "is_connected",
    "bfs_distances",
    "diameter",
    "GraphSummary",
    "summarize",
]


def complement(g: WeightedGraph) -> WeightedGraph:
    """The complement graph (same nodes and weights, inverted adjacency).

    Independent sets of ``g`` are exactly the cliques of ``complement(g)``
    — used by the property tests to cross-check the exact solver.
    """
    nodes = g.nodes
    node_set = set(nodes)
    adj = {
        v: tuple(sorted(node_set - set(g.neighbors(v)) - {v}))
        for v in nodes
    }
    return WeightedGraph(adj, g.weights, _skip_validation=True)


def degree_histogram(g: WeightedGraph) -> Dict[int, int]:
    """Mapping ``degree -> count``."""
    hist: Dict[int, int] = {}
    for v in g.nodes:
        d = g.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def average_degree(g: WeightedGraph) -> float:
    """``2m / n``; 0 for the empty graph."""
    return 2.0 * g.m / g.n if g.n else 0.0


def connected_components(g: WeightedGraph) -> List[Set[int]]:
    """Connected components, each as a set of node ids."""
    seen: Set[int] = set()
    out: List[Set[int]] = []
    for start in g.nodes:
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for u in g.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    comp.add(u)
                    queue.append(u)
        out.append(comp)
    return out


def is_connected(g: WeightedGraph) -> bool:
    """True iff the graph has exactly one connected component (or is empty)."""
    if g.n == 0:
        return True
    return len(connected_components(g)) == 1


def bfs_distances(g: WeightedGraph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable node."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def diameter(g: WeightedGraph) -> int:
    """Exact diameter via all-sources BFS (intended for small graphs).

    Raises ``ValueError`` on a disconnected or empty graph.
    """
    if g.n == 0:
        raise ValueError("diameter of the empty graph is undefined")
    best = 0
    for v in g.nodes:
        dist = bfs_distances(g, v)
        if len(dist) != g.n:
            raise ValueError("diameter is undefined for disconnected graphs")
        best = max(best, max(dist.values()))
    return best


@dataclass(frozen=True)
class GraphSummary:
    """One-line workload characterisation used in experiment reports."""

    n: int
    m: int
    max_degree: int
    avg_degree: float
    total_weight: float
    max_weight: float
    components: int

    def as_row(self) -> Tuple:
        return (self.n, self.m, self.max_degree, round(self.avg_degree, 2),
                round(self.total_weight, 2), round(self.max_weight, 2), self.components)


def summarize(g: WeightedGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``g``."""
    return GraphSummary(
        n=g.n,
        m=g.m,
        max_degree=g.max_degree,
        avg_degree=average_degree(g),
        total_weight=g.total_weight(),
        max_weight=g.max_weight(),
        components=len(connected_components(g)),
    )
