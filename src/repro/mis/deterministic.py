"""Deterministic MIS by iterated local minima.

The classic identifier-greedy rule: in every phase, an active node whose id
is smaller than all its active neighbours' ids joins the MIS.  Two rounds
per phase with the same silent-neighbour discipline as the other black
boxes.  Worst-case ``O(n)`` rounds (a path with sorted ids), but it is the
simplest *deterministic* CONGEST MIS, which is exactly what Theorem 1 needs
as a black box — the theorem's round bound is stated in units of
``MIS(n, Δ)``, whatever that black box costs.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext

__all__ = ["LocalMinimaMIS"]

_ALIVE = 0
_IN = 1


class LocalMinimaMIS(NodeAlgorithm):
    """Node program for the deterministic local-minima MIS.

    Halt output is ``True`` (in the MIS) or ``False``.
    """

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(True)
            return
        ctx.broadcast((_ALIVE, ctx.node_id))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index % 2 == 1:
            self._decide(ctx, inbox)
        else:
            self._alive_round(ctx, inbox)

    def _alive_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if any(msg[0] == _IN for msg in inbox.values()):
            ctx.halt(False)
            return
        ctx.broadcast((_ALIVE, ctx.node_id))

    def _decide(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        alive_ids = [msg[1] for msg in inbox.values() if msg[0] == _ALIVE]
        if all(ctx.node_id < other for other in alive_ids):
            ctx.broadcast((_IN,))
            ctx.halt(True)
