"""Ghaffari's desire-level MIS [SODA 2016] in CONGEST.

Every node keeps a *desire level* ``p_v`` (a dyadic rational ``2^{-k}``,
transmitted as the exponent ``k``, so messages stay ``O(log n)`` bits).
Each two-round phase:

* **mark round** — active node marks itself with probability ``p_v`` and
  broadcasts ``(marked, k)``; if it learned a neighbour joined, it halts out;
* **decide round** — a marked node with no marked neighbour joins and halts;
  everyone else updates ``p_v``: halve it when the *effective degree*
  ``d_v = Σ_{active u ∈ N(v)} p_u`` is at least 2, otherwise double it
  (capped at 1/2).

The local complexity is ``O(log Δ) + poly(log log n)`` w.h.p. once combined
with shattering [Ghaffari 2016; Ghaffari 2019 for CONGEST]; we run the
desire-level dynamics to completion, which empirically finishes in
``O(log Δ + log n)``-ish rounds and is the fast black box Theorem 2 plugs
into the sparsified ``O(log n)``-degree subgraph.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext

__all__ = ["GhaffariMIS"]

_MARK = 0
_IN = 1

_MAX_EXPONENT = 60  # p_v never drops below 2^-60; far beyond any useful depth.


class GhaffariMIS(NodeAlgorithm):
    """Node program for the desire-level MIS.

    Halt output is ``True`` (in the MIS) or ``False``.
    """

    def __init__(self) -> None:
        self._exponent = 1          # p_v = 2^{-exponent}, start at 1/2.
        self._marked = False

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(True)
            return
        self._mark_and_broadcast(ctx)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index % 2 == 1:
            self._decide(ctx, inbox)
        else:
            self._mark_round(ctx, inbox)

    # ------------------------------------------------------------------ #

    def _mark_and_broadcast(self, ctx: NodeContext) -> None:
        p = 2.0 ** (-self._exponent)
        self._marked = bool(ctx.rng.random() < p)
        ctx.broadcast((_MARK, self._marked, self._exponent))

    def _mark_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if any(msg[0] == _IN for msg in inbox.values()):
            ctx.halt(False)
            return
        self._mark_and_broadcast(ctx)

    def _decide(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        marks = [msg for msg in inbox.values() if msg[0] == _MARK]
        neighbor_marked = any(m[1] for m in marks)
        if self._marked and not neighbor_marked:
            ctx.broadcast((_IN,))
            ctx.halt(True)
            return
        effective_degree = sum(2.0 ** (-m[2]) for m in marks)
        if effective_degree >= 2.0:
            self._exponent = min(self._exponent + 1, _MAX_EXPONENT)
        else:
            self._exponent = max(self._exponent - 1, 1)
