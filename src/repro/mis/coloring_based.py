"""MIS from a colouring: the classic colour-class sweep.

Given a proper colouring with colours ``0..C``, sweep one colour per
round: a node of colour ``c`` joins the MIS in round ``c+1`` unless a
neighbour already joined.  Correctness is immediate (same-colour nodes
are non-adjacent; earlier joiners block later ones) and the sweep costs
``C + 1`` rounds — so with a ``(Δ+1)``-colouring this is the classic
``MIS in O(Δ + coloring)`` reduction (cf. §8's colouring discussion and
[10, 11] in the paper's references).

Combined with :func:`repro.coloring.random_coloring` it gives a fourth
interchangeable MIS black box with a different round profile:
``O(log n)`` colouring + ``Δ + 1`` sweep — better than Luby when
``Δ << log n``-many conflicts dominate, worse on high-degree graphs.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.obs.spans import span
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["ColorSweepMIS", "coloring_mis"]

_IN = 1


class ColorSweepMIS(NodeAlgorithm):
    """Sweep colour classes in increasing colour order.

    The colouring is supplied to the constructor as a mapping; each node
    instance only ever reads its own entry (the orchestrator convenience
    of handing one dict to every factory call does not leak information
    between nodes).
    """

    def __init__(self, colors: Mapping[int, int]) -> None:
        self._colors = colors
        self._my_color: Optional[int] = None
        self._blocked = False

    def on_start(self, ctx: NodeContext) -> None:
        self._my_color = int(self._colors[ctx.node_id])
        if ctx.degree == 0:
            ctx.halt(True)
            return
        if self._my_color == 0:
            # Colour 0 joins unconditionally in round 1.
            ctx.broadcast((_IN,))
            ctx.halt(True)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if any(msg[0] == _IN for msg in inbox.values()):
            self._blocked = True
        if ctx.round_index == self._my_color:
            if self._blocked:
                ctx.halt(False)
            else:
                ctx.broadcast((_IN,))
                ctx.halt(True)


def coloring_mis(
    graph: WeightedGraph,
    *,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """MIS via random-trial colouring + colour-class sweep.

    Rounds: ``O(log n)`` (colouring, w.h.p.) plus ``max colour + 1``
    (sweep, at most ``Δ + 1``).
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "ColorSweepMIS"})
    from repro.coloring.random_trial import random_coloring

    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    seed_color, seed_sweep = ss.spawn(2)

    network = Network.of(graph, n_bound)
    with span("mis[ColorSweepMIS]") as sp:
        coloring = random_coloring(graph, seed=seed_color, policy=policy,
                                   n_bound=network.n_bound, max_rounds=max_rounds)
        sp.add(coloring.metrics, name="random-coloring")
        sweep = run(
            network,
            lambda: ColorSweepMIS(coloring.colors),
            policy=policy,
            seed=seed_sweep,
            max_rounds=max_rounds or 100_000,
        )
        sp.add(sweep.metrics, name="color-sweep")
    mis = frozenset(v for v, out in sweep.outputs.items() if out)
    return AlgorithmResult(
        independent_set=mis,
        metrics=sp.metrics(),
        metadata={
            "algorithm": "ColorSweepMIS",
            "n_bound": network.n_bound,
            "num_colors": coloring.num_colors,
            "coloring_rounds": coloring.rounds,
            "sweep_rounds": sweep.metrics.rounds,
        },
    )
