"""Luby-style randomized MIS in CONGEST (random-priority variant).

Each phase takes two rounds:

* **value round** — every still-active node draws a fresh random value and
  broadcasts it (if it learned a neighbour joined the MIS, it instead halts
  as a non-member);
* **decide round** — a node whose ``(value, id)`` pair is a strict local
  maximum among the values it received joins the MIS, announces ``IN``, and
  halts.

Dead neighbours simply stop sending, so nodes never track active sets.
This variant finishes in ``O(log n)`` rounds w.h.p. [Métivier et al.;
Luby 1986] and every message is ``O(log n)`` bits, so it runs unchanged in
CONGEST — it is the default ``MIS(n, Δ)`` black box for Theorems 1 and 8.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext

__all__ = ["LubyMIS"]

_VAL = 0
_IN = 1


class LubyMIS(NodeAlgorithm):
    """Node program for the random-priority MIS.

    Halt output is ``True`` (in the MIS) or ``False``.
    """

    def __init__(self) -> None:
        self._my_value: int = 0

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(True)
            return
        self._broadcast_value(ctx)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index % 2 == 1:
            self._decide(ctx, inbox)
        else:
            self._value_round(ctx, inbox)

    # ------------------------------------------------------------------ #

    def _broadcast_value(self, ctx: NodeContext) -> None:
        # Values in [0, n_bound^3): collisions are rare and ties are broken
        # by id anyway, so correctness never depends on distinctness.
        self._my_value = int(ctx.rng.integers(0, max(2, ctx.n_bound) ** 3))
        ctx.broadcast((_VAL, self._my_value))

    def _value_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if any(msg[0] == _IN for msg in inbox.values()):
            ctx.halt(False)
            return
        self._broadcast_value(ctx)

    def _decide(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        mine = (self._my_value, ctx.node_id)
        values = [
            (msg[1], sender) for sender, msg in inbox.items() if msg[0] == _VAL
        ]
        if all(mine > other for other in values):
            ctx.broadcast((_IN,))
            ctx.halt(True)
        # Losers stay silent; survivors re-draw next round.
