"""Centralized (sequential) MIS routines.

Used as ground truth in tests, for gap-filling in the lower-bound reduction
(§7 fills gaps "sequentially"), and as the zero-round reference point when
comparing distributed costs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["greedy_mis", "random_order_mis"]


def greedy_mis(graph: WeightedGraph, order: Optional[Sequence[int]] = None) -> FrozenSet[int]:
    """Greedy MIS scanning nodes in ``order`` (default: ascending id).

    Every prefix decision is final: a node joins iff no earlier neighbour
    joined.  The result is always a maximal independent set.
    """
    if order is None:
        order = graph.nodes
    chosen: set = set()
    blocked: set = set()
    for v in order:
        if v in blocked or v in chosen:
            continue
        chosen.add(v)
        blocked.update(graph.neighbors(v))
    return frozenset(chosen)


def random_order_mis(graph: WeightedGraph,
                     seed: Union[int, np.random.Generator, None] = None) -> FrozenSet[int]:
    """Greedy MIS over a uniformly random node permutation."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    order = list(graph.nodes)
    rng.shuffle(order)
    return greedy_mis(graph, order)
