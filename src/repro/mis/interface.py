"""Driver functions and the MIS black-box registry.

The paper treats MIS as a black box (``MIS(n, Δ)`` rounds).  Everything in
:mod:`repro.core` that needs an MIS takes a black box with the uniform
signature ``blackbox(graph, *, seed=None, policy=None, n_bound=None,
max_rounds=None) -> AlgorithmResult`` so implementations can be swapped —
that swap is itself an experiment (E10d).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional, Type, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.coloring_based import coloring_mis
from repro.mis.deterministic import LocalMinimaMIS
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.luby import LubyMIS
from repro.obs.spans import leaf_metrics
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = [
    "MISBlackBox",
    "run_mis",
    "luby_mis",
    "ghaffari_mis",
    "local_minima_mis",
    "coloring_mis",
    "MIS_BLACKBOXES",
    "get_mis_blackbox",
]

MISBlackBox = Callable[..., AlgorithmResult]

SeedLike = Union[int, None, np.random.SeedSequence]


def _default_round_limit(n: int, deterministic: bool) -> int:
    if deterministic:
        return 4 * n + 64
    return 400 * (int(math.log2(max(2, n))) + 1) + 1000


def run_mis(
    graph: WeightedGraph,
    algorithm_cls: Type[NodeAlgorithm],
    *,
    seed: SeedLike = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
    deterministic: bool = False,
) -> AlgorithmResult:
    """Run a node-program MIS to completion and collect its output set."""
    if graph.n == 0:
        from repro.simulator.metrics import RunMetrics

        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": algorithm_cls.__name__})
    network = Network.of(graph, n_bound)
    limit = max_rounds if max_rounds is not None else _default_round_limit(graph.n, deterministic)
    start = time.perf_counter()
    result = run(
        network,
        algorithm_cls,
        policy=policy,
        seed=seed,
        max_rounds=limit,
    )
    mis = frozenset(v for v, out in result.outputs.items() if out)
    return AlgorithmResult(
        independent_set=mis,
        metrics=leaf_metrics(result.metrics, f"mis[{algorithm_cls.__name__}]",
                             wall_seconds=time.perf_counter() - start),
        metadata={"algorithm": algorithm_cls.__name__, "n_bound": result.n_bound},
    )


def luby_mis(graph: WeightedGraph, **kwargs) -> AlgorithmResult:
    """Randomized ``O(log n)``-round MIS (random-priority Luby variant)."""
    return run_mis(graph, LubyMIS, **kwargs)


def ghaffari_mis(graph: WeightedGraph, **kwargs) -> AlgorithmResult:
    """Ghaffari's desire-level MIS — the fast black box for Theorem 2."""
    return run_mis(graph, GhaffariMIS, **kwargs)


def local_minima_mis(graph: WeightedGraph, **kwargs) -> AlgorithmResult:
    """Deterministic iterated-local-minima MIS — the black box for Theorem 1."""
    kwargs.setdefault("deterministic", True)
    return run_mis(graph, LocalMinimaMIS, **kwargs)


MIS_BLACKBOXES: Dict[str, MISBlackBox] = {
    "luby": luby_mis,
    "ghaffari": ghaffari_mis,
    "deterministic": local_minima_mis,
    "coloring": coloring_mis,
}


def get_mis_blackbox(which: Union[str, MISBlackBox]) -> MISBlackBox:
    """Resolve a black box by registry name, or pass a callable through."""
    if callable(which):
        return which
    try:
        return MIS_BLACKBOXES[which]
    except KeyError:
        raise KeyError(
            f"unknown MIS black box {which!r}; known: {sorted(MIS_BLACKBOXES)}"
        ) from None
