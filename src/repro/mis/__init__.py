"""MIS black boxes: the ``MIS(n, Δ)`` primitives the paper composes with."""

from repro.mis.coloring_based import ColorSweepMIS, coloring_mis
from repro.mis.deterministic import LocalMinimaMIS
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.interface import (
    MIS_BLACKBOXES,
    MISBlackBox,
    get_mis_blackbox,
    ghaffari_mis,
    local_minima_mis,
    luby_mis,
    run_mis,
)
from repro.mis.luby import LubyMIS
from repro.mis.sequential import greedy_mis, random_order_mis

__all__ = [
    "LubyMIS",
    "GhaffariMIS",
    "LocalMinimaMIS",
    "ColorSweepMIS",
    "coloring_mis",
    "MISBlackBox",
    "MIS_BLACKBOXES",
    "get_mis_blackbox",
    "run_mis",
    "luby_mis",
    "ghaffari_mis",
    "local_minima_mis",
    "greedy_mis",
    "random_order_mis",
]
