"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type at the boundary.  Simulator protocol violations get their own
subtree because they usually indicate an algorithm bug rather than bad input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Malformed graph input (self loops, asymmetric adjacency, bad ids)."""


class GraphFormatError(GraphError):
    """A serialized graph could not be parsed."""


class SimulationError(ReproError):
    """Base class for errors raised while running a distributed simulation."""


class ProtocolError(SimulationError):
    """A node algorithm violated the message-passing protocol.

    Examples: sending to a non-neighbour, sending twice to the same
    neighbour in one round, or sending after halting.
    """


class BandwidthExceeded(SimulationError):
    """A message exceeded the CONGEST per-edge bit budget in strict mode."""

    def __init__(self, sender: int, receiver: int, bits: int, budget: int, round_index: int):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        self.round_index = round_index
        super().__init__(
            f"round {round_index}: message {sender}->{receiver} is {bits} bits, "
            f"budget is {budget} bits"
        )


class RoundLimitExceeded(SimulationError):
    """The simulation did not terminate within the configured round limit."""

    def __init__(self, limit: int, unhalted: int):
        self.limit = limit
        self.unhalted = unhalted
        super().__init__(
            f"simulation exceeded {limit} rounds with {unhalted} node(s) still running"
        )


class VerificationError(ReproError):
    """A claimed property of an output (independence, maximality, bound) failed."""


class SolverLimitError(ReproError):
    """The exact solver was asked to handle an instance beyond its size limit."""
