"""Fleet kernels: whole-graph numpy executions of node protocols.

A *fleet kernel* runs every node of one protocol family simultaneously as
array operations over the CSR structure, producing a
:class:`~repro.simulator.runner.RunResult` byte-identical to the per-node
scheduler: same outputs, same metrics, same per-node random draws, same
floating-point summation order.  Kernels are registered per concrete
:class:`~repro.simulator.algorithm.NodeAlgorithm` subclass and looked up
by the columnar backend (:mod:`repro.simulator.columnar`); a kernel that
cannot guarantee equivalence for a particular input raises
:class:`FleetFallback` and the backend reruns on the per-node reference.
"""

from repro.fleet.base import (FleetFallback, FleetRun, bit_lengths,
                              int_field_bits, kernel_for,
                              register_fleet_kernel)
from repro.fleet import kernels as _kernels  # noqa: F401  (registration)

__all__ = [
    "FleetFallback",
    "FleetRun",
    "bit_lengths",
    "int_field_bits",
    "kernel_for",
    "register_fleet_kernel",
]
