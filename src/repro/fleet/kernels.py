"""Fleet kernels for the hot protocol families.

One kernel per registered node-program class, each reproducing the
per-node scheduler byte for byte (outputs, metrics, RNG draw sequences,
float summation order).  The semantics each kernel must honour:

* Round 0 runs ``on_start`` on every node; later rounds run ``on_round``
  on the still-active set, in ascending slot order.
* Halts take effect at *collect* time: a message addressed to a node
  that halted in the same round is charged, then dropped.
* The round limit trips before ``metrics.rounds`` advances, with the
  pre-round active count.
* Payload sizes follow :func:`repro.simulator.message.payload_bits`:
  a tuple costs ``8 + Σ (2 + field)``, an int field ``1 + max(1, bl)``,
  a float 64, a bool 1.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.good_nodes import GoodNodesProtocol
from repro.core.sparsify import SamplingProtocol
from repro.coloring.random_trial import RandomTrialColoring
from repro.fleet.base import (MAX_DENSE_CELLS, FleetFallback, FleetRun,
                              bit_lengths, register_fleet_kernel)
from repro.mis.deterministic import LocalMinimaMIS
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.luby import LubyMIS
from repro.simulator.runner import RunResult

__all__ = []  # kernels are reached through the registry, not imported


def _pair_bits(values: np.ndarray) -> np.ndarray:
    """``payload_bits`` of ``(small_tag, v)`` int pairs: 15 + max(1, bl(v))."""
    return 15 + np.maximum(1, bit_lengths(values))


def _deg_weight_bits(degrees: np.ndarray) -> np.ndarray:
    """``payload_bits`` of ``(degree, weight)``: 77 + max(1, bl(deg))."""
    return 77 + np.maximum(1, bit_lengths(degrees))


_IN_BITS = 12  # payload_bits of the one-field announcement tuple (1,)


# ---------------------------------------------------------------------- #
# Theorem 8: good-nodes selection
# ---------------------------------------------------------------------- #

@register_fleet_kernel(GoodNodesProtocol)
def good_nodes_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    deg, W = fr.degrees, fr.weights
    bits0 = _deg_weight_bits(deg)
    fr.require_budget(int(bits0.max()))

    # Round 0: everyone broadcasts (degree, weight); nobody halts.
    fr.charge_broadcast(np.arange(n), bits0)

    # Round 1: inclusive max degree, inclusive weight sum, halt(good).
    fr.begin_round(n)
    counts, starts = fr.full_rows()
    delta = deg.copy()
    fr.row_reduce(counts, starts, deg[fr.indices], np.maximum, delta)
    s = np.zeros(n, dtype=np.float64)
    fr.seq_sum(counts, starts, W[fr.indices], s)
    s = s + W  # own weight folded last, as the node program does
    good = W >= s / (2.0 * (delta + 1))

    outputs = {v: bool(g) for v, g in zip(fr.ids, good)}
    return fr.result(outputs)


# ---------------------------------------------------------------------- #
# Theorem 9: sampling / sparsification
# ---------------------------------------------------------------------- #

@register_fleet_kernel(SamplingProtocol)
def sampling_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    import math

    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    lamb = probe._lamb
    uniform_only = probe._uniform_only
    deg, W = fr.degrees, fr.weights
    iso = deg == 0
    noniso = np.flatnonzero(~iso)
    out_joined = np.zeros(n, dtype=bool)
    out_p = np.zeros(n, dtype=np.float64)
    out_joined[iso] = True
    out_p[iso] = 1.0
    if len(noniso):
        bits0 = _deg_weight_bits(deg[noniso])
        fr.require_budget(max(int(bits0.max()), 64))
        # Round 0: isolated nodes halt((True, 1.0)); the rest broadcast.
        fr.halted |= iso
        fr.charge_broadcast(noniso, bits0)

        # Round 1: inclusive max degree + weighted degree, broadcast wdeg.
        fr.begin_round(len(noniso))
        counts, starts = fr.full_rows()
        delta = deg.copy()
        fr.row_reduce(counts, starts, deg[fr.indices], np.maximum, delta)
        wdeg = np.zeros(n, dtype=np.float64)
        fr.seq_sum(counts, starts, W[fr.indices], wdeg)
        fr.charge_broadcast(noniso, 64)

        # Round 2: wmax over the inclusive neighbourhood, sample, halt.
        fr.begin_round(len(noniso))
        wmax = wdeg.copy()
        fr.row_reduce(counts, starts, wdeg[fr.indices], np.maximum, wmax)
        c = lamb * math.log(max(2, fr.n_bound))
        dt = np.ones(n, dtype=np.float64)  # non-isolated ⇒ δ ≥ own deg ≥ 1
        np.divide(1.0, delta, out=dt, where=delta > 0)
        if uniform_only:
            wt = np.zeros(n, dtype=np.float64)
        else:
            wt = np.zeros(n, dtype=np.float64)
            np.divide(W, wmax, out=wt, where=wmax > 0.0)
        p = np.minimum(c * (dt + wt), 1.0)
        for s_ in noniso:
            s_ = int(s_)
            out_joined[s_] = fr.gen(s_).random() < p[s_]
            out_p[s_] = p[s_]
        fr.halted[noniso] = True

    outputs = {
        v: (bool(out_joined[s]), float(out_p[s]))
        for s, v in enumerate(fr.ids)
    }
    return fr.result(outputs)


# ---------------------------------------------------------------------- #
# Luby-style random-priority MIS
# ---------------------------------------------------------------------- #

@register_fleet_kernel(LubyMIS)
def luby_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    deg = fr.degrees
    hi = max(2, fr.n_bound) ** 3
    fr.require_budget(15 + max(1, (hi - 1).bit_length()))
    slots = np.arange(n, dtype=np.int64)
    in_mis = deg == 0  # isolated nodes join immediately
    active = deg > 0
    fr.halted |= ~active
    vals = np.zeros(n, dtype=np.int64)

    def draw_and_charge() -> None:
        act = np.flatnonzero(active)
        for s in act:
            s = int(s)
            vals[s] = int(fr.gen(s).integers(0, hi))
        fr.charge_broadcast(act, _pair_bits(vals[act]))

    draw_and_charge()  # round 0
    winners = np.zeros(n, dtype=bool)
    while active.any():
        r = fr.begin_round(int(active.sum()))
        if r % 2 == 1:
            # Decide: win iff (value, id) beats every active neighbour's.
            senders, counts, starts = fr.compact(active)
            vmax = np.full(n, -1, dtype=np.int64)
            fr.row_reduce(counts, starts, vals[senders], np.maximum, vmax)
            tie = vals[senders] == np.repeat(vmax, counts)
            smax = np.full(n, -1, dtype=np.int64)
            fr.row_reduce(counts, starts, np.where(tie, senders, -1),
                          np.maximum, smax)
            win = active & ((vals > vmax) | ((vals == vmax) & (slots > smax)))
            in_mis |= win
            winners = win
            fr.halted |= win
            active &= ~win
            fr.charge_broadcast(np.flatnonzero(win), _IN_BITS)
        else:
            # Value round: neighbours of last round's winners halt out,
            # survivors redraw and broadcast.
            losers = active & (fr.row_counts(winners) > 0)
            fr.halted |= losers
            active &= ~losers
            draw_and_charge()

    outputs = {v: bool(in_mis[s]) for s, v in enumerate(fr.ids)}
    return fr.result(outputs)


# ---------------------------------------------------------------------- #
# Ghaffari's desire-level MIS
# ---------------------------------------------------------------------- #

@register_fleet_kernel(GhaffariMIS)
def ghaffari_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    deg = fr.degrees
    fr.require_budget(24)  # (_MARK, bool, exp ≤ 60) is at most 24 bits
    in_mis = deg == 0
    active = deg > 0
    fr.halted |= ~active
    exps = np.ones(n, dtype=np.int64)
    marked = np.zeros(n, dtype=bool)

    def mark_and_charge() -> None:
        act = np.flatnonzero(active)
        for s in act:
            s = int(s)
            marked[s] = bool(fr.gen(s).random() < 2.0 ** (-int(exps[s])))
        fr.charge_broadcast(act, 18 + np.maximum(1, bit_lengths(exps[act])))

    mark_and_charge()  # round 0
    winners = np.zeros(n, dtype=bool)
    while active.any():
        r = fr.begin_round(int(active.sum()))
        if r % 2 == 1:
            # Decide: marked with no marked active neighbour joins;
            # everyone else updates the desire level from the effective
            # degree over *pre-update* exponents (winners included).
            nbr_marked = fr.row_counts(active & marked) > 0
            win = active & marked & ~nbr_marked
            senders, counts, starts = fr.compact(active)
            eff = np.zeros(n, dtype=np.float64)
            fr.seq_sum(counts, starts, np.ldexp(1.0, -exps[senders]), eff)
            upd = active & ~win
            exps[upd] = np.where(eff[upd] >= 2.0,
                                 np.minimum(exps[upd] + 1, 60),
                                 np.maximum(exps[upd] - 1, 1))
            in_mis |= win
            winners = win
            fr.halted |= win
            active &= ~win
            fr.charge_broadcast(np.flatnonzero(win), _IN_BITS)
        else:
            losers = active & (fr.row_counts(winners) > 0)
            fr.halted |= losers
            active &= ~losers
            mark_and_charge()

    outputs = {v: bool(in_mis[s]) for s, v in enumerate(fr.ids)}
    return fr.result(outputs)


# ---------------------------------------------------------------------- #
# Deterministic local-minima MIS
# ---------------------------------------------------------------------- #

@register_fleet_kernel(LocalMinimaMIS)
def local_minima_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    deg = fr.degrees
    id_bits = _pair_bits(fr.ids_np)
    if n:
        fr.require_budget(int(id_bits.max()))
    slots = np.arange(n, dtype=np.int64)
    in_mis = deg == 0
    active = deg > 0
    fr.halted |= ~active

    fr.charge_broadcast(np.flatnonzero(active), id_bits[active])  # round 0
    winners = np.zeros(n, dtype=bool)
    while active.any():
        r = fr.begin_round(int(active.sum()))
        if r % 2 == 1:
            # Decide: ids ascend with slots, so "id smaller than every
            # active neighbour's" is a slot comparison.
            senders, counts, starts = fr.compact(active)
            smin = np.full(n, n, dtype=np.int64)
            fr.row_reduce(counts, starts, senders, np.minimum, smin)
            win = active & (slots < smin)
            in_mis |= win
            winners = win
            fr.halted |= win
            active &= ~win
            fr.charge_broadcast(np.flatnonzero(win), _IN_BITS)
        else:
            losers = active & (fr.row_counts(winners) > 0)
            fr.halted |= losers
            active &= ~losers
            fr.charge_broadcast(np.flatnonzero(active), id_bits[active])

    outputs = {v: bool(in_mis[s]) for s, v in enumerate(fr.ids)}
    return fr.result(outputs)


# ---------------------------------------------------------------------- #
# Random-trial (deg+1)-list colouring
# ---------------------------------------------------------------------- #

@register_fleet_kernel(RandomTrialColoring)
def random_trial_kernel(probe, network, *, policy, seed, max_rounds) -> RunResult:
    fr = FleetRun(network, policy=policy, seed=seed, max_rounds=max_rounds)
    n = fr.n
    if n == 0:
        return fr.result({})
    deg = fr.degrees
    width = int(deg.max()) + 1
    if n * width > MAX_DENSE_CELLS:
        raise FleetFallback(
            f"dense forbidden-colour state {n}x{width} exceeds the gate",
            reason="dense-state",
        )
    fr.require_budget(15 + max(1, (width - 1).bit_length()))
    colors = np.zeros(n, dtype=np.int64)
    active = deg > 0
    fr.halted |= ~active  # isolated nodes halt(0) in round 0
    forbidden = np.zeros((n, width), dtype=bool)
    col_range = np.arange(width, dtype=np.int64)
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), deg)
    proposals = np.zeros(n, dtype=np.int64)

    def propose_and_charge() -> None:
        act = np.flatnonzero(active)
        if len(act) == 0:
            return
        allowed = ~forbidden[act] & (col_range <= deg[act, None])
        sizes = allowed.sum(axis=1)
        picks = np.empty(len(act), dtype=np.int64)
        for i, s in enumerate(act):
            # Same generator call as palette[rng.integers(0, len(palette))].
            picks[i] = int(fr.gen(int(s)).integers(0, int(sizes[i])))
        cum = np.cumsum(allowed, axis=1)
        proposals[act] = np.argmax(cum == (picks + 1)[:, None], axis=1)
        fr.charge_broadcast(act, _pair_bits(proposals[act]))

    propose_and_charge()  # round 0
    finalized = np.zeros(n, dtype=bool)
    while active.any():
        r = fr.begin_round(int(active.sum()))
        if r % 2 == 1:
            # Decide: no active neighbour proposed the same colour.
            senders, counts, starts = fr.compact(active)
            eq = proposals[senders] == np.repeat(proposals, counts)
            prefix = np.zeros(len(eq) + 1, dtype=np.int64)
            np.cumsum(eq, out=prefix[1:])
            conflict = (prefix[starts + counts] - prefix[starts]) > 0
            win = active & ~conflict
            colors[win] = proposals[win]
            finalized = win
            # Adjacent nodes can finalise (different colours) in the same
            # round: fold the halts in before charging so their mutual
            # announcements count as drops, like the scheduler's collect.
            fr.halted |= win
            active &= ~win
            fr.charge_broadcast(np.flatnonzero(win), _pair_bits(colors[win]))
        else:
            # Propose: absorb last round's finalised colours, redraw.
            sel = finalized[fr.indices] & active[row_of_entry]
            if sel.any():
                forbidden[row_of_entry[sel], colors[fr.indices[sel]]] = True
            propose_and_charge()

    outputs = {v: int(colors[s]) for s, v in enumerate(fr.ids)}
    return fr.result(outputs)
