"""Shared machinery for fleet kernels.

The helpers here encode the per-node scheduler's observable semantics in
array form so every kernel reproduces them bit for bit:

* **Charging** — a broadcast by node ``v`` is one message per neighbour,
  all of the same size; ``max_message_bits`` only sees senders with
  ``deg > 0`` (an isolated broadcast leaves an empty outbox).  Messages
  to receivers that halted *by collect time of the same round* are
  charged, then counted as drops.
* **Summation order** — Python programs fold their inbox left-to-right in
  ascending sender-slot order (inboxes are filled in sorted sender-slot
  order).  :meth:`FleetRun.seq_sum` replays exactly that order of float
  adds per row, so sums match to the last ulp.  Order-insensitive
  reductions (max/min) go through ``ufunc.reduceat``.
* **Randomness** — each node owns an independent ``PCG64`` stream spawned
  from the master seed exactly as
  :func:`~repro.simulator.randomness.spawn_node_seeds` does; kernels make
  the *same generator calls in the same per-node order* as the node
  program, so draws are identical.

Integer bit lengths are vectorized with ``np.frexp`` (exact below 2⁵³,
with a Python fallback above) to reproduce
:func:`~repro.simulator.message.payload_bits` for the payload shapes the
kernels emit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.exceptions import RoundLimitExceeded
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.randomness import spawn_node_seeds
from repro.simulator.runner import RunResult

__all__ = [
    "FleetFallback",
    "FleetRun",
    "bit_lengths",
    "int_field_bits",
    "register_fleet_kernel",
    "kernel_for",
]

# Nodes × palette-width bool cells the colouring kernel may allocate
# before deferring to the per-node scheduler instead.
MAX_DENSE_CELLS = 200_000_000


class FleetFallback(Exception):
    """Raised by a kernel that cannot guarantee byte-identical semantics
    for this input (over-budget payload possible, dense state too large).
    The columnar backend catches it and reruns per-node.

    ``reason`` is a short machine-readable code (``"over-budget"``,
    ``"dense-state"``, ...) that telemetry counts fallbacks by — the
    human-readable detail stays in the exception message."""

    def __init__(self, detail: str = "", reason: str = "kernel") -> None:
        super().__init__(detail)
        self.reason = reason


_KERNELS: Dict[type, Callable[..., RunResult]] = {}


def register_fleet_kernel(cls: Type) -> Callable:
    """Class decorator target: register ``fn`` as the kernel for exact
    instances of ``cls`` (subclasses intentionally do not inherit — their
    overridden behaviour would silently be ignored)."""

    def deco(fn: Callable[..., RunResult]) -> Callable[..., RunResult]:
        _KERNELS[cls] = fn
        return fn

    return deco


def kernel_for(program: Any) -> Optional[Callable[..., RunResult]]:
    """The registered kernel for ``type(program)``, or ``None``."""
    return _KERNELS.get(type(program))


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """``int.bit_length()`` of each value (of ``abs(v)`` for negatives,
    matching Python ints)."""
    a = np.asarray(values, dtype=np.int64)
    if a.size == 0:
        return np.zeros(0, dtype=np.int64)
    mag = np.abs(a)
    # np.abs(int64 min) overflows negative; >= 2**53 floats round.
    if int(mag.min()) < 0 or int(mag.max()) >= 2 ** 53:
        return np.fromiter((abs(int(v)).bit_length() for v in a),
                           dtype=np.int64, count=a.size)
    exp = np.frexp(mag.astype(np.float64))[1]
    return exp.astype(np.int64)


def int_field_bits(values: np.ndarray) -> np.ndarray:
    """``payload_bits`` of a bare int field: ``1 + max(1, bit_length)``."""
    return 1 + np.maximum(1, bit_lengths(values))


class FleetRun:
    """Per-run state and accounting shared by every kernel."""

    def __init__(
        self,
        network: Network,
        *,
        policy: Optional[BandwidthPolicy],
        seed: Union[int, None, np.random.SeedSequence],
        max_rounds: int,
    ) -> None:
        graph = network.graph
        csr = graph.csr
        self.ids: List[int] = csr._id_list
        self.ids_np = csr.ids
        self.indptr = csr.indptr
        self.indices = csr.indices
        self.degrees = csr.degrees
        self.weights = csr.weights
        self.n = csr.n
        self.m = int(len(csr.indices))
        self.n_bound = network.n_bound
        self.max_rounds = max_rounds
        policy = policy or BandwidthPolicy.congest()
        self.budget = policy.budget_bits(self.n_bound)
        self.check_budget = self.budget >= 0
        self.metrics = RunMetrics()
        self.halted = np.zeros(self.n, dtype=bool)
        self.round_index = 0
        self._seed = seed
        self._nodes = graph.nodes
        self._seed_children: Optional[Dict[int, np.random.SeedSequence]] = None
        self._gens: List[Optional[np.random.Generator]] = [None] * self.n
        # Scratch for the (m+1)-long prefix sums row_counts/compact
        # rebuild every round.  Safe to reuse: slot 0 is never written
        # after this zero-fill, cumsum overwrites [1:] fully each call,
        # and both callers only return fancy-indexed *copies* of it.
        self._prefix_scratch = np.zeros(self.m + 1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # randomness
    # ------------------------------------------------------------------ #

    def gen(self, slot: int) -> np.random.Generator:
        """Node ``slot``'s private stream (identical construction to
        :attr:`NodeContext.rng`: built on first use).  The whole spawn is
        deferred until the first draw, so RNG-free kernels never pay for
        it."""
        g = self._gens[slot]
        if g is None:
            if self._seed_children is None:
                self._seed_children = spawn_node_seeds(self._seed, self._nodes)
            child = self._seed_children[self.ids[slot]]
            g = self._gens[slot] = np.random.Generator(np.random.PCG64(child))
        return g

    # ------------------------------------------------------------------ #
    # round / budget bookkeeping
    # ------------------------------------------------------------------ #

    def begin_round(self, active_count: int) -> int:
        """Advance to the next round exactly like the scheduler loop:
        the limit trips *before* ``metrics.rounds`` moves."""
        self.round_index += 1
        if self.round_index > self.max_rounds:
            raise RoundLimitExceeded(self.max_rounds, active_count)
        self.metrics.rounds = self.round_index
        return self.round_index

    def require_budget(self, max_bits: int) -> None:
        """Defer to per-node if any message *could* exceed the bandwidth
        budget — the reference path owns strict raises and audit-mode
        violation records."""
        if self.check_budget and max_bits > self.budget:
            raise FleetFallback(
                f"payload up to {max_bits} bits may exceed budget {self.budget}",
                reason="over-budget",
            )

    # ------------------------------------------------------------------ #
    # row-wise reductions over the CSR structure
    # ------------------------------------------------------------------ #

    def row_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per row: how many neighbour entries fall in ``mask``."""
        prefix = self._prefix_scratch
        np.cumsum(mask[self.indices], out=prefix[1:])
        return prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]

    def compact(self, sender_mask: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact the adjacency to entries whose *sender* (neighbour) is
        in ``sender_mask``: ``(senders, counts, starts)`` where row ``r``'s
        surviving senders are ``senders[starts[r]:starts[r]+counts[r]]``,
        in ascending slot order (CSR rows are sorted — the same order the
        per-node inbox dict is filled in)."""
        entry = sender_mask[self.indices]
        senders = self.indices[entry]
        prefix = self._prefix_scratch
        np.cumsum(entry, out=prefix[1:])
        counts = prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]
        starts = prefix[self.indptr[:-1]]
        return senders, counts, starts

    def full_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(counts, starts)`` for the uncompacted adjacency."""
        return self.degrees, self.indptr[:-1]

    def seq_sum(self, counts: np.ndarray, starts: np.ndarray,
                values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Left-to-right per-row float sum, accumulated into ``out``.

        Replays Python's ``sum(inbox.values())`` exactly: the k-th
        neighbour value is added k-th, so rounding matches the per-node
        fold bit for bit.  Work is O(m) gathered adds in at most
        ``max(counts)`` numpy calls (rows sorted by length, longest
        first, so pass ``k`` touches only rows still alive)."""
        if values.size == 0:
            return out
        kmax = int(counts.max())
        if kmax == 0:
            return out
        order = np.argsort(-counts, kind="stable")
        below = np.cumsum(np.bincount(counts, minlength=kmax + 1))
        starts_ord = starts[order]
        nrows = len(counts)
        for k in range(kmax):
            t = nrows - int(below[k])
            if t <= 0:
                break
            rows = order[:t]
            out[rows] += values[starts_ord[:t] + k]
        return out

    def row_reduce(self, counts: np.ndarray, starts: np.ndarray,
                   values: np.ndarray, ufunc: np.ufunc,
                   out: np.ndarray) -> np.ndarray:
        """Order-insensitive per-row reduction combined into ``out``.

        Non-empty rows form contiguous segments of the compacted value
        array, so one ``reduceat`` over their start offsets covers them
        all; empty rows keep their ``out`` initial value."""
        nz = counts > 0
        if not nz.any():
            return out
        red = ufunc.reduceat(values, starts[nz])
        out[nz] = ufunc(out[nz], red)
        return out

    # ------------------------------------------------------------------ #
    # traffic accounting
    # ------------------------------------------------------------------ #

    def charge_broadcast(self, senders: np.ndarray,
                         bits: Union[int, np.ndarray]) -> None:
        """Charge one broadcast per sender slot (``deg`` messages of
        ``bits`` each), then count copies to already-halted receivers as
        drops.  Call *after* folding this round's halts into
        :attr:`halted` — the scheduler collects once every node of the
        round has executed."""
        if len(senders) == 0:
            return
        deg = self.degrees[senders]
        total_msgs = int(deg.sum())
        if total_msgs == 0:
            return
        m = self.metrics
        m.messages += total_msgs
        if isinstance(bits, np.ndarray):
            m.total_bits += int((deg * bits).sum())
            nz = bits[deg > 0]
            maxb = int(nz.max())
        else:
            m.total_bits += total_msgs * int(bits)
            maxb = int(bits)
        if maxb > m.max_message_bits:
            m.max_message_bits = maxb
        if self.halted.any():
            hn = self.row_counts(self.halted)[senders]
            dm = int(hn.sum())
            if dm:
                m.dropped_messages += dm
                m.dropped_bits += int((hn * bits).sum())

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #

    def result(self, outputs: Dict[int, Any]) -> RunResult:
        return RunResult(outputs=outputs, metrics=self.metrics,
                         n_bound=self.n_bound)
