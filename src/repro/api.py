"""The stable public surface of the library: one call, one contract.

Every way of running a solver — a Python call, a CLI invocation, an HTTP
request against ``repro serve`` — goes through the same two versioned
dataclasses defined here:

* :class:`SolveRequest` — what to solve: a weighted graph, a registry
  algorithm name, a seed, and algorithm parameters.
* :class:`SolveReport` — what came back: the chosen independent set, its
  weight, the CONGEST cost accounting, and the guarantee metadata needed
  to re-certify the result.

Requests speak ``schema "v2"``: the graph travels as one tagged union —
``{"inline": <graph doc>}``, ``{"ref": "<fingerprint>"}``, or
``{"delta": {"parent": "<fingerprint>", "ops": [...]}}`` — instead of
the v1 era's mutually exclusive top-level ``graph``/``graph_ref``
shapes.  v1-shaped documents are still accepted through a compatibility
shim (a :class:`DeprecationWarning` here, ``deprecated: true`` in the
served envelope) and produce *byte-identical request keys*, so existing
cache entries keep hitting and v1/v2 twins coalesce together.

Reports carry ``schema "v1"`` — the canonical report document is
deliberately **unchanged** by the v2 request redesign.  Report
serialization is *canonical* (sorted keys, compact separators,
wall-clock stripped), which is what makes fixed-seed responses
byte-identical across the in-process and HTTP paths, across execution
backends, and across request schema versions — properties the service
test-suite pins.

Quickstart::

    from repro import gnp, uniform_weights, solve

    graph = uniform_weights(gnp(200, 0.05, seed=1), 1, 100, seed=2)
    report = solve(graph, "thm2", seed=7, eps=0.5)
    print(report.weight, report.rounds, len(report.independent_set))
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import GraphFormatError, ReproError
from repro.graphs.delta import DeltaConflictError, GraphDelta, apply_delta_info
from repro.graphs.io import from_doc as _graph_from_inline_doc
from repro.graphs.io import to_doc as _graph_to_inline_doc
from repro.graphs.specs import graph_from_spec, weights_from_spec
from repro.graphs.store import GraphRef, GraphStore
from repro.graphs.weighted_graph import WeightedGraph
from repro.registry import algorithm_registry

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "SCHEMA_V1",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "DeltaForm",
    "SchemaError",
    "SolveError",
    "SolveRequest",
    "SolveReport",
    "solve",
    "sweep",
    "describe_algorithms",
    "graph_to_doc",
    "graph_from_doc",
    "request_key_from_doc",
    "delta_route_key_from_doc",
    "algorithm_registry",
]

# The request/envelope schema this build speaks natively, and the legacy
# one the compatibility shim still accepts.
SCHEMA_V1 = "v1"
SCHEMA_VERSION = "v2"
SUPPORTED_SCHEMAS = (SCHEMA_V1, SCHEMA_VERSION)
# The canonical report document is versioned independently of the
# request schema and did NOT change in v2: fixed-seed reports stay
# byte-identical across the redesign (cache entries, goldens, and the
# backend-equivalence suite all pin these bytes).
REPORT_SCHEMA_VERSION = "v1"

_V1_DEPRECATION = (
    "schema-v1 solve requests (top-level graph/graph_ref shapes) are "
    "deprecated; send schema v2 with the tagged graph union "
    '({"inline": ...} | {"ref": ...} | {"delta": ...})'
)


class SchemaError(ReproError, ValueError):
    """A request/report document does not match the supported schema."""


class SolveError(ReproError):
    """An algorithm run submitted through :func:`solve` failed.

    Carries the failed :class:`SolveReport` as ``report`` so callers can
    still inspect the captured error and cost accounting.
    """

    def __init__(self, message: str, report: "SolveReport") -> None:
        super().__init__(message)
        self.report = report


# --------------------------------------------------------------------- #
# request-side graph codec
# --------------------------------------------------------------------- #

def graph_to_doc(graph, *, schema: str = SCHEMA_VERSION) -> Dict[str, Any]:
    """The wire encoding of a graph (see :mod:`repro.graphs.io`).

    Under schema v2 (the default) the encoding is the tagged union: a
    :class:`~repro.graphs.store.GraphRef` becomes ``{"ref":
    "<fingerprint>"}`` and a materialized graph ``{"inline": <doc>}``.
    Pass ``schema="v1"`` for the legacy shapes (``{"graph_ref": ...}`` /
    bare inline doc) — used by the compatibility shim's round-trip.
    """
    if schema == SCHEMA_V1:
        if isinstance(graph, GraphRef):
            return {"graph_ref": graph.ref}
        return _graph_to_inline_doc(graph)
    if isinstance(graph, GraphRef):
        return {"ref": graph.ref}
    return {"inline": _graph_to_inline_doc(graph)}


def graph_from_doc(doc: Any, *, store: Optional[GraphStore] = None):
    """Decode a graph document — either schema's vocabulary.

    The schema-v2 tagged union is accepted (``{"inline": <doc>}``,
    ``{"ref": "<fp>"}``, ``{"delta": {"parent", "ops"}}`` — a delta form
    is materialized to the child graph), as are the legacy v1 shapes:

    * inline — ``{"nodes": [[id, weight], ...], "edges": [[u, v], ...]}``
      (the :func:`repro.graphs.io.to_doc` format);
    * by spec — ``{"spec": "gnp:100,0.05", "weights": "uniform:1,20",
      "seed": 7}``, materialized server-side through the generator zoo
      (``weights`` defaults to ``keep``, ``seed`` to 0);
    * by reference — ``{"graph_ref": "<fingerprint>"}``, resolved against
      ``store`` (a graph previously registered via ``POST /v1/graphs`` or
      :meth:`GraphStore.put`).  Returns a :class:`GraphRef` — the graph
      itself is only materialized where the solve executes.  Raises
      :class:`~repro.graphs.store.UnknownGraphRef` when the store has no
      such fingerprint, and :class:`SchemaError` when no store is
      configured.

    Raises :class:`SchemaError` on anything else.
    """
    if isinstance(doc, dict) and any(k in doc for k in _V2_GRAPH_TAGS):
        graph, _ = _decode_graph_v2(doc, store=store)
        return graph
    return _graph_field_v1(doc, store=store)


def _graph_field_v1(doc: Any, *, store: Optional[GraphStore] = None):
    """The legacy (schema-v1) graph-field decoder."""
    if not isinstance(doc, dict):
        raise SchemaError(f"graph must be an object, got {type(doc).__name__}")
    if "graph_ref" in doc:
        ref = doc["graph_ref"]
        if not isinstance(ref, str) or not ref:
            raise SchemaError(f"graph_ref must be a hex string, got {ref!r}")
        if store is None:
            raise SchemaError(
                "graph_ref requires a graph store (this entry point has "
                "none configured)")
        try:
            return store.ref(ref)
        except GraphFormatError as exc:
            raise SchemaError(str(exc)) from exc
    if "spec" in doc:
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SchemaError(f"graph spec seed must be an int, got {seed!r}")
        try:
            graph = graph_from_spec(str(doc["spec"]), seed)
            weights = doc.get("weights")
            if weights is not None:
                graph = weights_from_spec(str(weights), graph, seed + 1)
        except ValueError as exc:
            raise SchemaError(str(exc)) from exc
        return graph
    if "nodes" in doc and "edges" in doc:
        try:
            return _graph_from_inline_doc(doc)
        except GraphFormatError as exc:
            raise SchemaError(str(exc)) from exc
    raise SchemaError(
        "graph must carry either nodes/edges (inline) or a spec"
    )


@dataclass(frozen=True)
class DeltaForm:
    """How a delta-form request arrived: parent fingerprint plus ops.

    Recorded on the parsed :class:`SolveRequest` (whose ``graph`` field
    is already the materialized child) so the serving layer can plan an
    incremental re-solve from the parent's cached report.  Never part of
    :meth:`SolveRequest.key`: the child graph's own fingerprint is the
    request identity, exactly as if the edited graph had been sent
    whole — which is what keeps delta-form, ref-form, and inline solves
    of the same content coalescing together.
    """

    parent: str
    delta: GraphDelta
    touched: Tuple[int, ...] = ()
    weight_only: bool = False

    def to_doc(self) -> Dict[str, Any]:
        return {"parent": self.parent, "ops": self.delta.to_doc()}


_V2_GRAPH_TAGS = ("inline", "ref", "delta")


def _decode_graph_v2(doc: Any, *, store: Optional[GraphStore] = None,
                     ) -> Tuple[Any, Optional[DeltaForm]]:
    """Decode the schema-v2 tagged graph union.

    Returns ``(graph, delta_form)`` where ``graph`` is a
    :class:`WeightedGraph` or :class:`GraphRef` and ``delta_form`` is the
    delta provenance (``None`` unless the ``delta`` tag was used).
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"graph must be an object, got {type(doc).__name__}")
    tags = [k for k in _V2_GRAPH_TAGS if k in doc]
    if len(tags) != 1:
        raise SchemaError(
            "schema-v2 graph must carry exactly one of "
            f"{'/'.join(_V2_GRAPH_TAGS)}, got {sorted(doc) or 'nothing'}"
        )
    tag = tags[0]
    if tag == "inline":
        return _graph_field_v1(doc["inline"], store=None), None
    if tag == "ref":
        return _graph_field_v1({"graph_ref": doc["ref"]}, store=store), None
    return _decode_delta_form(doc["delta"], store=store)


def _decode_delta_form(value: Any, *, store: Optional[GraphStore] = None,
                       ) -> Tuple[WeightedGraph, DeltaForm]:
    """Materialize ``{"parent": fp, "ops": [...]}`` into the child graph.

    Malformed documents raise :class:`SchemaError` (HTTP 400); edits
    that contradict the parent's actual state raise
    :class:`~repro.graphs.delta.DeltaConflictError` (HTTP 409); an
    unknown parent raises
    :class:`~repro.graphs.store.UnknownGraphRef` (HTTP 404).
    """
    if not isinstance(value, dict):
        raise SchemaError(
            f"delta must be an object, got {type(value).__name__}")
    parent = value.get("parent")
    if not isinstance(parent, str) or not parent:
        raise SchemaError(
            f"delta.parent must be a graph fingerprint, got {parent!r}")
    if store is None:
        raise SchemaError(
            "delta-form graphs require a graph store (this entry point "
            "has none configured)")
    try:
        delta = GraphDelta.from_doc(value)
    except DeltaConflictError as exc:
        # Shape problems in the ops list are a bad request, not a
        # conflict with graph state.
        raise SchemaError(str(exc)) from exc
    try:
        parent_graph = store.attach(parent)
    except GraphFormatError as exc:
        raise SchemaError(str(exc)) from exc
    info = apply_delta_info(parent_graph, delta)
    form = DeltaForm(parent=parent, delta=delta,
                     touched=tuple(sorted(info.touched)),
                     weight_only=info.weight_only)
    return info.graph, form


def _canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    out = dict(params)
    try:
        json.dumps(out, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"params must be JSON-serializable: {exc}") from exc
    return out


# --------------------------------------------------------------------- #
# the request/report contract
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SolveRequest:
    """One solve: ``algorithm(graph, seed=seed, **params)``.

    ``timeout_s`` and ``label`` are serving hints: the deadline the
    service enforces on the request, and an opaque tag echoed into
    observability records.  Neither affects the computation, so neither
    participates in :meth:`key`.

    ``backend`` selects the execution backend (``"per-node"`` or
    ``"columnar"``); the default empty string means per-node.  Backends
    are byte-identical by contract, but the selector still participates
    in :meth:`key` so a columnar request is never coalesced with (or
    cached as) a per-node one.

    ``graph`` may be a materialized :class:`WeightedGraph` or a
    :class:`~repro.graphs.store.GraphRef`.  Because a ref's
    ``fingerprint()`` *is* the stored graph's content hash, :meth:`key`
    is identical either way — ref-based and body-based requests for the
    same computation coalesce together and share cache entries, which is
    what makes their reports byte-identical.

    ``schema_version`` records which wire vocabulary the request arrived
    in (``"v2"`` natively; ``"v1"`` through the compatibility shim) and
    ``delta`` the delta-form provenance when the graph arrived as
    ``{"delta": {parent, ops}}``.  Both are serving metadata: neither
    participates in :meth:`key`, so a v1-shaped solve keys — and caches,
    and coalesces — byte-identically to its v2 twin, and a delta-form
    solve identically to a from-scratch solve of the edited graph.
    """

    graph: Any  # WeightedGraph | GraphRef
    algorithm: str
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    timeout_s: Optional[float] = None
    label: str = ""
    backend: str = ""
    schema_version: str = SCHEMA_VERSION
    delta: Optional[DeltaForm] = None

    def key(self) -> str:
        """Coalescing identity: requests with equal keys are the same
        computation (graph content, algorithm, seed, params, backend)
        and may be served by one execution."""
        return self.key_for_fingerprint(self.graph.fingerprint())

    def key_for_fingerprint(self, fingerprint: str) -> str:
        """:meth:`key` recomputed against another graph fingerprint.

        The incremental re-solve path uses this to derive the *parent's*
        cache/coalescing key from a delta-form request — same algorithm,
        seed, params, and backend, different graph content.
        """
        doc = {
            "fingerprint": fingerprint,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "params": self.params,
        }
        if self.backend and self.backend != "per-node":
            doc["backend"] = self.backend
        blob = json.dumps(doc, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_doc(self) -> Dict[str, Any]:
        """Re-emit the request in the vocabulary it was parsed from.

        ``schema_version == "v1"`` round-trips through the legacy shapes
        so a shimmed request serializes back to what the caller sent; a
        delta-form request re-emits its delta union member rather than
        the materialized child.
        """
        if self.schema_version == SCHEMA_V1:
            graph_doc = graph_to_doc(self.graph, schema=SCHEMA_V1)
        elif self.delta is not None:
            graph_doc = {"delta": self.delta.to_doc()}
        else:
            graph_doc = graph_to_doc(self.graph)
        doc: Dict[str, Any] = {
            "schema": self.schema_version,
            "graph": graph_doc,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "params": dict(self.params),
        }
        if self.timeout_s is not None:
            doc["timeout_s"] = self.timeout_s
        if self.label:
            doc["label"] = self.label
        if self.backend:
            doc["backend"] = self.backend
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_doc(cls, doc: Any, *,
                 store: Optional[GraphStore] = None) -> "SolveRequest":
        if not isinstance(doc, dict):
            raise SchemaError(
                f"request must be an object, got {type(doc).__name__}"
            )
        schema = doc.get("schema", SCHEMA_V1)
        if schema not in SUPPORTED_SCHEMAS:
            raise SchemaError(
                f"unsupported schema {schema!r}; this build speaks "
                f"{SCHEMA_VERSION!r} (and {SCHEMA_V1!r} through the "
                "compatibility shim)"
            )
        if "graph" not in doc:
            raise SchemaError("request is missing the graph field")
        algorithm = doc.get("algorithm")
        if not isinstance(algorithm, str) or not algorithm:
            raise SchemaError("request is missing the algorithm name")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SchemaError(f"seed must be an int, got {seed!r}")
        params = doc.get("params") or {}
        if not isinstance(params, dict):
            raise SchemaError(
                f"params must be an object, got {type(params).__name__}"
            )
        timeout_s = doc.get("timeout_s")
        if timeout_s is not None:
            try:
                timeout_s = float(timeout_s)
            except (TypeError, ValueError) as exc:
                raise SchemaError(
                    f"timeout_s must be a number, got {doc['timeout_s']!r}"
                ) from exc
            if timeout_s <= 0:
                raise SchemaError(f"timeout_s must be positive, got {timeout_s}")
        backend = doc.get("backend", "")
        if backend:
            from repro.simulator.backends import normalize_backend_name

            try:
                backend = normalize_backend_name(backend)
            except ValueError as exc:
                raise SchemaError(str(exc)) from exc
        if schema == SCHEMA_V1:
            warnings.warn(_V1_DEPRECATION, DeprecationWarning, stacklevel=2)
            graph, delta_form = _graph_field_v1(doc["graph"], store=store), None
        else:
            graph, delta_form = _decode_graph_v2(doc["graph"], store=store)
        return cls(
            graph=graph,
            algorithm=algorithm,
            seed=seed,
            params=_canonical_params(params),
            timeout_s=timeout_s,
            label=str(doc.get("label", "")),
            backend=str(backend or ""),
            schema_version=schema,
            delta=delta_form,
        )

    @classmethod
    def from_json(cls, text: str, *,
                  store: Optional[GraphStore] = None) -> "SolveRequest":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SchemaError(f"request is not valid JSON: {exc}") from exc
        return cls.from_doc(doc, store=store)


def _key_for_fingerprint(doc: Dict[str, Any],
                         fingerprint: str) -> Optional[str]:
    """Hash the :meth:`SolveRequest.key` doc for ``fingerprint`` using
    the (already-validated-as-present) request fields of ``doc``."""
    algorithm = doc.get("algorithm")
    if not isinstance(algorithm, str) or not algorithm:
        return None
    seed = doc.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        return None
    params = doc.get("params") or {}
    if not isinstance(params, dict):
        return None
    backend = doc.get("backend", "")
    if backend:
        from repro.simulator.backends import normalize_backend_name

        try:
            backend = normalize_backend_name(backend)
        except ValueError:
            return None
    key_doc: Dict[str, Any] = {
        "fingerprint": fingerprint,
        "algorithm": algorithm,
        "seed": seed,
        "params": params,
    }
    if backend and backend != "per-node":
        key_doc["backend"] = backend
    try:
        blob = json.dumps(key_doc, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(blob.encode()).hexdigest()


def _doc_graph_ref(doc: Any) -> Optional[str]:
    """The graph fingerprint named by a reference-form request doc, in
    either schema's vocabulary; ``None`` for any other shape."""
    if not isinstance(doc, dict):
        return None
    schema = doc.get("schema", SCHEMA_V1)
    if schema not in SUPPORTED_SCHEMAS:
        return None
    graph_doc = doc.get("graph")
    if not isinstance(graph_doc, dict):
        return None
    ref = graph_doc.get("graph_ref" if schema == SCHEMA_V1 else "ref")
    if not isinstance(ref, str) or not ref:
        return None
    return ref


def request_key_from_doc(doc: Any) -> Optional[str]:
    """Compute :meth:`SolveRequest.key` for a reference-form request doc
    without materializing anything.

    The fleet router shards by request key; for reference-form requests
    (v1 ``{"graph_ref": fp}`` or v2 ``{"ref": fp}``) the graph
    fingerprint is right there in the doc, so the key — and hence the
    shard — is computable with no graph store, no body reparse, and no
    size-dependent work.  Returns ``None`` whenever the doc is not a
    well-formed reference request (the caller falls back to the full
    parse path, which produces the proper schema error or inline-graph
    key).
    """
    ref = _doc_graph_ref(doc)
    if ref is None:
        return None
    return _key_for_fingerprint(doc, ref)


def delta_route_key_from_doc(doc: Any) -> Optional[str]:
    """A *placement hint* for a delta-form request: the key the same
    (algorithm, seed, params, backend) solve would have against the
    **parent** graph.

    Not the request's identity — the true key uses the child's
    fingerprint, which only exists after the delta is applied.  But
    sharding by this hint lands the solve on the shard whose memory
    cache holds the parent's report, which is exactly where the
    incremental re-solve path wants to run.  Returns ``None`` for
    non-delta docs.
    """
    if not isinstance(doc, dict):
        return None
    if doc.get("schema", SCHEMA_V1) != SCHEMA_VERSION:
        return None
    graph_doc = doc.get("graph")
    if not isinstance(graph_doc, dict):
        return None
    delta_doc = graph_doc.get("delta")
    if not isinstance(delta_doc, dict):
        return None
    parent = delta_doc.get("parent")
    if not isinstance(parent, str) or not parent:
        return None
    return _key_for_fingerprint(doc, parent)


def _strip_wall(obj: Any) -> Any:
    """Drop ``wall_seconds`` entries (span-tree timings) recursively.

    Everything else in a metrics document is a deterministic function of
    (graph, algorithm, seed, params); wall-clock is the one field that
    would break canonical report identity.
    """
    if isinstance(obj, dict):
        return {k: _strip_wall(v) for k, v in obj.items()
                if k != "wall_seconds"}
    if isinstance(obj, list):
        return [_strip_wall(x) for x in obj]
    return obj


@dataclass(frozen=True)
class SolveReport:
    """The canonical, deterministic record of one solve.

    Contains only fields that are a pure function of the request: no
    wall-clock, no cache provenance, no serving metadata.  Serializing a
    report (``to_json``) therefore yields byte-identical output for the
    in-process and HTTP paths of the same fixed-seed request.
    """

    algorithm: str
    seed: int
    graph_fingerprint: str
    ok: bool
    independent_set: Tuple[int, ...]
    weight: float
    rounds: int
    messages: int
    total_bits: int
    metrics: Optional[Dict[str, Any]]
    metadata: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    label: str = ""

    @classmethod
    def from_outcome(cls, outcome, *, graph: WeightedGraph,
                     algorithm: str, params: Mapping[str, Any]) -> "SolveReport":
        """Build a report from a batch-engine ``JobOutcome``."""
        metrics = outcome.metrics
        return cls(
            algorithm=algorithm,
            seed=outcome.seed,
            graph_fingerprint=graph.fingerprint(),
            ok=outcome.ok,
            independent_set=tuple(outcome.independent_set),
            weight=outcome.weight,
            rounds=metrics.rounds if metrics is not None else 0,
            messages=metrics.messages if metrics is not None else 0,
            total_bits=metrics.total_bits if metrics is not None else 0,
            metrics=(None if metrics is None
                     else _strip_wall(metrics.to_dict())),
            metadata=dict(outcome.metadata),
            params=dict(params),
            error=outcome.error,
            label=outcome.label,
        )

    def to_doc(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "graph_fingerprint": self.graph_fingerprint,
            "ok": self.ok,
            "independent_set": list(self.independent_set),
            "weight": self.weight,
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "metrics": self.metrics,
            "metadata": dict(self.metadata),
            "params": dict(self.params),
            "error": self.error,
            "label": self.label,
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators."""
        return json.dumps(self.to_doc(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_doc(cls, doc: Any) -> "SolveReport":
        if not isinstance(doc, dict):
            raise SchemaError(
                f"report must be an object, got {type(doc).__name__}"
            )
        schema = doc.get("schema", REPORT_SCHEMA_VERSION)
        if schema != REPORT_SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported report schema {schema!r}; this build "
                f"speaks {REPORT_SCHEMA_VERSION!r}"
            )
        try:
            return cls(
                algorithm=str(doc["algorithm"]),
                seed=int(doc["seed"]),
                graph_fingerprint=str(doc.get("graph_fingerprint", "")),
                ok=bool(doc["ok"]),
                independent_set=tuple(int(v) for v in
                                      doc.get("independent_set", [])),
                weight=float(doc.get("weight", 0.0)),
                rounds=int(doc.get("rounds", 0)),
                messages=int(doc.get("messages", 0)),
                total_bits=int(doc.get("total_bits", 0)),
                metrics=doc.get("metrics"),
                metadata=dict(doc.get("metadata") or {}),
                params=dict(doc.get("params") or {}),
                error=str(doc.get("error", "")),
                label=str(doc.get("label", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad report document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "SolveReport":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SchemaError(f"report is not valid JSON: {exc}") from exc
        return cls.from_doc(doc)

    @property
    def size(self) -> int:
        return len(self.independent_set)


# --------------------------------------------------------------------- #
# the facade calls
# --------------------------------------------------------------------- #

def _check_algorithm(algorithm: str) -> None:
    names = algorithm_registry()
    if algorithm not in names:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(names)}"
        )


def solve(
    graph,
    algorithm: str,
    *,
    seed: int = 0,
    policy: Optional[Any] = None,
    cache_dir: Optional[str] = None,
    raise_on_error: bool = True,
    backend: Optional[str] = None,
    **params: Any,
) -> SolveReport:
    """Run one registry algorithm on one instance; the blessed entry point.

    Exactly the computation the solver service performs for the same
    request — same seed semantics, same disk-cache keys (when
    ``cache_dir`` is shared), byte-identical canonical report.

    Args:
        graph: the weighted instance — a :class:`WeightedGraph`, or a
            :class:`~repro.graphs.store.GraphRef` from a
            :class:`~repro.graphs.store.GraphStore` (resolved zero-copy
            where the job executes; the report is byte-identical to
            passing the materialized graph).
        algorithm: a :func:`repro.registry.algorithm_registry` name.
        seed: root of the run's randomness (fixed seed ⇒ fixed output).
        policy: optional bandwidth policy forwarded to the algorithm.
        cache_dir: optional JSON disk cache shared with the batch engine
            and the service.
        raise_on_error: raise :class:`SolveError` if the run fails
            (default); pass ``False`` to get the failed report back
            instead — the service's behaviour.
        backend: execution backend name (``"per-node"``/``"columnar"``);
            ``None`` keeps the per-node default.  Fixed-seed reports are
            byte-identical across backends.
        **params: algorithm parameters (e.g. ``eps=0.5``).

    Returns:
        The canonical :class:`SolveReport`.
    """
    from repro.simulator.batch import BatchJob, run_job

    _check_algorithm(algorithm)
    job = BatchJob(graph, algorithm, seed=seed,
                   params=_canonical_params(params),
                   backend=backend or None)
    outcome = run_job(job, policy=policy, cache_dir=cache_dir)
    report = SolveReport.from_outcome(outcome, graph=graph,
                                      algorithm=algorithm, params=params)
    if raise_on_error and not report.ok:
        raise SolveError(
            f"{algorithm} failed on seed {seed}: {report.error}", report
        )
    return report


def sweep(
    graph,
    algorithm: str,
    *,
    seeds: int = 10,
    master_seed: int = 0,
    n_jobs: int = 1,
    policy: Optional[Any] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    **params: Any,
) -> List[SolveReport]:
    """Run ``seeds`` independent solves with derived per-trial seeds.

    A facade over the batch engine: per-trial seeds come from
    ``SeedSequence(master_seed)`` in spawn order (so report ``i`` is the
    same no matter how many workers ran the sweep), failures are captured
    as ``ok=False`` reports rather than raised, and ``cache_dir`` memoizes
    completed trials across invocations.
    """
    from repro.simulator.batch import BatchJob, batch_run

    _check_algorithm(algorithm)
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    canonical = _canonical_params(params)
    jobs = [BatchJob(graph, algorithm, params=dict(canonical),
                     backend=backend or None)
            for _ in range(seeds)]
    result = batch_run(jobs, master_seed=master_seed, n_jobs=n_jobs,
                       cache_dir=cache_dir, policy=policy)
    return [SolveReport.from_outcome(o, graph=graph, algorithm=algorithm,
                                     params=canonical)
            for o in result.outcomes]


def describe_algorithms() -> List[Dict[str, Any]]:
    """Name + call signature of every registry algorithm.

    The payload of ``GET /v1/algorithms`` and ``repro algorithms``: one
    entry per registry name with the keyword parameters (and defaults)
    its wrapper accepts beyond the uniform ``(graph, seed, policy)``.
    """
    import inspect

    out = []
    for name, fn in sorted(algorithm_registry().items()):
        params: List[Dict[str, Any]] = []
        accepts_extra = False
        for pname, p in inspect.signature(fn).parameters.items():
            if p.kind is inspect.Parameter.VAR_KEYWORD:
                accepts_extra = True
                continue
            if pname in ("g", "graph") or p.kind is inspect.Parameter.VAR_POSITIONAL:
                continue
            entry: Dict[str, Any] = {"name": pname}
            if p.default is not inspect.Parameter.empty:
                entry["default"] = p.default
            params.append(entry)
        out.append({
            "name": name,
            "params": params,
            "accepts_extra_params": accepts_extra,
        })
    return out
