"""Theorem 12 / Theorem 3: an ``8(1+ε)α``-approximation for low arboricity (§6).

Algorithm 6: for ``log n + 1`` phases, run a ``(1+ε)Δ``-approximation on
the subgraph induced by nodes of degree at most ``4α`` (whose maximum
degree is therefore ``≤ 4α``, so the inner guarantee is ``(1+ε)4α``); push
the result, zero out *all* low-degree nodes (not just the picked ones),
subtract neighbours' pushed weights elsewhere, and keep only
positive-weight nodes.  Since at least half the nodes of an
arboricity-``α`` graph have degree ``≤ 4α`` (Proposition 5), the node set
halves each phase and ``log n + 1`` phases empty the graph.  The greedy
pop then yields an ``8(1+ε)α``-approximation (Lemma 7).

Plugging in Theorem 2 as the inner algorithm gives Theorem 3's
``O(log n · poly(log log n)/ε)`` rounds.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.local_ratio import StackFrame, pop_stage, stack_value
from repro.core.theorem2 import theorem2_maxis
from repro.graphs.forests import arboricity as exact_arboricity
from repro.graphs.weighted_graph import WeightedGraph
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network

__all__ = ["low_arboricity_maxis"]

# Inner black box: (graph, eps, seed) -> AlgorithmResult with a
# (1+eps)*Δ guarantee on its input graph.
InnerDeltaApprox = Callable[..., AlgorithmResult]


def _default_inner(graph: WeightedGraph, eps: float, *, seed=None,
                   n_bound=None) -> AlgorithmResult:
    return theorem2_maxis(graph, eps, seed=seed, n_bound=n_bound)


def low_arboricity_maxis(
    graph: WeightedGraph,
    eps: float,
    *,
    alpha: Optional[int] = None,
    inner: InnerDeltaApprox = _default_inner,
    phases: Optional[int] = None,
    threshold_factor: int = 4,
    seed: Union[int, None, np.random.SeedSequence] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """Algorithm 6 end to end.

    Args:
        graph: input graph.
        eps: slack of the inner ``(1+ε)Δ``-approximation.
        alpha: the arboricity (or any upper bound on it).  When omitted it
            is computed exactly with the Nash–Williams matroid-partition
            machinery — a centralized preprocessing step standing in for
            the paper's assumption that ``α`` is known.
        inner: the ``(1+ε)Δ``-approximation black box (default Theorem 2).
        phases: override the ``log n + 1`` phase count.
        threshold_factor: the ``4`` of the ``4α`` degree threshold.  Below
            4 the halving argument (Proposition 5) fails and extra phases
            may be needed; above 4 the guarantee degrades toward
            ``2·factor·(1+ε)α``.  Exposed for the E10c ablation.
        seed: master seed.

    Returns:
        An ``8(1+ε)α``-approximate independent set (w.h.p. when the inner
        algorithm is randomized); metadata logs the peeling schedule.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"theorem": 3})
    bound = Network.of(graph, n_bound).n_bound
    if alpha is None:
        alpha = exact_arboricity(graph)
    alpha = max(1, int(alpha))
    threshold = threshold_factor * alpha

    t = phases if phases is not None else int(math.floor(math.log2(max(2, graph.n)))) + 1
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    phase_seeds = ss.spawn(max(t, 1))

    weights: Dict[int, float] = graph.weights
    active = {v for v, w in weights.items() if w > 0}
    metrics = RunMetrics()
    stack: List[StackFrame] = []
    phase_log: List[Dict[str, Any]] = []

    for i in range(t):
        if not active:
            break
        current = graph.induced_subgraph(active)
        low_degree = {v for v in current.nodes if current.degree(v) <= threshold}
        metrics.add_rounds(1)  # active nodes announce themselves -> local degrees

        pushed = frozenset()
        frame_value = 0.0
        if low_degree:
            low_graph = current.induced_subgraph(low_degree).with_weights(
                {v: weights[v] for v in low_degree}
            )
            result = inner(low_graph, eps, seed=phase_seeds[i], n_bound=bound)
            metrics = metrics.merge(result.metrics)
            pushed = result.independent_set
            frame = StackFrame(
                independent_set=pushed,
                residual_weights={v: weights[v] for v in pushed},
            )
            frame_value = frame.value
            stack.append(frame)

            # Weight update (Algorithm 6, line 13): zero ALL low-degree
            # nodes; everyone else loses its pushed neighbours' weight.
            new_weights = dict(weights)
            for v in low_degree:
                new_weights[v] = 0.0
            for v in pushed:
                wv = weights[v]
                for u in graph.neighbors(v):
                    if u not in low_degree and new_weights.get(u, 0.0) > 0.0:
                        new_weights[u] = max(new_weights[u] - wv, 0.0)
            weights = new_weights
            metrics.add_rounds(1)  # pushed nodes broadcast their weight

        phase_log.append({
            "phase": i,
            "active_nodes": len(active),
            "low_degree_nodes": len(low_degree),
            "pushed_nodes": len(pushed),
            "pushed_value": frame_value,
        })
        active = {v for v in active if weights[v] > 0}

    independent_set = pop_stage(graph, stack)
    metrics.add_rounds(len(stack))

    return AlgorithmResult(
        independent_set=independent_set,
        metrics=metrics,
        metadata={
            "theorem": 3,
            "alpha": alpha,
            "threshold": threshold,
            "phases_requested": t,
            "phases_executed": len(phase_log),
            "stack_value": stack_value(stack),
            "phase_log": phase_log,
            "guarantee_factor": 2.0 * threshold_factor * (1.0 + eps) * alpha,
            "residual_weight_left": sum(weights.values()),
        },
    )
