"""Theorem 9: weighted sparsification for a fast ``O(Δ)``-approximation (§4.2).

Each node joins the sampled subgraph ``H`` with probability

    ``p(v) = min{ λ · log n̄ · (1/δ(v) + w(v)/wmax(v)), 1 }``

where ``δ(v)`` is the maximum degree and ``wmax(v)`` the maximum *weighted
degree* ``w(N(u))`` over the inclusive neighbourhood — the paper's trick for
not needing the global ``w(V)``.  W.h.p. (Lemmas 3 and 5):

* ``Δ_H = O(log n)``;
* ``w(V_H) = Ω(min{w(V), w(V) · log n / Δ})``.

Running Theorem 8's good-nodes algorithm on ``H`` then yields an independent
set of weight ``Ω(w(V)/Δ)`` in ``MIS(n, O(log n))`` rounds — the
exponential speed-up engine behind Theorem 2.

Distributed cost: three rounds of sampling protocol (degrees+weights;
weighted degrees; membership flags) plus the Theorem 8 run on ``H``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.core.good_nodes import good_nodes_approx
from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.interface import MISBlackBox
from repro.obs.spans import span
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = [
    "SamplingProtocol",
    "sample_subgraph",
    "sampling_probabilities",
    "sparsified_approx",
]

DEFAULT_LAMBDA = 2.0


class SamplingProtocol(NodeAlgorithm):
    """Three-round protocol implementing the §4.2 sampling step.

    Halt output: ``(joined, p)`` — membership in ``V_H`` and the
    probability used.

    The ``uniform_only`` flag drops the ``w(v)/wmax(v)`` boost term; that
    is *wrong* for skewed weights and exists only for the E10a ablation.
    """

    def __init__(self, lamb: float = DEFAULT_LAMBDA, uniform_only: bool = False) -> None:
        self._lamb = lamb
        self._uniform_only = uniform_only
        self._delta = 0
        self._weighted_degree = 0.0

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            # Isolated nodes always join: they cost nothing and carry weight.
            ctx.halt((True, 1.0))
            return
        ctx.broadcast((ctx.degree, ctx.weight))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index == 1:
            degrees = [msg[0] for msg in inbox.values()]
            weights = [msg[1] for msg in inbox.values()]
            self._delta = max(degrees + [ctx.degree])
            self._weighted_degree = sum(weights)
            ctx.broadcast(self._weighted_degree)
        elif ctx.round_index == 2:
            wmax = max(list(inbox.values()) + [self._weighted_degree])
            p = self._probability(ctx, wmax)
            joined = bool(ctx.rng.random() < p)
            ctx.halt((joined, p))

    def _probability(self, ctx: NodeContext, wmax: float) -> float:
        log_n = math.log(max(2, ctx.n_bound))
        degree_term = 1.0 / self._delta if self._delta > 0 else 1.0
        if self._uniform_only or wmax <= 0.0:
            weight_term = 0.0
        else:
            weight_term = ctx.weight / wmax
        return min(self._lamb * log_n * (degree_term + weight_term), 1.0)


def sampling_probabilities(graph: WeightedGraph, *, lamb: float = DEFAULT_LAMBDA,
                           n_bound: Optional[int] = None,
                           uniform_only: bool = False) -> Dict[int, float]:
    """Centralized reference computation of ``p(v)`` (for tests)."""
    bound = Network.of(graph, n_bound).n_bound
    log_n = math.log(max(2, bound))
    wdeg = {v: graph.weighted_degree(v) for v in graph.nodes}
    out: Dict[int, float] = {}
    for v in graph.nodes:
        if graph.degree(v) == 0:
            out[v] = 1.0
            continue
        delta = max(graph.degree(u) for u in graph.inclusive_neighbors(v))
        wmax = max(wdeg[u] for u in graph.inclusive_neighbors(v))
        degree_term = 1.0 / delta if delta > 0 else 1.0
        weight_term = 0.0 if (uniform_only or wmax <= 0) else graph.weight(v) / wmax
        out[v] = min(lamb * log_n * (degree_term + weight_term), 1.0)
    return out


@dataclass(frozen=True)
class SampleOutcome:
    """The sampled subgraph plus sampling diagnostics."""

    subgraph: WeightedGraph
    probabilities: Dict[int, float]
    metrics: RunMetrics


def sample_subgraph(
    graph: WeightedGraph,
    *,
    lamb: float = DEFAULT_LAMBDA,
    uniform_only: bool = False,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> SampleOutcome:
    """Run the sampling protocol and materialise ``H``."""
    network = Network.of(graph, n_bound)
    result = run(
        network,
        lambda: SamplingProtocol(lamb=lamb, uniform_only=uniform_only),
        policy=policy,
        seed=seed,
    )
    members = [v for v, (joined, _p) in result.outputs.items() if joined]
    probabilities = {v: p for v, (_j, p) in result.outputs.items()}
    return SampleOutcome(
        subgraph=graph.induced_subgraph(members),
        probabilities=probabilities,
        metrics=result.metrics,
    )


def sparsified_approx(
    graph: WeightedGraph,
    *,
    mis: Union[str, MISBlackBox] = "ghaffari",
    lamb: float = DEFAULT_LAMBDA,
    uniform_only: bool = False,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """Theorem 9 end to end: sample ``H``, then Theorem 8 on ``H``.

    Returns an independent set of weight ``Ω(w(V)/Δ)`` w.h.p.; the
    metadata records ``Δ_H`` and ``w(V_H)`` so experiments can check the
    two sampling lemmas directly.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"sampled_nodes": 0})

    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    seed_sample, seed_inner = ss.spawn(2)

    with span("sparsified") as sp:
        outcome = sample_subgraph(
            graph,
            lamb=lamb,
            uniform_only=uniform_only,
            seed=seed_sample,
            policy=policy,
            n_bound=n_bound,
        )
        h = outcome.subgraph
        sp.add(outcome.metrics, name="sample-H")
        # Membership flags travel one extra round so each H-node knows its
        # H-neighbours before Theorem 8 starts on the subgraph.
        sp.add_rounds(1, name="announce-membership")

        inner = good_nodes_approx(
            h,
            mis=mis,
            seed=seed_inner,
            policy=policy,
            n_bound=Network.of(graph, n_bound).n_bound,
            max_rounds=max_rounds,
        )
        sp.add(inner.metrics)
    return AlgorithmResult(
        independent_set=inner.independent_set,
        metrics=sp.metrics(),
        metadata={
            "sampled_nodes": h.n,
            "sampled_max_degree": h.max_degree,
            "sampled_weight": h.total_weight(),
            "total_weight": graph.total_weight(),
            "good_nodes": inner.metadata.get("good_nodes"),
            "mis_rounds": inner.metadata.get("mis_rounds"),
            "lambda": lamb,
            "uniform_only": uniform_only,
        },
    )
