"""Theorem 2: a randomized ``poly(log log n)/ε``-round ``(1+ε)Δ``-approximation.

Pipeline: Theorem 9's sparsified ``O(Δ)``-approximation (sample ``H`` with
``Δ_H = O(log n)``, then good nodes + a fast MIS on ``H``) boosted through
Algorithm 1.  The inner guarantee constant ``c`` is a w.h.p. constant; the
default is conservative and the per-phase ``inner_fraction`` diagnostics in
the metadata let experiments confirm it held.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.boosting import boost
from repro.core.sparsify import DEFAULT_LAMBDA, sparsified_approx
from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.interface import MISBlackBox
from repro.obs.spans import span
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network

__all__ = ["theorem2_maxis", "DEFAULT_INNER_CONSTANT"]

# Conservative w.h.p. inner constant: the sampled subgraph keeps a constant
# fraction of w(V)/Δ reachable, and Theorem 8 on H pays its 4(Δ_H+1)
# against Δ_H = O(log n).  Empirically the achieved fraction is far better;
# the boosting guarantee only needs c to be an upper bound.
DEFAULT_INNER_CONSTANT = 8.0


def theorem2_maxis(
    graph: WeightedGraph,
    eps: float,
    *,
    mis: Union[str, MISBlackBox] = "ghaffari",
    lamb: float = DEFAULT_LAMBDA,
    c: float = DEFAULT_INNER_CONSTANT,
    phases: Optional[int] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """``(1+ε)Δ``-approximate MaxIS, exponentially faster than MIS-based.

    W.h.p. the returned set satisfies ``w(I) >= OPT / ((1+ε)Δ)``; rounds
    scale with ``MIS(n, O(log n)) / ε`` instead of ``MIS(n, Δ) · log W``
    (the Bar-Yehuda et al. baseline this paper improves on).
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"theorem": 2})
    delta = graph.max_degree
    # Residual phases inherit the original graph's knowledge bound (the
    # sampling probability's log n term and the CONGEST budget both use it).
    bound = Network.of(graph, n_bound).n_bound

    def inner(residual_graph: WeightedGraph, *, seed=None) -> AlgorithmResult:
        return sparsified_approx(
            residual_graph,
            mis=mis,
            lamb=lamb,
            seed=seed,
            policy=policy,
            n_bound=bound,
        )

    with span("theorem2") as sp:
        result = boost(graph, inner, eps=eps, c=c, phases=phases, seed=seed)
        sp.add(result.metrics)
    result = AlgorithmResult(result.independent_set, sp.metrics(),
                             result.metadata)
    return result.with_metadata(theorem=2, delta=delta,
                                guarantee_factor=(1.0 + eps) * max(delta, 1))
