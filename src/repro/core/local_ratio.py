"""Local-ratio machinery (§4.3): weight reductions, the stack, and the
greedy pop stage.

The boosting algorithm (Algorithm 1) and the arboricity algorithm
(Algorithm 6) share this skeleton:

* a **push phase** runs a black box on the current residual weights,
  records the returned independent set ``I_i`` together with its residual
  weights (that pair is a *stack frame*), and applies the weight reduction
  ``w_{i+1}(v) = w_i(v) − Σ_{u ∈ N+(v) ∩ I_i} w_i(u)``;
* the **pop stage** walks frames in reverse and greedily inserts nodes
  whose neighbourhood is still untouched.

Distributed cost accounting: a weight reduction is one communication round
(members of ``I_i`` broadcast their residual weight), and each pop phase is
one round (fresh members announce themselves before the next frame pops) —
these constants are charged by the callers.

``stack_value`` computes ``Σ_i w_i(I_i)``; Proposition 2 (the *stack
property*) states ``w(I) >= stack_value``, and the tests assert it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "StackFrame",
    "apply_reduction",
    "pop_stage",
    "stack_value",
    "clip_nonnegative",
    "sequential_local_ratio_maxis",
    "theorem6_holds",
]


@dataclass(frozen=True)
class StackFrame:
    """One push phase: the set ``I_i`` and its residual weights ``w_i``
    restricted to ``I_i`` (what Proposition 2 calls ``w_{i_v}(v)``)."""

    independent_set: FrozenSet[int]
    residual_weights: Dict[int, float]

    @property
    def value(self) -> float:
        """``w_i(I_i)`` — this frame's contribution to the stack value."""
        return sum(self.residual_weights[v] for v in self.independent_set)


def apply_reduction(
    graph: WeightedGraph,
    weights: Dict[int, float],
    independent_set: FrozenSet[int],
) -> Tuple[Dict[int, float], StackFrame]:
    """One local-ratio step on ``weights``.

    Every node in the inclusive neighbourhood of ``independent_set`` loses
    the (current) weight of its ``I_i`` neighbours; members of ``I_i``
    drop to exactly zero because the set is independent.

    Returns:
        ``(new_weights, frame)`` where ``frame`` records ``I_i`` and the
        residual weights at push time.
    """
    frame = StackFrame(
        independent_set=frozenset(independent_set),
        residual_weights={v: weights[v] for v in independent_set},
    )
    new_weights = dict(weights)
    for v in independent_set:
        wv = weights[v]
        new_weights[v] -= wv
        for u in graph.neighbors(v):
            if u in new_weights:
                new_weights[u] -= wv
    return new_weights, frame


def pop_stage(graph: WeightedGraph, stack: Sequence[StackFrame]) -> FrozenSet[int]:
    """Greedy reverse pop (Algorithm 1, lines 10–17).

    Frames are given in push order; the pop walks them last-to-first and
    inserts each candidate unless a neighbour is already chosen.  The
    result is independent by construction.
    """
    chosen: set = set()
    blocked: set = set()
    for frame in reversed(list(stack)):
        for v in sorted(frame.independent_set):
            if v in blocked or v in chosen:
                continue
            chosen.add(v)
            blocked.update(graph.neighbors(v))
    return frozenset(chosen)


def stack_value(stack: Sequence[StackFrame]) -> float:
    """``Σ_i w_i(I_i)`` — the lower bound of Proposition 2."""
    return sum(frame.value for frame in stack)


def sequential_local_ratio_maxis(
    graph: WeightedGraph,
    order: Optional[Sequence[int]] = None,
) -> FrozenSet[int]:
    """The simple sequential Δ-approximation of §2.2.

    Repeatedly pick a positive-weight node (in ``order``; default
    ascending id), push it, and reduce its inclusive neighbourhood by its
    weight; when nothing positive remains, pop the stack greedily.  By the
    Theorem 6 induction this is a Δ-approximation — *worst case*, for any
    pick order — and it is the linear-time sequential algorithm the
    introduction contrasts the distributed setting against.
    """
    weights = graph.weights
    stack: List[StackFrame] = []
    scan = list(order) if order is not None else list(graph.nodes)
    progress = True
    while progress:
        progress = False
        for v in scan:
            if weights[v] > 0:
                new_weights, frame = apply_reduction(graph, weights, frozenset({v}))
                weights = clip_nonnegative(new_weights)
                stack.append(frame)
                progress = True
    return pop_stage(graph, stack)


def theorem6_holds(
    graph: WeightedGraph,
    w1: Dict[int, float],
    w2: Dict[int, float],
    independent_set: FrozenSet[int],
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Empirically check the local-ratio theorem (Theorem 6) on an instance.

    Computes the best ratio ``r`` for which ``independent_set`` is
    ``r``-approximate with respect to ``w1`` and ``w2`` separately, then
    verifies it is ``r``-approximate with respect to ``w = w1 + w2``.
    Exact optima are used, so this is limited to exact-solver sizes; the
    property tests run it over random weight splits.
    """
    from repro.core.exact import exact_max_weight_is

    def ratio(weights: Dict[int, float]) -> float:
        gw = graph.with_weights(weights)
        _, opt = exact_max_weight_is(gw)
        achieved = gw.total_weight(independent_set)
        if opt <= tolerance:
            return 1.0
        if achieved <= tolerance:
            return float("inf")
        return opt / achieved

    r = max(ratio(w1), ratio(w2))
    if r == float("inf"):
        return True  # vacuous: the premise ratio is unbounded
    combined = {v: w1[v] + w2[v] for v in graph.nodes}
    return ratio(combined) <= r + 1e-6


def clip_nonnegative(weights: Dict[int, float]) -> Dict[int, float]:
    """Zero out negative residuals.

    Residual weights can go negative (a node adjacent to several pushed
    nodes); such nodes can never be picked again, and clipping keeps the
    "positive weight" predicates simple without changing any guarantee.
    """
    return {v: (w if w > 0 else 0.0) for v, w in weights.items()}
