"""Baselines the paper compares against.

* :func:`bar_yehuda_maxis` — a faithful reconstruction of the PODC 2017
  Δ-approximation of Bar-Yehuda, Censor-Hillel, Ghaffari and Schwartzman
  [8]: a local-ratio scheme that spends one MIS black-box run per weight
  scale, ``O(MIS(n,Δ) · log W)`` rounds in total.  This is the previous
  best the paper claims an exponential speed-up over (E5 measures exactly
  that round-count gap).
* :func:`greedy_maxis` — the classical sequential heaviest-first greedy
  (a Δ-approximation; the "simple linear-time greedy" from §1).
* :func:`mis_baseline` — a plain MIS, which is a Δ-approximation only for
  unweighted graphs (the §1 observation that motivates the whole paper).
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, List, Optional, Union

import numpy as np

from repro.core.local_ratio import (
    StackFrame,
    apply_reduction,
    clip_nonnegative,
    pop_stage,
    stack_value,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.interface import MISBlackBox, get_mis_blackbox
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network

__all__ = ["bar_yehuda_maxis", "greedy_maxis", "mis_baseline"]

SeedLike = Union[int, None, np.random.SeedSequence]


def bar_yehuda_maxis(
    graph: WeightedGraph,
    *,
    mis: Union[str, MISBlackBox] = "luby",
    seed: SeedLike = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """The ``O(MIS(n,Δ) · log W)``-round Δ-approximation of [8].

    Reconstruction: sweep weight scales ``2^L, 2^{L-1}, ..., 1`` where
    ``L = ceil(log2 W)``.  At each scale, find an MIS of the subgraph
    induced by nodes whose *residual* weight is at least the scale
    threshold, push it with the local-ratio reduction, and continue.  A
    final scale at threshold ``> 0`` clears leftovers from non-integer
    weights.  The greedy pop then returns the answer.

    Weights must be ``>= 1`` wherever positive (the paper's integral
    ``W <= poly(n)`` setting) so the scale count is ``log W``.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "bar-yehuda"})
    w_max = graph.max_weight()
    if w_max <= 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "bar-yehuda"})

    levels = max(0, math.ceil(math.log2(w_max))) if w_max >= 1 else 0
    thresholds = [2.0 ** ell for ell in range(levels, -1, -1)]
    # Last sweep at an infinitesimal threshold collects any residual mass
    # below 1 (only relevant for non-integer inputs).
    thresholds.append(float(np.finfo(float).tiny))

    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    scale_seeds = ss.spawn(len(thresholds))
    blackbox = get_mis_blackbox(mis)
    bound = Network.of(graph, n_bound).n_bound

    weights: Dict[int, float] = graph.weights
    metrics = RunMetrics()
    stack: List[StackFrame] = []
    scale_log: List[Dict[str, Any]] = []

    for idx, threshold in enumerate(thresholds):
        heavy = [v for v, w in weights.items() if w >= threshold and w > 0]
        metrics.add_rounds(1)  # heavy nodes announce themselves
        if not heavy:
            continue
        subgraph = graph.induced_subgraph(heavy)
        result = blackbox(subgraph, seed=scale_seeds[idx], policy=policy, n_bound=bound)
        metrics = metrics.merge(result.metrics)
        weights, frame = apply_reduction(graph, weights, result.independent_set)
        weights = clip_nonnegative(weights)
        stack.append(frame)
        metrics.add_rounds(1)  # weight-reduction broadcast
        scale_log.append({
            "threshold": threshold,
            "heavy_nodes": len(heavy),
            "pushed_nodes": len(frame.independent_set),
            "mis_rounds": result.rounds,
        })

    independent_set = pop_stage(graph, stack)
    metrics.add_rounds(len(stack))
    return AlgorithmResult(
        independent_set=independent_set,
        metrics=metrics,
        metadata={
            "algorithm": "bar-yehuda",
            "log_w_levels": len(thresholds),
            "stack_value": stack_value(stack),
            "scale_log": scale_log,
            "residual_weight_left": sum(weights.values()),
        },
    )


def greedy_maxis(graph: WeightedGraph) -> FrozenSet[int]:
    """Sequential heaviest-first greedy — a Δ-approximation reference.

    Each chosen node blocks at most Δ optimum nodes, none heavier than it.
    """
    order = sorted(graph.nodes, key=lambda v: (-graph.weight(v), v))
    chosen: set = set()
    blocked: set = set()
    for v in order:
        if v in blocked or v in chosen or graph.weight(v) <= 0:
            continue
        chosen.add(v)
        blocked.update(graph.neighbors(v))
    return frozenset(chosen)


def mis_baseline(
    graph: WeightedGraph,
    *,
    mis: Union[str, MISBlackBox] = "luby",
    seed: SeedLike = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """A bare MIS.  Δ-approximate for unit weights; arbitrarily bad when
    weights vary (the weighted counterexample motivating Theorem 8)."""
    blackbox = get_mis_blackbox(mis)
    result = blackbox(graph, seed=seed, policy=policy, n_bound=n_bound)
    return result.with_metadata(algorithm="mis-baseline")
