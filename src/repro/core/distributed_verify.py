"""Distributed self-verification: certify independence in one round.

The library's :mod:`repro.core.verify` checks outputs centrally; a real
deployment would want the *network* to certify its own output.  For
independence that costs exactly one CONGEST round: every member announces
membership; a member hearing a member neighbour rejects.  (Maximality is
also one round: a non-member with no member neighbour rejects.)

This is a genuinely distributed proof-labelling-style check — the
complement of the paper's algorithms, closing the loop from "compute" to
"locally verify" without any central collector.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Tuple

from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["IndependenceCheck", "distributed_independence_check"]


class IndependenceCheck(NodeAlgorithm):
    """One-round membership exchange.

    Halt output per node: ``"ok"`` when its local view is consistent,
    ``"conflict"`` when it is a member with a member neighbour, and —
    with ``maximality=True`` — ``"not-maximal"`` when it is a non-member
    with no member neighbour.
    """

    def __init__(self, membership: Mapping[int, bool], maximality: bool = False) -> None:
        self._membership = membership
        self._maximality = maximality

    def on_start(self, ctx: NodeContext) -> None:
        mine = bool(self._membership.get(ctx.node_id, False))
        if ctx.degree == 0:
            if self._maximality and not mine:
                ctx.halt("not-maximal")
            else:
                ctx.halt("ok")
            return
        ctx.broadcast(mine)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        mine = bool(self._membership.get(ctx.node_id, False))
        member_neighbor = any(inbox.values())
        if mine and member_neighbor:
            ctx.halt("conflict")
        elif self._maximality and not mine and not member_neighbor:
            ctx.halt("not-maximal")
        else:
            ctx.halt("ok")


def distributed_independence_check(
    graph: WeightedGraph,
    independent_set: Iterable[int],
    *,
    maximality: bool = False,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> Tuple[bool, RunMetrics]:
    """Verify a claimed (maximal) independent set in one CONGEST round.

    Returns ``(accepted, metrics)``; ``accepted`` iff every node output
    ``"ok"`` — matching the centralized
    :func:`repro.core.verify.is_independent` /
    :func:`...is_maximal_independent_set` verdicts (test-asserted).
    """
    members = set(independent_set)
    membership = {v: (v in members) for v in graph.nodes}
    if graph.n == 0:
        return True, RunMetrics()
    result = run(
        Network.of(graph, n_bound),
        lambda: IndependenceCheck(membership, maximality=maximality),
        policy=policy,
        seed=0,
    )
    accepted = all(out == "ok" for out in result.outputs.values())
    return accepted, result.metrics
