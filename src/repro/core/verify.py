"""Certification of algorithm outputs.

Every theorem in the paper is an inequality about the returned set; the
experiment suite *asserts* those inequalities rather than eyeballing them.
This module provides the checks:

* structural: independence, maximality;
* value: ``w(I)`` against fraction-of-total bounds (Theorems 8, 9, 11) and
  against OPT-relative approximation factors (Theorems 1, 2, 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.exceptions import VerificationError
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "is_independent",
    "assert_independent",
    "is_maximal_independent_set",
    "assert_maximal_independent_set",
    "ApproximationCertificate",
    "certify_fraction_bound",
    "certify_ratio",
    "certify_result",
]


def is_independent(graph: WeightedGraph, nodes: Iterable[int]) -> bool:
    """True iff ``nodes`` is an independent set of ``graph``."""
    chosen = set(nodes)
    for v in chosen:
        if not graph.has_node(v):
            return False
        for u in graph.neighbors(v):
            if u in chosen:
                return False
    return True


def assert_independent(graph: WeightedGraph, nodes: Iterable[int]) -> None:
    """Raise :class:`VerificationError` unless ``nodes`` is independent."""
    chosen = set(nodes)
    for v in chosen:
        if not graph.has_node(v):
            raise VerificationError(f"node {v} not in graph")
        for u in graph.neighbors(v):
            if u in chosen:
                raise VerificationError(f"edge ({v}, {u}) inside claimed independent set")


def is_maximal_independent_set(graph: WeightedGraph, nodes: Iterable[int]) -> bool:
    """True iff ``nodes`` is independent and no node can be added."""
    chosen = set(nodes)
    if not is_independent(graph, chosen):
        return False
    dominated = set(chosen)
    for v in chosen:
        dominated.update(graph.neighbors(v))
    return dominated == set(graph.nodes)


def assert_maximal_independent_set(graph: WeightedGraph, nodes: Iterable[int]) -> None:
    """Raise unless ``nodes`` is a maximal independent set."""
    assert_independent(graph, nodes)
    chosen = set(nodes)
    dominated = set(chosen)
    for v in chosen:
        dominated.update(graph.neighbors(v))
    missing = set(graph.nodes) - dominated
    if missing:
        raise VerificationError(
            f"set is not maximal: {sorted(missing)[:5]} have no neighbour in it"
        )


@dataclass(frozen=True)
class ApproximationCertificate:
    """Outcome of a value check.

    ``achieved`` is the measured value (``w(I)``); ``required`` is what the
    theorem demands; ``reference`` names the bound used (``w(V)``, exact
    OPT, or an upper bound on OPT).
    """

    achieved: float
    required: float
    reference: str
    holds: bool

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def certify_fraction_bound(
    graph: WeightedGraph,
    independent_set: FrozenSet[int],
    denominator: float,
    *,
    tolerance: float = 1e-9,
) -> ApproximationCertificate:
    """Check ``w(I) >= w(V) / denominator`` (Theorem 8/9/11-style bounds)."""
    assert_independent(graph, independent_set)
    achieved = graph.total_weight(independent_set)
    required = graph.total_weight() / denominator if denominator > 0 else 0.0
    return ApproximationCertificate(
        achieved=achieved,
        required=required,
        reference=f"w(V)/{denominator:g}",
        holds=achieved + tolerance >= required,
    )


def certify_ratio(
    graph: WeightedGraph,
    independent_set: FrozenSet[int],
    factor: float,
    *,
    opt: Optional[float] = None,
    tolerance: float = 1e-9,
) -> ApproximationCertificate:
    """Check ``w(I) >= OPT / factor`` (Theorem 1/2/3-style approximations).

    When ``opt`` is omitted the exact solver is invoked, which only works
    for small instances; pass a precomputed OPT (or a certified upper
    bound, making the check conservative) for anything larger.
    """
    assert_independent(graph, independent_set)
    if opt is None:
        from repro.core.exact import exact_max_weight_is

        _, opt = exact_max_weight_is(graph)
    achieved = graph.total_weight(independent_set)
    required = opt / factor if factor > 0 else 0.0
    return ApproximationCertificate(
        achieved=achieved,
        required=required,
        reference=f"OPT({opt:g})/{factor:g}",
        holds=achieved + tolerance >= required,
    )


def certify_result(
    graph: WeightedGraph,
    result,
    *,
    opt: Optional[float] = None,
    tolerance: float = 1e-9,
) -> ApproximationCertificate:
    """Certify an :class:`~repro.results.AlgorithmResult` against the
    guarantee recorded in its own metadata.

    Dispatches on ``metadata["guarantee_factor"]`` (written by the
    Theorem 1/2/3/5 pipelines): with ``opt`` available (or a small enough
    instance for the exact solver) the OPT-relative factor is checked.
    Otherwise the check falls back to the pipeline's ``w(V)``-relative
    guarantee, which only the boosting-based theorems (1, 2, 5 — the
    Remark / Corollary 1 bound ``w(V)/((1+ε)(Δ+1))``) possess; Theorem 3
    results on large instances need an explicit ``opt`` (or a certified
    upper bound on it).
    """
    factor = result.metadata.get("guarantee_factor")
    if factor is None:
        raise VerificationError(
            "result carries no guarantee_factor metadata; use "
            "certify_ratio/certify_fraction_bound directly"
        )
    if opt is not None:
        return certify_ratio(graph, result.independent_set, factor,
                             opt=opt, tolerance=tolerance)
    from repro.exceptions import SolverLimitError

    try:
        from repro.core.exact import exact_max_weight_is

        _, exact_opt = exact_max_weight_is(graph)
        return certify_ratio(graph, result.independent_set, factor,
                             opt=exact_opt, tolerance=tolerance)
    except SolverLimitError:
        theorem = result.metadata.get("theorem")
        eps = result.metadata.get("eps")
        if theorem in (1, 2, 5) and eps is not None:
            denominator = (1.0 + eps) * (graph.max_degree + 1)
            return certify_fraction_bound(
                graph, result.independent_set, denominator, tolerance=tolerance
            )
        raise VerificationError(
            "instance exceeds the exact solver and this pipeline has no "
            "w(V)-relative guarantee; pass opt= (an exact optimum or a "
            "certified upper bound)"
        )
