"""The paper's contribution: MaxIS approximation algorithms and their
verification machinery."""

from repro.core.baselines import bar_yehuda_maxis, greedy_maxis, mis_baseline
from repro.core.boosting import boost, phases_for
from repro.core.distributed_verify import IndependenceCheck, distributed_independence_check
from repro.core.exact import exact_max_is_size, exact_max_weight_clique, exact_max_weight_is
from repro.core.good_nodes import GoodNodesProtocol, good_node_set, good_nodes_approx
from repro.core.local_ratio import (
    StackFrame,
    apply_reduction,
    clip_nonnegative,
    pop_stage,
    sequential_local_ratio_maxis,
    stack_value,
    theorem6_holds,
)
from repro.core.local_exact import GossipAndSolve, local_exact_maxis
from repro.core.low_arboricity import low_arboricity_maxis
from repro.core.ranking import (
    BoppanaRanking,
    SeqBoppanaTrajectory,
    boppana_is,
    low_degree_maxis,
    seq_boppana,
    seq_boppana0,
    seq_boppana_trajectory,
    theorem11_threshold_degree,
)
from repro.core.sparsify import (
    SamplingProtocol,
    sample_subgraph,
    sampling_probabilities,
    sparsified_approx,
)
from repro.core.theorem1 import theorem1_maxis
from repro.core.upper_bounds import (
    clique_cover_upper_bound,
    greedy_clique_cover,
    opt_upper_bound,
)
from repro.core.weighted_greedy import WeightedGreedy, greedy_chain_graph, weighted_greedy_maxis
from repro.core.theorem2 import theorem2_maxis
from repro.core.verify import (
    ApproximationCertificate,
    assert_independent,
    assert_maximal_independent_set,
    certify_fraction_bound,
    certify_ratio,
    certify_result,
    is_independent,
    is_maximal_independent_set,
)

__all__ = [
    # headline algorithms
    "theorem1_maxis", "theorem2_maxis", "low_arboricity_maxis", "low_degree_maxis",
    # building blocks
    "good_nodes_approx", "good_node_set", "GoodNodesProtocol",
    "sparsified_approx", "sample_subgraph", "sampling_probabilities", "SamplingProtocol",
    "boost", "phases_for",
    "StackFrame", "apply_reduction", "pop_stage", "stack_value", "clip_nonnegative",
    "sequential_local_ratio_maxis", "theorem6_holds",
    "BoppanaRanking", "boppana_is", "seq_boppana", "seq_boppana0",
    "seq_boppana_trajectory", "SeqBoppanaTrajectory", "theorem11_threshold_degree",
    # baselines & exact
    "bar_yehuda_maxis", "greedy_maxis", "mis_baseline",
    "weighted_greedy_maxis", "WeightedGreedy", "greedy_chain_graph",
    "exact_max_weight_is", "exact_max_is_size", "exact_max_weight_clique",
    "opt_upper_bound", "clique_cover_upper_bound", "greedy_clique_cover",
    "local_exact_maxis", "GossipAndSolve",
    # verification
    "is_independent", "assert_independent",
    "is_maximal_independent_set", "assert_maximal_independent_set",
    "certify_fraction_bound", "certify_ratio", "certify_result", "ApproximationCertificate",
    "distributed_independence_check", "IndependenceCheck",
]
