"""Certified upper bounds on OPT for instances beyond the exact solver.

An approximation certificate needs the optimum — or any *certified upper
bound* on it (checking ``w(I) >= UB/factor`` is then conservative).  Two
cheap certified bounds:

* ``w(V)`` — trivial;
* **clique cover**: partition ``V`` into cliques; any independent set
  takes at most one node per clique, so
  ``OPT <= Σ_cliques max-weight-in-clique``.  A greedy cover already
  cuts far below ``w(V)`` on dense or triangle-rich graphs.
"""

from __future__ import annotations

from typing import List, Set

from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["greedy_clique_cover", "clique_cover_upper_bound", "opt_upper_bound"]


def greedy_clique_cover(graph: WeightedGraph) -> List[Set[int]]:
    """Partition the nodes into cliques, greedily, heaviest-first.

    Each clique is grown from the heaviest unassigned node by repeatedly
    adding the heaviest unassigned common neighbour.  Always a valid
    partition into cliques (singletons in the worst case).
    """
    unassigned = set(graph.nodes)
    order = sorted(graph.nodes, key=lambda v: (-graph.weight(v), v))
    cover: List[Set[int]] = []
    for v in order:
        if v not in unassigned:
            continue
        clique = {v}
        candidates = set(graph.neighbors(v)) & unassigned
        while candidates:
            u = max(candidates, key=lambda x: (graph.weight(x), -x))
            clique.add(u)
            candidates &= set(graph.neighbors(u))
            candidates.discard(u)
        unassigned -= clique
        cover.append(clique)
    return cover


def clique_cover_upper_bound(graph: WeightedGraph) -> float:
    """``Σ_cliques max weight`` over a greedy clique cover — ``>= OPT``."""
    return sum(
        max(graph.weight(v) for v in clique)
        for clique in greedy_clique_cover(graph)
    )


def opt_upper_bound(graph: WeightedGraph) -> float:
    """The best certified upper bound available cheaply.

    ``min(w(V), clique-cover bound)`` — both are valid upper bounds on
    OPT, so their minimum is too.
    """
    if graph.n == 0:
        return 0.0
    return min(graph.total_weight(), clique_cover_upper_bound(graph))
