"""The trivial LOCAL-model exact algorithm: gossip, then solve locally.

In the LOCAL model (unbounded messages) every problem is solvable in
``O(D)`` rounds: nodes gossip the entire topology, then each runs the
same deterministic solver and outputs its own membership.  This is the
degenerate endpoint of the LOCAL/CONGEST spectrum the paper works in —
useful here as

* a LOCAL-correctness reference for small instances,
* a live demonstration that the approach is *not* CONGEST: its messages
  carry ``Θ(m log n)`` bits, which the strict bandwidth policy rejects
  (test-asserted), and
* a diameter-round-cost exhibit alongside the §8 discussion.

Local computation is the exact branch-and-bound solver, so instances are
bounded by its size limit — the point is the model, not scalability.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Optional, Set, Tuple

from repro.core.exact import exact_max_weight_is
from repro.exceptions import GraphError
from repro.graphs.properties import is_connected
from repro.graphs.weighted_graph import WeightedGraph
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["GossipAndSolve", "local_exact_maxis"]


class GossipAndSolve(NodeAlgorithm):
    """Flood (edge, weight) knowledge; solve when the ball stops growing.

    Knowledge is a set of ``(u, v, w_u, w_v)`` tuples.  After ``r`` rounds
    a node knows exactly the radius-``r`` edge ball; monotone gossip means
    the first round with no growth is the last possible growth, so the
    node can halt and solve.  Rounds = eccentricity + 1.
    """

    def __init__(self) -> None:
        self._knowledge: Set[Tuple[int, int, float, float]] = set()
        self._weights: dict = {}

    def on_start(self, ctx: NodeContext) -> None:
        self._weights[ctx.node_id] = ctx.weight
        if ctx.degree == 0:
            ctx.halt(True)
            return
        # Seed: the node knows its incident edge *endpoints* but not the
        # neighbours' weights yet; send own weight, learn theirs round 1.
        ctx.broadcast(("w", ctx.weight))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index == 1:
            for sender, msg in inbox.items():
                self._weights[sender] = msg[1]
            for u in ctx.neighbors:
                a, b = min(ctx.node_id, u), max(ctx.node_id, u)
                self._knowledge.add(
                    (a, b, self._weights[a], self._weights[b])
                )
            ctx.broadcast(("k", tuple(sorted(self._knowledge))))
            return

        before = len(self._knowledge)
        for msg in inbox.values():
            if msg[0] == "k":
                self._knowledge.update(tuple(e) for e in msg[1])
        if len(self._knowledge) > before:
            ctx.broadcast(("k", tuple(sorted(self._knowledge))))
            return

        # Ball stopped growing: the component is fully known.  Solve.
        nodes = {}
        edges = []
        for a, b, wa, wb in self._knowledge:
            nodes[a] = wa
            nodes[b] = wb
            edges.append((a, b))
        nodes.setdefault(ctx.node_id, ctx.weight)
        graph = WeightedGraph.from_edges(nodes.keys(), edges, nodes)
        solution, _ = exact_max_weight_is(graph)
        ctx.halt(ctx.node_id in solution)


def local_exact_maxis(
    graph: WeightedGraph,
    *,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """Exact MaxIS in the LOCAL model via full-topology gossip.

    Requires a connected graph (per-component knowledge never merges) and
    an instance small enough for the exact solver.  Runs under the LOCAL
    policy by default; pass a strict CONGEST policy to watch it fail —
    which is exactly the observation that motivates the paper's CONGEST
    algorithms.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "local-exact"})
    if not is_connected(graph):
        raise GraphError("local_exact_maxis requires a connected graph")
    result = run(
        Network.of(graph, n_bound),
        GossipAndSolve,
        policy=policy or BandwidthPolicy.local(),
        seed=0,
    )
    chosen = frozenset(v for v, out in result.outputs.items() if out)
    return AlgorithmResult(
        independent_set=chosen,
        metrics=result.metrics,
        metadata={"algorithm": "local-exact",
                  "max_message_bits": result.metrics.max_message_bits},
    )
