"""The classical ranking algorithm and its sequential view (§5).

* :class:`BoppanaRanking` — Algorithm 2: each node draws a rank uniformly
  from ``{1, ..., 100·n̄^{c+2}}`` and joins iff its rank strictly beats
  every neighbour's.  One communication round; Theorem 11 gives
  ``|I| >= n/(8(Δ+1))`` with probability ``>= 1 − p − 1/n^c`` whenever
  ``Δ <= n/(256·log(1/p)) − 1``.
* :func:`seq_boppana` — Algorithm 3: draw vertices uniformly at random one
  at a time; a vertex joins iff none of its neighbours was drawn before it.
  Proposition 3: identical output distribution up to ``1/n^c`` TV distance.
* :func:`seq_boppana0` — Algorithm 5: the without-replacement variant.
* :func:`low_degree_maxis` — Theorem 5: boosting the ranking algorithm via
  Corollary 1 yields, for unweighted graphs with ``Δ <= n/log n``, an
  independent set of size ``>= n/((1+ε)(Δ+1))`` in ``O(1/ε)`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.boosting import boost
from repro.graphs.weighted_graph import WeightedGraph
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = [
    "BoppanaRanking",
    "boppana_is",
    "seq_boppana",
    "seq_boppana0",
    "SeqBoppanaTrajectory",
    "seq_boppana_trajectory",
    "low_degree_maxis",
    "theorem11_threshold_degree",
]

SeedLike = Union[int, None, np.random.SeedSequence]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class BoppanaRanking(NodeAlgorithm):
    """Algorithm 2 as a one-round node program.

    Ranks are drawn from ``{1, ..., 100·n̄^{c+2}}``; ties exclude both
    endpoints (the strict comparison of the paper).  Halt output: ``True``
    iff the node joined.
    """

    def __init__(self, c: int = 1) -> None:
        self._c = c
        self._rank = 0

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(True)
            return
        high = 100 * max(2, ctx.n_bound) ** (self._c + 2)
        self._rank = int(ctx.rng.integers(1, high + 1))
        ctx.broadcast(self._rank)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        ctx.halt(all(self._rank > r for r in inbox.values()))


def boppana_is(
    graph: WeightedGraph,
    *,
    c: int = 1,
    seed: SeedLike = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """Run the distributed ranking algorithm once.

    The returned set is independent but **not** maximal; in expectation it
    contains ``>= n/(Δ+1)`` nodes (Boppana; see also [17]), and Theorem 11
    upgrades that to a w.h.p. bound for ``Δ`` up to ``~n/log n``.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "boppana"})
    network = Network.of(graph, n_bound)
    result = run(network, lambda: BoppanaRanking(c=c), policy=policy, seed=seed)
    chosen = frozenset(v for v, out in result.outputs.items() if out)
    return AlgorithmResult(
        independent_set=chosen,
        metrics=result.metrics,
        metadata={"algorithm": "boppana", "c": c},
    )


def seq_boppana(graph: WeightedGraph, seed: SeedLike = None) -> FrozenSet[int]:
    """Algorithm 3: sample vertices *with* replacement, rejecting repeats.

    Equivalent in distribution to :func:`seq_boppana0`; kept separate
    because the paper states both and Proposition 3's proof walks through
    the chain Boppana → Boppana1 → SeqBoppana0 → SeqBoppana.
    """
    rng = _rng(seed)
    nodes = list(graph.nodes)
    drawn: set = set()
    chosen: set = set()
    while len(drawn) < len(nodes):
        u = nodes[int(rng.integers(0, len(nodes)))]
        if u in drawn:
            continue  # rejection of repeated samples
        if all(nbr not in drawn for nbr in graph.neighbors(u)):
            chosen.add(u)
        drawn.add(u)
    return frozenset(chosen)


def seq_boppana0(graph: WeightedGraph, seed: SeedLike = None) -> FrozenSet[int]:
    """Algorithm 5: scan a uniformly random permutation; a vertex joins iff
    it precedes all of its neighbours."""
    rng = _rng(seed)
    order = list(graph.nodes)
    rng.shuffle(order)
    drawn: set = set()
    chosen: set = set()
    for u in order:
        if all(nbr not in drawn for nbr in graph.neighbors(u)):
            chosen.add(u)
        drawn.add(u)
    return frozenset(chosen)


@dataclass(frozen=True)
class SeqBoppanaTrajectory:
    """The per-step view used in the §5 martingale analysis.

    ``increments[t]`` is ``|I_{t+1}| - |I_t|`` and
    ``join_probabilities[t]`` is ``Pr[v_{t+1} joins | I_t]`` (computed
    exactly from the eliminated-set size), so tests can rebuild the
    paper's martingale ``Y_t`` and check Proposition 4's conditions.
    """

    order: Sequence[int]
    increments: Sequence[int]
    join_probabilities: Sequence[float]
    independent_set: FrozenSet[int]

    def sizes(self) -> List[int]:
        out = [0]
        for inc in self.increments:
            out.append(out[-1] + inc)
        return out


def seq_boppana_trajectory(graph: WeightedGraph, seed: SeedLike = None) -> SeqBoppanaTrajectory:
    """Run Algorithm 5 while recording increments and join probabilities."""
    rng = _rng(seed)
    order = list(graph.nodes)
    rng.shuffle(order)
    drawn: set = set()
    eliminated: set = set()  # drawn nodes and their neighbours
    chosen: set = set()
    increments: List[int] = []
    probs: List[float] = []
    n = graph.n
    for u in order:
        # Pr[next uniform draw could still join] = 1 - |eliminated| / n.
        probs.append(max(0.0, 1.0 - len(eliminated) / n))
        if u not in eliminated and all(nbr not in drawn for nbr in graph.neighbors(u)):
            chosen.add(u)
            increments.append(1)
        else:
            increments.append(0)
        drawn.add(u)
        eliminated.add(u)
        eliminated.update(graph.neighbors(u))
    return SeqBoppanaTrajectory(
        order=tuple(order),
        increments=tuple(increments),
        join_probabilities=tuple(probs),
        independent_set=frozenset(chosen),
    )


def theorem11_threshold_degree(n: int, p: float) -> float:
    """The Theorem 11 degree threshold ``n/(256·log(1/p)) − 1``."""
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0,1), got {p}")
    return n / (256.0 * math.log(1.0 / p)) - 1.0


def low_degree_maxis(
    graph: WeightedGraph,
    eps: float,
    *,
    c: int = 1,
    phases: Optional[int] = None,
    seed: SeedLike = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """Theorem 5: boosted ranking for unweighted low-degree graphs.

    The graph is treated as unweighted (weights forced to 1, matching the
    theorem statement).  The ranking inner algorithm guarantees
    ``n/(8(Δ+1))`` w.h.p. (Theorem 11), i.e. ``c = 8(Δ+1)/Δ``; Corollary 1
    then gives ``|I| >= n/((1+ε)(Δ+1))`` w.h.p. in ``O(1/ε)`` rounds.
    Residual graphs stay unit-weight throughout (an independent-set
    reduction subtracts at least 1 from every touched unit weight), so the
    unweighted inner guarantee applies in every phase.
    """
    unweighted = graph.with_unit_weights()
    if unweighted.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"theorem": 5})
    delta = unweighted.max_degree
    c_inner = 8.0 * (delta + 1) / max(delta, 1)
    bound = Network.of(unweighted, n_bound).n_bound

    def inner(residual_graph: WeightedGraph, *, seed=None) -> AlgorithmResult:
        return boppana_is(residual_graph, c=c, seed=seed, policy=policy, n_bound=bound)

    result = boost(unweighted, inner, eps=eps, c=c_inner, phases=phases, seed=seed)
    return result.with_metadata(
        theorem=5,
        delta=delta,
        size_guarantee=unweighted.n / ((1.0 + eps) * (delta + 1)),
    )
