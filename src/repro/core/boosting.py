"""Theorem 10: boosting an ``O(Δ)``-approximation to ``(1+ε)Δ`` (§4.3).

Algorithm 1: run the inner black box ``A`` for ``t = ceil(c/ε)`` push
phases on the residual-weight graph (only nodes of positive residual
participate), applying the local-ratio reduction after each phase; then
greedily pop the stack.  If ``A`` always returns an independent set of
weight at least ``w(V)/(cΔ)`` on its input, the popped set is a
``(1+ε)Δ``-approximation (Lemma 6) and also has weight at least
``w(V) / ((1+ε)(Δ+1))`` (the Remark / Corollary 1).

Round accounting: ``Σ_i rounds(A on G_{w_i})`` plus one weight-reduction
round per push phase plus one round per pop phase.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.local_ratio import (
    StackFrame,
    apply_reduction,
    clip_nonnegative,
    pop_stage,
    stack_value,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs.spans import span
from repro.results import AlgorithmResult

__all__ = ["InnerApprox", "boost", "phases_for"]

# An inner approximation algorithm: runs on a (residual-weight) graph and
# returns an AlgorithmResult whose set has weight >= w(V)/(c*Δ).
InnerApprox = Callable[..., AlgorithmResult]


def phases_for(c: float, eps: float) -> int:
    """``t = ceil(c/ε)`` push phases (§4.3)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return max(1, math.ceil(c / eps))


def boost(
    graph: WeightedGraph,
    inner: InnerApprox,
    *,
    eps: float,
    c: float,
    phases: Optional[int] = None,
    adaptive: bool = False,
    seed: Union[int, None, np.random.SeedSequence] = None,
) -> AlgorithmResult:
    """Algorithm 1 with black box ``inner``.

    Args:
        graph: the input graph ``G_w``.
        inner: black box with signature ``inner(graph, *, seed) ->
            AlgorithmResult`` guaranteeing weight ``>= w(V)/(cΔ)``.
        eps: the approximation slack ``ε``.
        c: the inner guarantee constant (e.g. ``4(Δ+1)/Δ`` for Theorem 8).
        phases: override the phase count ``t`` (defaults to ``ceil(c/ε)``).
        adaptive: stop pushing as soon as the residual total weight drops
            to ``ε/(1+ε) · max_v w(v)``.  Since ``OPT >= max_v w(v)``,
            this lands in Lemma 6's case 1 directly, so the ``(1+ε)Δ``
            guarantee is preserved while skewed instances finish in far
            fewer phases.  (An extension beyond the paper's fixed
            ``t = c/ε`` schedule; off by default.)
        seed: master seed; each phase gets an independent child seed.

    Returns:
        The popped independent set; metadata holds the per-phase log and
        the Proposition 2 stack value.
    """
    t = phases if phases is not None else phases_for(c, eps)
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    phase_seeds = ss.spawn(max(t, 1))
    stop_threshold = (
        eps / (1.0 + eps) * graph.max_weight() if adaptive else 0.0
    )

    weights: Dict[int, float] = graph.weights
    stack: List[StackFrame] = []
    phase_log: List[Dict[str, Any]] = []

    with span("boost") as sp:
        for i in range(t):
            positive = [v for v, w in weights.items() if w > 0]
            if not positive:
                break
            if adaptive and sum(weights[v] for v in positive) <= stop_threshold:
                break
            residual_graph = graph.induced_subgraph(positive).with_weights(
                {v: weights[v] for v in positive}
            )
            with span(f"push[{i}]") as ph:
                result = inner(residual_graph, seed=phase_seeds[i])
                ph.add(result.metrics)
                weights, frame = apply_reduction(
                    graph, weights, result.independent_set
                )
                weights = clip_nonnegative(weights)
                stack.append(frame)
                # Members of I_i broadcast their pushed weight.
                ph.add_rounds(1, name="reduce-broadcast")
            sp.add(ph.metrics())

            residual_total = residual_graph.total_weight()
            phase_log.append({
                "phase": i,
                "active_nodes": residual_graph.n,
                "active_weight": residual_total,
                "pushed_nodes": len(frame.independent_set),
                "pushed_value": frame.value,
                "inner_fraction": (frame.value / residual_total) if residual_total > 0 else 1.0,
                "inner_rounds": result.rounds,
            })

        independent_set = pop_stage(graph, stack)
        # One conflict-announcement round per pop phase.
        sp.add_rounds(len(stack), name="pop")

    return AlgorithmResult(
        independent_set=independent_set,
        metrics=sp.metrics(),
        metadata={
            "phases_requested": t,
            "phases_executed": len(stack),
            "stack_value": stack_value(stack),
            "phase_log": phase_log,
            "eps": eps,
            "c": c,
            "adaptive": adaptive,
            "residual_weight_left": sum(weights.values()),
        },
    )
