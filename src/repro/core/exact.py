"""Exact maximum-weight independent set for small instances.

Branch and bound with the standard reductions:

* component decomposition (independent sub-problems);
* degree-0 inclusion and weighted degree-1 domination
  (a leaf ``u`` with ``w(u) >= w(v)`` for its only neighbour ``v`` is
  always safe to take);
* branching on a maximum-degree node with the trivial ``Σ remaining
  weights`` upper bound, plus a greedy-residual refinement.

Intended for ``n`` up to a few dozen per connected component — enough to
certify the approximation factors of Theorems 1–3 on test instances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.exceptions import SolverLimitError
from repro.graphs.weighted_graph import WeightedGraph
from repro.graphs.properties import connected_components

__all__ = ["exact_max_weight_is", "exact_max_is_size", "exact_max_weight_clique"]

_DEFAULT_LIMIT = 120


def exact_max_weight_is(
    graph: WeightedGraph, *, limit_nodes: int = _DEFAULT_LIMIT
) -> Tuple[FrozenSet[int], float]:
    """The optimum independent set and its weight.

    Args:
        graph: input graph (weights may be zero; zero-weight nodes are
            harmless but never required in the optimum).
        limit_nodes: guard against accidentally huge instances; raises
            :class:`~repro.exceptions.SolverLimitError` beyond it.

    Returns:
        ``(optimal_set, optimal_weight)``.
    """
    if graph.n > limit_nodes:
        raise SolverLimitError(
            f"exact solver limited to {limit_nodes} nodes, got {graph.n}"
        )
    best_total: Set[int] = set()
    total = 0.0
    for comp in connected_components(graph):
        sub = graph.induced_subgraph(comp)
        sub_set, sub_w = _solve_component(sub)
        best_total.update(sub_set)
        total += sub_w
    return frozenset(best_total), total


def exact_max_is_size(graph: WeightedGraph, *, limit_nodes: int = _DEFAULT_LIMIT) -> int:
    """The maximum *cardinality* of an independent set (unit weights)."""
    s, w = exact_max_weight_is(graph.with_unit_weights(), limit_nodes=limit_nodes)
    return len(s)


def exact_max_weight_clique(
    graph: WeightedGraph, *, limit_nodes: int = _DEFAULT_LIMIT
) -> Tuple[FrozenSet[int], float]:
    """The maximum-weight clique, solved as MaxWIS of the complement."""
    from repro.graphs.properties import complement

    return exact_max_weight_is(complement(graph), limit_nodes=limit_nodes)


def _solve_component(graph: WeightedGraph) -> Tuple[Set[int], float]:
    adj: Dict[int, Set[int]] = {v: set(graph.neighbors(v)) for v in graph.nodes}
    weights = {v: graph.weight(v) for v in graph.nodes}
    best: List[float] = [-1.0]
    best_set: List[Set[int]] = [set()]

    def branch(active: Set[int], current: Set[int], value: float) -> None:
        # Reductions: repeatedly peel degree-0 / dominant degree-1 nodes.
        active = set(active)
        current = set(current)
        changed = True
        while changed:
            changed = False
            for v in list(active):
                if v not in active:
                    continue  # removed by an earlier fold in this sweep
                deg_nbrs = [u for u in adj[v] if u in active]
                if not deg_nbrs:
                    current.add(v)
                    value += weights[v]
                    active.discard(v)
                    changed = True
                elif len(deg_nbrs) == 1 and weights[v] >= weights[deg_nbrs[0]]:
                    current.add(v)
                    value += weights[v]
                    active.discard(v)
                    active.discard(deg_nbrs[0])
                    changed = True
        if not active:
            if value > best[0]:
                best[0] = value
                best_set[0] = current
            return
        # Upper bound: take everything that remains.
        if value + sum(weights[v] for v in active) <= best[0]:
            return
        # Branch on the max-degree active node.
        v = max(active, key=lambda x: (sum(1 for u in adj[x] if u in active), weights[x]))
        nbrs = {u for u in adj[v] if u in active}
        # Include v.
        branch(active - nbrs - {v}, current | {v}, value + weights[v])
        # Exclude v (then some neighbour of v may as well be in — but the
        # plain exclusion branch keeps correctness simple).
        branch(active - {v}, current, value)

    branch(set(graph.nodes), set(), 0.0)
    return best_set[0], max(best[0], 0.0)
