"""Theorem 8: an ``O(MIS(n, Δ))``-round ``O(Δ)``-approximation (§4.1).

A node ``v`` is **good** when ``w(v) >= (1 / (2(δ(v)+1))) · Σ_{u ∈ N+(v)} w(u)``,
where ``δ(v)`` is the maximum degree in its inclusive neighbourhood.  Lemma 1:
any MIS of the subgraph induced by good nodes has weight at least
``w(V) / (4(Δ+1))``.

Distributed cost: two rounds to discover goodness (degrees+weights, then
good flags) plus one MIS black-box run on the good subgraph.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.interface import MISBlackBox, get_mis_blackbox
from repro.obs.spans import span
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["GoodNodesProtocol", "good_nodes_approx", "good_node_set"]


class GoodNodesProtocol(NodeAlgorithm):
    """Two-round protocol computing each node's good/bad status.

    Halt output: ``True`` iff the node is good.
    """

    def __init__(self) -> None:
        self._sum_inclusive = 0.0
        self._delta = 0

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast((ctx.degree, ctx.weight))

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        degrees = [msg[0] for msg in inbox.values()]
        weights = [msg[1] for msg in inbox.values()]
        self._delta = max(degrees + [ctx.degree])
        self._sum_inclusive = sum(weights) + ctx.weight
        good = ctx.weight >= self._sum_inclusive / (2.0 * (self._delta + 1))
        ctx.halt(bool(good))


def good_node_set(graph: WeightedGraph) -> frozenset:
    """Centralized reference computation of the good-node set (for tests)."""
    good = set()
    for v in graph.nodes:
        delta = max([graph.degree(u) for u in graph.inclusive_neighbors(v)])
        total = sum(graph.weight(u) for u in graph.inclusive_neighbors(v))
        if graph.weight(v) >= total / (2.0 * (delta + 1)):
            good.add(v)
    return frozenset(good)


def good_nodes_approx(
    graph: WeightedGraph,
    *,
    mis: Union[str, MISBlackBox] = "luby",
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """Run Theorem 8's algorithm end to end.

    Returns an independent set of weight at least ``w(V) / (4(Δ+1))``
    (Lemma 1 — a worst-case guarantee given a correct MIS black box).
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"good_nodes": 0})

    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    seed_flags, seed_mis = ss.spawn(2)

    network = Network.of(graph, n_bound)
    with span("good-nodes") as sp:
        flag_run = run(network, GoodNodesProtocol, policy=policy, seed=seed_flags)
        good = frozenset(v for v, is_good in flag_run.outputs.items() if is_good)
        sp.add(flag_run.metrics, name="flag-exchange")
        # One extra round: good nodes announce their status so each learns
        # its good neighbours before the MIS starts.
        sp.add_rounds(1, name="announce-good")

        subgraph = graph.induced_subgraph(good)
        blackbox = get_mis_blackbox(mis)
        mis_result = blackbox(
            subgraph,
            seed=seed_mis,
            policy=policy,
            n_bound=network.n_bound,
            max_rounds=max_rounds,
        )
        sp.add(mis_result.metrics)
    return AlgorithmResult(
        independent_set=mis_result.independent_set,
        metrics=sp.metrics(),
        metadata={
            "good_nodes": len(good),
            "mis_rounds": mis_result.rounds,
            "mis_algorithm": mis_result.metadata.get("algorithm"),
            "guarantee_denominator": 4.0 * (graph.max_degree + 1),
        },
    )
