"""Theorem 1: a deterministic ``O(MIS(n,Δ)/ε)``-round ``(1+ε)Δ``-approximation.

Pipeline: Theorem 8's good-nodes ``O(Δ)``-approximation (inner guarantee
``w(V)/(4(Δ+1))``, i.e. ``c = 4(Δ+1)/Δ``) boosted through Algorithm 1.
With the deterministic local-minima MIS black box the whole pipeline is
deterministic; any randomized black box makes it randomized — exactly the
paper's "depends on the MIS algorithm that is run as a black-box".
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.boosting import boost
from repro.core.good_nodes import good_nodes_approx
from repro.graphs.weighted_graph import WeightedGraph
from repro.mis.interface import MISBlackBox
from repro.obs.spans import span
from repro.results import AlgorithmResult
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network

__all__ = ["theorem1_maxis"]


def theorem1_maxis(
    graph: WeightedGraph,
    eps: float,
    *,
    mis: Union[str, MISBlackBox] = "deterministic",
    phases: Optional[int] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
) -> AlgorithmResult:
    """``(1+ε)Δ``-approximate MaxIS via good nodes + boosting.

    The returned set satisfies ``w(I) >= OPT / ((1+ε)Δ)`` and
    ``w(I) >= w(V) / ((1+ε)(Δ+1))`` (Lemma 6 and the Remark) whenever the
    MIS black box is correct — for the deterministic black box this is a
    worst-case guarantee, not a probabilistic one.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"theorem": 1})
    delta = graph.max_degree
    c = 4.0 * (delta + 1) / max(delta, 1)
    # Residual phases inherit the *original* graph's knowledge bound: the
    # paper's nodes know a poly bound on n, not on the residual subgraph.
    bound = Network.of(graph, n_bound).n_bound

    def inner(residual_graph: WeightedGraph, *, seed=None) -> AlgorithmResult:
        return good_nodes_approx(
            residual_graph,
            mis=mis,
            seed=seed,
            policy=policy,
            n_bound=bound,
        )

    with span("theorem1") as sp:
        result = boost(graph, inner, eps=eps, c=c, phases=phases, seed=seed)
        sp.add(result.metrics)
    result = AlgorithmResult(result.independent_set, sp.metrics(),
                             result.metadata)
    return result.with_metadata(theorem=1, delta=delta,
                                guarantee_factor=(1.0 + eps) * max(delta, 1))
