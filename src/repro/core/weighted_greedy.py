"""Distributed heaviest-first greedy — the natural first attempt at
distributed weighted MaxIS, and why the paper improves on it.

Rule: an undecided node joins the independent set when its ``(weight, id)``
pair beats every undecided neighbour's.  This emulates the sequential
heaviest-first greedy exactly (same output set), so it inherits its
Δ-approximation guarantee — but its round complexity is the length of the
longest strictly-decreasing ``(weight, id)`` neighbour chain, which an
adversary makes ``Θ(n)`` (a path with decreasing weights).  The paper's
point of departure: weighted greedy order is inherently sequential, so
beating it needs the local-ratio/sparsification machinery instead.

Exposed as a baseline (`E5`-adjacent) and as a worked example of how a
"natural" algorithm fails the round-complexity bar while passing the
approximation bar.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Optional, Union

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.results import AlgorithmResult
from repro.simulator.algorithm import NodeAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.metrics import RunMetrics
from repro.simulator.models import BandwidthPolicy
from repro.simulator.network import Network
from repro.simulator.runner import run

__all__ = ["WeightedGreedy", "weighted_greedy_maxis", "greedy_chain_graph"]

_CLAIM = 0
_IN = 1
_OUT = 2


class WeightedGreedy(NodeAlgorithm):
    """Node program for distributed heaviest-first greedy.

    Two-round phases with the silent-neighbour discipline: undecided nodes
    re-announce ``(weight, id)`` each phase; local maxima join and halt;
    their neighbours announce OUT and halt.  Halt output: membership bool.
    """

    def __init__(self) -> None:
        self._undecided_neighbors: Optional[set] = None

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(True)
            return
        self._undecided_neighbors = set(ctx.neighbors)
        ctx.broadcast((_CLAIM, ctx.weight))

    @staticmethod
    def _priority(weight: float, node_id: int):
        # Heavier first; ties broken toward the smaller id — exactly the
        # scan order of the sequential heaviest-first greedy.
        return (weight, -node_id)

    def on_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if ctx.round_index % 2 == 1:
            self._decide(ctx, inbox)
        else:
            self._claim_round(ctx, inbox)

    def _claim_round(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for sender, msg in inbox.items():
            if msg[0] == _IN:
                ctx.broadcast((_OUT,))
                ctx.halt(False)
                return
            if msg[0] == _OUT:
                self._undecided_neighbors.discard(sender)
        ctx.broadcast((_CLAIM, ctx.weight))

    def _decide(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        mine = self._priority(ctx.weight, ctx.node_id)
        claims = [
            self._priority(msg[1], sender)
            for sender, msg in inbox.items()
            if msg[0] == _CLAIM and sender in self._undecided_neighbors
        ]
        if all(mine > other for other in claims):
            ctx.broadcast((_IN,))
            ctx.halt(True)


def weighted_greedy_maxis(
    graph: WeightedGraph,
    *,
    seed: Union[int, None, np.random.SeedSequence] = None,
    policy: Optional[BandwidthPolicy] = None,
    n_bound: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """Distributed heaviest-first greedy (Δ-approximation, Θ(n) worst case).

    Deterministic: produces exactly the sequential heaviest-first greedy
    set (ties by id), which the tests assert against
    :func:`repro.core.baselines.greedy_maxis`.
    """
    if graph.n == 0:
        return AlgorithmResult(frozenset(), RunMetrics(), {"algorithm": "weighted-greedy"})
    network = Network.of(graph, n_bound)
    result = run(
        network,
        WeightedGreedy,
        policy=policy,
        seed=seed,
        max_rounds=max_rounds if max_rounds is not None else 4 * graph.n + 64,
    )
    chosen = frozenset(v for v, out in result.outputs.items() if out)
    return AlgorithmResult(
        independent_set=chosen,
        metrics=result.metrics,
        metadata={"algorithm": "weighted-greedy"},
    )


def greedy_chain_graph(n: int) -> WeightedGraph:
    """The adversarial instance: a path with strictly decreasing weights.

    Heaviest-first greedy must decide the nodes one after another down the
    chain, so :func:`weighted_greedy_maxis` pays ``Θ(n)`` rounds here —
    the instance behind the "inherently sequential" remark above.
    """
    from repro.graphs.generators import path

    return path(n).with_weights({v: float(n - v) for v in range(n)})
