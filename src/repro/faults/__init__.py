"""Fault injection for the CONGEST/LOCAL simulator.

The paper assumes perfectly reliable synchronous delivery; this package
relaxes that assumption deterministically.  :mod:`repro.faults.plans`
defines the fault vocabulary — message loss, bounded delay, duplication,
fail-stop crashes, and composites — and :mod:`repro.faults.harness`
measures how the algorithm stack degrades under it.

Entry points: ``run(..., faults=plan)``, the ambient
:func:`repro.simulator.instrument.install_faults` registry, and the
``repro run --loss/--delay/--dup/--crash`` / ``repro resilience`` CLI.
See ``docs/faults.md`` for the fault model and determinism contract.
"""

from repro.faults.plans import (CompositeFaults, CrashSchedule, FaultPlan,
                                FaultSession, MessageDelay,
                                MessageDuplication, MessageLoss, composite,
                                fault_generator, parse_crash_spec)

__all__ = [
    "FaultPlan",
    "MessageLoss",
    "MessageDelay",
    "MessageDuplication",
    "CrashSchedule",
    "CompositeFaults",
    "composite",
    "FaultSession",
    "fault_generator",
    "parse_crash_spec",
    "ResilienceCell",
    "ResilienceReport",
    "resilience_sweep",
]


def __getattr__(name: str):
    # The harness pulls in the batch engine and the verification stack;
    # keep `import repro.faults` (what the runner's fault path triggers)
    # free of that weight until a resilience sweep actually runs.
    if name in ("ResilienceCell", "ResilienceReport", "resilience_sweep"):
        from repro.faults import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
