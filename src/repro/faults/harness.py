"""Resilience harness: what the paper's guarantees are worth on a bad
network.

The theorems certify outputs under perfectly reliable delivery; this
module *measures* what survives when delivery is not reliable.  For each
``(algorithm, fault plan)`` cell of a sweep it re-validates the returned
sets from scratch — is the output still an independent set at all? what
fraction of the fault-free weight does it retain? — and reports
degradation curves over the plan axis.

Everything runs through the batch engine, so sweeps parallelise, memoize
(the fault plan is part of the cache key via
:attr:`~repro.simulator.batch.BatchJob.algorithm_name`), and emit
per-job JSONL through the ambient outcome emitters exactly like
``repro sweep``.  Determinism: all cells of one sweep share the same
per-trial seed list derived from ``master_seed``, so the baseline and
every faulted variant of trial ``i`` run the algorithm on identical
private coins — the *only* difference is the injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.verify import is_independent
from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.batch import (BatchJob, BatchResult, batch_run,
                                   derive_job_seeds)
from repro.simulator.models import BandwidthPolicy

from repro.faults.plans import FaultPlan

__all__ = ["ResilienceCell", "ResilienceReport", "resilience_sweep"]

BASELINE = "none"  # plan label of the fault-free reference cell


@dataclass(frozen=True)
class ResilienceCell:
    """Degradation summary of one ``(algorithm, fault plan)`` cell."""

    algorithm: str
    plan: str                   # FaultPlan.describe(), or ``"none"``
    trials: int
    ok: int                     # jobs that completed without raising
    failed: int                 # jobs that raised (incl. round-limit)
    valid: int                  # completed outputs that are independent
    mean_weight: float          # over valid outputs
    mean_retention: float       # valid weight / baseline weight, per seed
    p50_rounds: float
    mean_fault_drops: float
    mean_crashes: float

    @property
    def valid_fraction(self) -> float:
        return self.valid / self.trials if self.trials else 0.0

    def to_doc(self) -> Dict[str, Any]:
        return {
            "type": "resilience_cell",
            "algorithm": self.algorithm,
            "plan": self.plan,
            "trials": self.trials,
            "ok": self.ok,
            "failed": self.failed,
            "valid": self.valid,
            "valid_fraction": self.valid_fraction,
            "mean_weight": self.mean_weight,
            "mean_retention": self.mean_retention,
            "p50_rounds": self.p50_rounds,
            "mean_fault_drops": self.mean_fault_drops,
            "mean_crashes": self.mean_crashes,
        }


@dataclass(frozen=True)
class ResilienceReport:
    """All cells of one sweep plus the raw batch result."""

    cells: Tuple[ResilienceCell, ...]
    batch: BatchResult
    master_seed: Optional[int]
    trials: int

    def cell(self, algorithm: str, plan: str) -> ResilienceCell:
        for c in self.cells:
            if c.algorithm == algorithm and c.plan == plan:
                return c
        raise KeyError(f"no cell ({algorithm!r}, {plan!r})")

    def to_docs(self) -> List[Dict[str, Any]]:
        docs: List[Dict[str, Any]] = [{
            "type": "resilience",
            "master_seed": self.master_seed,
            "trials": self.trials,
            "cells": len(self.cells),
        }]
        docs.extend(c.to_doc() for c in self.cells)
        return docs

    def render(self) -> str:
        """The degradation table the CLI prints."""
        header = (f"{'algorithm':<18}  {'faults':<24}  {'trials':>6}  "
                  f"{'ok':>4}  {'valid':>5}  {'retention':>9}  "
                  f"{'p50 rounds':>10}  {'lost/run':>9}")
        lines = [header, "-" * len(header)]
        for c in self.cells:
            lines.append(
                f"{c.algorithm:<18}  {c.plan:<24}  {c.trials:>6}  "
                f"{c.ok:>4}  {c.valid:>5}  {c.mean_retention:>8.1%}  "
                f"{c.p50_rounds:>10.1f}  {c.mean_fault_drops:>9.1f}"
            )
        return "\n".join(lines)


def _percentile(values: List[float], q: float) -> float:
    from repro.obs.aggregate import percentile
    return percentile(values, q)


def resilience_sweep(
    graph: WeightedGraph,
    algorithms: Sequence[str],
    plans: Sequence[Optional[FaultPlan]],
    *,
    trials: int = 5,
    master_seed: Optional[int] = 0,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[BandwidthPolicy] = None,
    params: Optional[Dict[str, Dict[str, Any]]] = None,
) -> ResilienceReport:
    """Measure each algorithm's degradation across a fault-plan axis.

    Args:
        graph: the instance every cell runs on.
        algorithms: batch-registry names (``"thm2"``, ``"thm8"``, ...).
        plans: the fault axis; ``None`` entries mean the fault-free
            baseline.  A baseline is always included (prepended if
            missing) because retention is measured against it.
        trials: independent seeds per cell.  Every cell uses the *same*
            seed list, so the baseline and each faulted variant of trial
            ``i`` differ only in the injected faults.
        master_seed: root of the per-trial seed derivation.
        n_jobs / cache_dir / policy: forwarded to
            :func:`~repro.simulator.batch.batch_run`.
        params: optional per-algorithm keyword arguments,
            ``{algorithm_name: {kwarg: value}}``.

    Returns:
        A :class:`ResilienceReport`; cells appear in
        ``algorithms × plans`` order, baseline plan first.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not algorithms:
        raise ValueError("no algorithms given")
    plan_axis: List[Optional[FaultPlan]] = list(plans)
    if not any(p is None for p in plan_axis):
        plan_axis.insert(0, None)
    seen_plans = set()
    for p in plan_axis:
        desc = BASELINE if p is None else p.describe()
        if desc in seen_plans:
            raise ValueError(f"duplicate fault plan {desc!r} in sweep")
        seen_plans.add(desc)

    seeds = derive_job_seeds(master_seed, trials)
    params = params or {}

    jobs: List[BatchJob] = []
    index_of: Dict[Tuple[str, str, int], int] = {}
    for name in algorithms:
        for plan in plan_axis:
            desc = BASELINE if plan is None else plan.describe()
            for t, seed in enumerate(seeds):
                index_of[(name, desc, t)] = len(jobs)
                jobs.append(BatchJob(
                    graph=graph,
                    algorithm=name,
                    seed=seed,
                    params=dict(params.get(name, {})),
                    label=f"{desc}#t{t}",
                    faults=plan,
                ))

    batch = batch_run(jobs, master_seed=master_seed, n_jobs=n_jobs,
                      cache_dir=cache_dir, policy=policy)

    cells: List[ResilienceCell] = []
    for name in algorithms:
        baseline_weight: Dict[int, float] = {}
        for t in range(trials):
            o = batch.outcomes[index_of[(name, BASELINE, t)]]
            if o.ok:
                baseline_weight[t] = o.weight
        for plan in plan_axis:
            desc = BASELINE if plan is None else plan.describe()
            ok = failed = valid = 0
            weights: List[float] = []
            retentions: List[float] = []
            rounds: List[float] = []
            drops: List[float] = []
            crashes: List[float] = []
            for t in range(trials):
                o = batch.outcomes[index_of[(name, desc, t)]]
                if not o.ok:
                    failed += 1
                    continue
                ok += 1
                if o.metrics is not None:
                    rounds.append(float(o.metrics.rounds))
                    drops.append(float(o.metrics.fault_dropped_messages))
                    crashes.append(float(o.metrics.crashed_nodes))
                # Re-validate from scratch: under faults an algorithm may
                # return a set that is not independent at all (e.g. a lost
                # MIS announcement lets two neighbours both join).
                if not is_independent(graph, o.independent_set):
                    continue
                valid += 1
                weights.append(o.weight)
                base = baseline_weight.get(t)
                if base is not None and base > 0:
                    retentions.append(o.weight / base)
            cells.append(ResilienceCell(
                algorithm=name,
                plan=desc,
                trials=trials,
                ok=ok,
                failed=failed,
                valid=valid,
                mean_weight=sum(weights) / len(weights) if weights else 0.0,
                mean_retention=(sum(retentions) / len(retentions)
                                if retentions else 0.0),
                p50_rounds=_percentile(rounds, 50),
                mean_fault_drops=sum(drops) / len(drops) if drops else 0.0,
                mean_crashes=sum(crashes) / len(crashes) if crashes else 0.0,
            ))

    return ResilienceReport(cells=tuple(cells), batch=batch,
                            master_seed=master_seed, trials=trials)
