"""Deterministic fault plans: what can go wrong on the wire, and when.

The paper's model (§3) assumes perfectly reliable synchronous delivery —
every message queued in round ``r`` arrives in round ``r + 1``.  A
:class:`FaultPlan` relaxes exactly that assumption while keeping the
execution *round-synchronous and reproducible*: messages may be lost,
deferred to a later round, duplicated, and nodes may fail-stop (and
optionally come back), but the whole fault pattern is a pure function of
``(master seed, plan)``.

Determinism contract
--------------------

All fault randomness is drawn from one dedicated stream spawned from the
run's master seed (:func:`fault_generator`), on a spawn key disjoint from
every per-node stream.  Consequences:

* the same ``seed`` + the same plan reproduce the same faulted execution,
  message for message;
* node programs see exactly the same private coins they would see in a
  fault-free run — faults perturb *delivery*, never the algorithm's own
  randomness;
* a run with ``faults=None`` never touches the stream, so fault-free runs
  are byte-identical to a build without this module.

Plans compose with :func:`composite`: each sub-plan transforms the
multiset of scheduled deliveries of a message in order (loss filters,
delay shifts, duplication forks), and crash schedules union.  Plans are
immutable, stateless and picklable, so the batch engine ships them to
worker processes unchanged; per-run state lives in the
:class:`FaultSession` the runner opens via :meth:`FaultPlan.begin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "FaultPlan",
    "MessageLoss",
    "MessageDelay",
    "MessageDuplication",
    "CrashSchedule",
    "CompositeFaults",
    "composite",
    "FaultSession",
    "fault_generator",
    "parse_crash_spec",
]

SeedLike = Union[int, None, np.random.SeedSequence]

# Spawn-key component of the fault stream.  Per-node streams occupy keys
# 0 .. n-1 under the same root; this constant keeps the fault stream
# disjoint from them for any conceivable network size.
_FAULT_SPAWN_KEY = 0x666C7479  # "flty"


def fault_generator(seed: SeedLike) -> np.random.Generator:
    """The dedicated fault RNG for a run seeded with ``seed``.

    Derived from the same entropy as the per-node streams but on spawn
    key ``(_FAULT_SPAWN_KEY,)``, so it is statistically independent of
    every node's private coins and never perturbs them.
    """
    base = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    ss = np.random.SeedSequence(
        entropy=base.entropy,
        spawn_key=tuple(base.spawn_key) + (_FAULT_SPAWN_KEY,),
    )
    return np.random.default_rng(ss)


class FaultPlan:
    """Base class of all fault plans.

    A plan is an immutable description; :meth:`begin` opens the mutable
    per-run :class:`FaultSession` the runner consults.  Subclasses
    override :meth:`transform` (message fates) and/or :meth:`crash_spec`
    (fail-stop schedule), plus :meth:`describe` (the stable string used
    in cache keys and emitted records).
    """

    def transform(self, delays: Tuple[int, ...],
                  rng: np.random.Generator) -> Tuple[int, ...]:
        """Map the scheduled delivery delays of one message to new ones.

        The input starts as ``(0,)`` (one copy, delivered next round);
        an empty result means the message is lost.  Implementations must
        draw from ``rng`` in a deterministic per-copy order.
        """
        return delays

    def crash_spec(self) -> Dict[int, Tuple[int, Optional[int]]]:
        """``{node: (crash_round, restart_round_or_None)}`` of this plan."""
        return {}

    def describe(self) -> str:
        """Stable, human-readable identity (cache keys, JSONL records)."""
        raise NotImplementedError

    def begin(self, rng: np.random.Generator) -> "FaultSession":
        """Open the per-run session driven by ``rng``."""
        return FaultSession(plans=(self,), rng=rng,
                            crashes=self.crash_spec())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


@dataclass(frozen=True, repr=False)
class MessageLoss(FaultPlan):
    """Drop each message copy independently with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.p}")

    def transform(self, delays, rng):
        if self.p <= 0.0:
            return delays
        return tuple(d for d in delays if rng.random() >= self.p)

    def describe(self) -> str:
        return f"loss({self.p:g})"


@dataclass(frozen=True, repr=False)
class MessageDelay(FaultPlan):
    """Defer each copy by a uniform 0..``max_rounds`` extra rounds.

    Delivery stays round-synchronous: a message queued in round ``r``
    with drawn delay ``d`` arrives at the start of round ``r + 1 + d``.
    ``p`` is the probability a copy is delayed at all (default: every
    copy draws a delay).
    """

    max_rounds: int
    p: float = 1.0

    def __post_init__(self) -> None:
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"delay probability must be in [0, 1], got {self.p}")

    def transform(self, delays, rng):
        if self.max_rounds == 0 or self.p <= 0.0:
            return delays
        out = []
        for d in delays:
            if self.p >= 1.0 or rng.random() < self.p:
                d += int(rng.integers(0, self.max_rounds + 1))
            out.append(d)
        return tuple(out)

    def describe(self) -> str:
        suffix = "" if self.p >= 1.0 else f",p={self.p:g}"
        return f"delay({self.max_rounds}{suffix})"


@dataclass(frozen=True, repr=False)
class MessageDuplication(FaultPlan):
    """With probability ``p`` deliver an extra copy one round later."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"dup probability must be in [0, 1], got {self.p}")

    def transform(self, delays, rng):
        if self.p <= 0.0:
            return delays
        out = []
        for d in delays:
            out.append(d)
            if rng.random() < self.p:
                out.append(d + 1)
        return tuple(out)

    def describe(self) -> str:
        return f"dup({self.p:g})"


@dataclass(frozen=True, repr=False)
class CrashSchedule(FaultPlan):
    """Fail-stop nodes at chosen rounds, optionally restarting later.

    ``crashes`` maps node id → the first round the node is *down* (it
    does not execute that round, sends nothing, and messages delivered
    to it while down are lost).  ``restarts`` optionally maps node id →
    the round it resumes executing, with its program state preserved —
    modelling a pause/partition rather than amnesia.  A node without a
    restart is removed from the run; it never halts and its output stays
    ``None``.
    """

    crashes: Mapping[int, int] = field(default_factory=dict)
    restarts: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze to plain dicts for hashing/pickling stability.
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "restarts", dict(self.restarts))
        for v, r in self.crashes.items():
            if r < 1:
                raise ValueError(f"crash round for node {v} must be >= 1, got {r}")
        for v, r in self.restarts.items():
            if v not in self.crashes:
                raise ValueError(f"restart for node {v} without a crash")
            if r <= self.crashes[v]:
                raise ValueError(
                    f"node {v} restarts at round {r} but crashes at "
                    f"{self.crashes[v]}; restart must come strictly later"
                )

    def crash_spec(self):
        return {v: (r, self.restarts.get(v)) for v, r in self.crashes.items()}

    def describe(self) -> str:
        parts = []
        for v in sorted(self.crashes):
            restart = self.restarts.get(v)
            parts.append(f"{v}@{self.crashes[v]}"
                         + (f"/r{restart}" if restart is not None else ""))
        return f"crash({','.join(parts)})"


@dataclass(frozen=True, repr=False)
class CompositeFaults(FaultPlan):
    """Stack several plans: fates fold left-to-right, crashes union."""

    plans: Tuple[FaultPlan, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "plans", tuple(self.plans))
        seen: Dict[int, str] = {}
        for plan in self.plans:
            for v in plan.crash_spec():
                if v in seen:
                    raise ValueError(
                        f"node {v} appears in two crash schedules "
                        f"({seen[v]} and {plan.describe()})"
                    )
                seen[v] = plan.describe()

    def transform(self, delays, rng):
        for plan in self.plans:
            delays = plan.transform(delays, rng)
            if not delays:
                break
        return delays

    def crash_spec(self):
        merged: Dict[int, Tuple[int, Optional[int]]] = {}
        for plan in self.plans:
            merged.update(plan.crash_spec())
        return merged

    def describe(self) -> str:
        return "+".join(p.describe() for p in self.plans) or "none"


def composite(*plans: FaultPlan) -> FaultPlan:
    """Stack plans into one; a single plan passes through unchanged."""
    flat = []
    for plan in plans:
        if isinstance(plan, CompositeFaults):
            flat.extend(plan.plans)
        else:
            flat.append(plan)
    if len(flat) == 1:
        return flat[0]
    return CompositeFaults(tuple(flat))


class FaultSession:
    """Per-run fault state: the RNG cursor plus the crash timetable.

    Opened by the runner via :meth:`FaultPlan.begin`; never shared
    between runs (each ``run()`` derives a fresh one from its own seed).
    """

    __slots__ = ("_plans", "_rng", "_crashes")

    def __init__(self, plans: Sequence[FaultPlan], rng: np.random.Generator,
                 crashes: Mapping[int, Tuple[int, Optional[int]]]):
        self._plans = tuple(plans)
        self._rng = rng
        self._crashes = dict(crashes)

    def message_fate(self, round_index: int, sender: int,
                     receiver: int) -> Tuple[int, ...]:
        """Delivery delays of every surviving copy of one message.

        ``()`` means the message is lost; a value ``d`` schedules a copy
        for round ``round_index + 1 + d``.  Consumes the fault stream in
        message order, which the runner keeps deterministic.
        """
        delays: Tuple[int, ...] = (0,)
        for plan in self._plans:
            delays = plan.transform(delays, self._rng)
            if not delays:
                return ()
        return delays

    # -------------------------------------------------------------- #
    # crash timetable (static: decidable at send time)
    # -------------------------------------------------------------- #

    def down_at(self, node: int, round_index: int) -> bool:
        """Is ``node`` failed during ``round_index``?"""
        spec = self._crashes.get(node)
        if spec is None:
            return False
        crash, restart = spec
        if round_index < crash:
            return False
        return restart is None or round_index < restart

    def never_returns(self, node: int, round_index: int) -> bool:
        """Down at ``round_index`` with no restart ever coming."""
        spec = self._crashes.get(node)
        if spec is None:
            return False
        crash, restart = spec
        return round_index >= crash and restart is None

    def crashed_this_round(self, round_index: int) -> Tuple[int, ...]:
        """Nodes whose down-time starts exactly at ``round_index``."""
        return tuple(sorted(
            v for v, (crash, _restart) in self._crashes.items()
            if crash == round_index
        ))

    def restarted_this_round(self, round_index: int) -> Tuple[int, ...]:
        """Nodes resuming execution exactly at ``round_index``."""
        return tuple(sorted(
            v for v, (_crash, restart) in self._crashes.items()
            if restart == round_index
        ))

    @property
    def has_crashes(self) -> bool:
        return bool(self._crashes)


def parse_crash_spec(spec: str) -> CrashSchedule:
    """Parse the CLI crash syntax ``node@round[/rROUND][,...]``.

    Example: ``"3@5,7@10/r20"`` — node 3 fails at round 5 forever, node 7
    is down from round 10 and resumes at round 20.
    """
    crashes: Dict[int, int] = {}
    restarts: Dict[int, int] = {}
    for part in (p for p in spec.split(",") if p):
        try:
            node_str, _, when = part.partition("@")
            round_str, _, restart_str = when.partition("/")
            node = int(node_str)
            crashes[node] = int(round_str)
            if restart_str:
                if not restart_str.startswith("r"):
                    raise ValueError(f"bad restart suffix {restart_str!r}")
                restarts[node] = int(restart_str[1:])
        except ValueError as exc:
            raise ValueError(
                f"bad crash spec {part!r} (want node@round[/rROUND]): {exc}"
            ) from exc
    return CrashSchedule(crashes=crashes, restarts=restarts)
