"""Predicted round-complexity curves for shape comparisons (E4, E5).

The experiments cannot match an absolute testbed (there is none — the
paper is theory), so they compare *measured* round counts against these
predicted growth shapes: is Theorem 2 flat in ``W`` while the baseline
grows like ``log W``?  Does Theorem 1 scale like ``MIS/ε``?
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "log_w",
    "predicted_theorem1_rounds",
    "predicted_bar_yehuda_rounds",
    "poly_log_log",
    "fit_loglinear",
    "growth_ratio",
]


def log_w(max_weight: float) -> float:
    """``log2 W`` with the convention ``log W >= 1`` (W >= 1 inputs)."""
    return max(1.0, math.log2(max(2.0, max_weight)))


def predicted_theorem1_rounds(mis_rounds: float, eps: float) -> float:
    """Theorem 1 shape: ``O(MIS(n,Δ)/ε)``."""
    return mis_rounds / eps


def predicted_bar_yehuda_rounds(mis_rounds: float, max_weight: float) -> float:
    """Baseline [8] shape: ``O(MIS(n,Δ) · log W)``."""
    return mis_rounds * log_w(max_weight)


def poly_log_log(n: int, power: float = 3.0) -> float:
    """``(log log n)^power`` — Theorem 2's asymptotic envelope."""
    return math.log(max(math.log(max(n, 3)), 1.0 + 1e-9)) ** power


def fit_loglinear(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ≈ a + b·log2(x)``; returns ``(a, b)``.

    Used to test "rounds grow logarithmically in W" claims: the slope
    ``b`` should be clearly positive for the baseline and ≈ 0 for
    Theorem 2.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired observations")
    lx = [math.log2(max(x, 1e-12)) for x in xs]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        return mean_y, 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ys))
    b = sxy / sxx
    a = mean_y - b * mean_x
    return a, b


def growth_ratio(ys: Sequence[float]) -> float:
    """``max(y)/max(min(y), 1)`` — a crude "did it grow?" statistic."""
    if not ys:
        raise ValueError("empty series")
    return max(ys) / max(min(ys), 1.0)
