"""Trial statistics for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar, Union

import numpy as np

__all__ = ["TrialSummary", "summarize_trials", "wilson_interval", "run_trials"]

T = TypeVar("T")


@dataclass(frozen=True)
class TrialSummary:
    """Five-number-ish summary of repeated measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_row(self) -> Tuple:
        return (self.count, round(self.mean, 3), round(self.std, 3),
                round(self.minimum, 3), round(self.median, 3), round(self.maximum, 3))


def summarize_trials(values: Sequence[float]) -> TrialSummary:
    """Summarize a sequence of trial measurements."""
    if not values:
        raise ValueError("no trials to summarize")
    arr = np.asarray(values, dtype=float)
    return TrialSummary(
        count=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to report empirical success probabilities of the w.h.p.
    algorithms with honest uncertainty.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, centre - half), min(1.0, centre + half)


def run_trials(fn: Callable[[int], T], trials: int, *, seed: int = 0) -> List[T]:
    """Run ``fn(trial_seed)`` for ``trials`` independent derived seeds."""
    ss = np.random.SeedSequence(seed)
    children = ss.spawn(trials)
    out: List[T] = []
    for child in children:
        # Derive a plain int seed for APIs that want one.
        trial_seed = int(child.generate_state(1)[0])
        out.append(fn(trial_seed))
    return out
