"""The concentration inequalities of §3 (Facts 1–3), as computable bounds.

These are used two ways:

* tests check the *empirical* failure rates of the randomized algorithms
  against the theoretical tail bounds;
* the sparsification analysis (Lemmas 3–5) and Theorem 11 are restated as
  concrete functions of the instance parameters.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "chernoff_bound",
    "bernstein_bound",
    "azuma_bound",
    "theorem11_failure_bound",
    "proposition4_tail",
]


def chernoff_bound(mu: float, eps: float) -> float:
    """Fact 1: ``Pr[|X − μ| >= εμ] <= 2·exp(−ε²μ/(2+ε))`` for ε in [0,1]."""
    if not 0 <= eps <= 1:
        raise ValueError(f"eps must be in [0, 1], got {eps}")
    if mu < 0:
        raise ValueError(f"mu must be nonnegative, got {mu}")
    return min(1.0, 2.0 * math.exp(-(eps * eps) / (2.0 + eps) * mu))


def bernstein_bound(t: float, m_bound: float, variance_sum: float) -> float:
    """Fact 2: ``Pr[|X − μ| >= t] <= 2·exp(−(t²/2)/(M·t/3 + Σ Var))``."""
    if t < 0:
        raise ValueError(f"t must be nonnegative, got {t}")
    denom = m_bound * t / 3.0 + variance_sum
    if denom <= 0:
        return 0.0 if t > 0 else 1.0
    return min(1.0, 2.0 * math.exp(-(t * t) / (2.0 * denom)))


def azuma_bound(t: float, increments: Sequence[float]) -> float:
    """Fact 3 (one-sided): ``Pr[X_N − X_0 <= −t] <= exp(−t²/(2 Σ c_i²))``."""
    if t < 0:
        raise ValueError(f"t must be nonnegative, got {t}")
    s = sum(c * c for c in increments)
    if s <= 0:
        return 0.0 if t > 0 else 1.0
    return min(1.0, math.exp(-(t * t) / (2.0 * s)))


def theorem11_failure_bound(n: int, delta: int) -> float:
    """Theorem 11's tail: ``Pr[|I| < n/(8(Δ+1))] <= exp(−n/(256(Δ+1)))``.

    (Up to the extra ``1/n^c`` from the sequential-view coupling.)
    """
    if n <= 0 or delta < 0:
        raise ValueError("need n > 0 and delta >= 0")
    return math.exp(-n / (256.0 * (delta + 1)))


def proposition4_tail(k: int, m0: float, m1: float, t: float) -> float:
    """Proposition 4: ``Pr[f_k < k·M1 − t] <= exp(−t²/(8·M0²·k))``."""
    if k <= 0 or m0 <= 0:
        raise ValueError("need k > 0 and M0 > 0")
    return min(1.0, math.exp(-(t * t) / (8.0 * m0 * m0 * k)))
