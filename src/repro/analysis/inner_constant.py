"""Empirical validation of Theorem 2's inner constant.

Theorem 9 guarantees the sparsified pipeline returns weight
``>= w(V)/(cΔ)`` for *some* constant ``c`` w.h.p.; the boosting schedule
``t = c/ε`` needs a concrete value, and :mod:`repro.core.theorem2` uses a
conservative default (``c = 8``).  This module measures the achieved
fraction ``w(I)·Δ/w(V)`` over trials and instance families so the default
is auditable: the implied empirical ``c`` (the reciprocal of the worst
achieved fraction) must stay below the configured one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.sparsify import sparsified_approx
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["InnerConstantEstimate", "estimate_inner_constant"]


@dataclass(frozen=True)
class InnerConstantEstimate:
    """Measured ``w(I)·Δ/w(V)`` fractions and the implied constant."""

    fractions: Sequence[float]
    trials: int

    @property
    def worst_fraction(self) -> float:
        return min(self.fractions)

    @property
    def implied_c(self) -> float:
        """The smallest ``c`` consistent with every observed trial."""
        worst = self.worst_fraction
        return float("inf") if worst <= 0 else 1.0 / worst

    def supports(self, configured_c: float) -> bool:
        """True iff the configured constant was conservative on every trial."""
        return self.implied_c <= configured_c


def estimate_inner_constant(
    instances: Sequence[WeightedGraph],
    *,
    trials_per_instance: int = 3,
    seed: int = 0,
) -> InnerConstantEstimate:
    """Run the Theorem 9 pipeline repeatedly and collect achieved fractions.

    Args:
        instances: graphs to measure on (mix degrees and weight skews —
            the constant is a w.h.p. claim over all of them).
        trials_per_instance: independent seeds per instance.
        seed: master seed.

    Returns:
        An :class:`InnerConstantEstimate`; ``implied_c`` is what the data
        supports, to compare against
        :data:`repro.core.theorem2.DEFAULT_INNER_CONSTANT`.
    """
    ss = np.random.SeedSequence(seed)
    fractions: List[float] = []
    for graph, child in zip(
        [g for g in instances for _ in range(trials_per_instance)],
        ss.spawn(len(instances) * trials_per_instance),
    ):
        total = graph.total_weight()
        if total <= 0 or graph.n == 0:
            continue
        rng_seed = int(child.generate_state(1)[0])
        res = sparsified_approx(graph, seed=rng_seed)
        fractions.append(res.weight(graph) * max(1, graph.max_degree) / total)
    return InnerConstantEstimate(fractions=tuple(fractions),
                                 trials=len(fractions))
