"""Analysis tools: the §3 concentration bounds, the §5 martingale
reconstruction, complexity shape predictions, and trial statistics."""

from repro.analysis.complexity import (
    fit_loglinear,
    growth_ratio,
    log_w,
    poly_log_log,
    predicted_bar_yehuda_rounds,
    predicted_theorem1_rounds,
)
from repro.analysis.concentration import (
    azuma_bound,
    bernstein_bound,
    chernoff_bound,
    proposition4_tail,
    theorem11_failure_bound,
)
from repro.analysis.inner_constant import (
    InnerConstantEstimate,
    estimate_inner_constant,
)
from repro.analysis.martingale import (
    MartingaleCheck,
    check_proposition4_conditions,
    martingale_increments,
)
from repro.analysis.traffic import (
    RoundTraffic,
    bits_per_round,
    busiest_round,
    messages_per_node,
)
from repro.analysis.stats import (
    TrialSummary,
    run_trials,
    summarize_trials,
    wilson_interval,
)

__all__ = [
    "chernoff_bound", "bernstein_bound", "azuma_bound",
    "theorem11_failure_bound", "proposition4_tail",
    "MartingaleCheck", "check_proposition4_conditions", "martingale_increments",
    "log_w", "predicted_theorem1_rounds", "predicted_bar_yehuda_rounds",
    "poly_log_log", "fit_loglinear", "growth_ratio",
    "TrialSummary", "summarize_trials", "wilson_interval", "run_trials",
    "RoundTraffic", "bits_per_round", "messages_per_node", "busiest_round",
    "InnerConstantEstimate", "estimate_inner_constant",
]
