"""Traffic analysis over traces: who talks, when, and how much.

Complements :mod:`repro.simulator.metrics` (aggregate counters) with
per-round and per-node views built from a :class:`~repro.simulator.tracing.Trace`
— the tools behind the E13 message-complexity experiment and the
``congest_audit`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.simulator.tracing import Trace

__all__ = ["RoundTraffic", "bits_per_round", "messages_per_node", "busiest_round"]


@dataclass(frozen=True)
class RoundTraffic:
    """Traffic of one round."""

    round_index: int
    messages: int
    bits: int


def _wire_events(trace: Trace):
    """Everything that crossed the wire: deliveries and drops alike.

    A message to a receiver that halted the same round is traced ``"drop"``
    rather than ``"send"``, but it was transmitted (and charged), so
    traffic views count both — keeping these totals equal to the
    ``RunMetrics`` charges.
    """
    return trace.events_of("send") + trace.events_of("drop")


def bits_per_round(trace: Trace) -> List[RoundTraffic]:
    """Per-round message and bit totals, in round order."""
    acc: Dict[int, List[int]] = {}
    for e in _wire_events(trace):
        entry = acc.setdefault(e.round_index, [0, 0])
        entry[0] += 1
        entry[1] += e.detail[1]
    return [
        RoundTraffic(r, msgs, bits)
        for r, (msgs, bits) in sorted(acc.items())
    ]


def messages_per_node(trace: Trace) -> Dict[int, int]:
    """How many messages each node sent over the whole run."""
    out: Dict[int, int] = {}
    for e in _wire_events(trace):
        out[e.node] = out.get(e.node, 0) + 1
    return out


def busiest_round(trace: Trace) -> RoundTraffic:
    """The round with the most bits on the wire.

    Raises ``ValueError`` on a silent trace.
    """
    rounds = bits_per_round(trace)
    if not rounds:
        raise ValueError("trace contains no send events")
    return max(rounds, key=lambda rt: rt.bits)
