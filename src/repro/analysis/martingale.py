"""Empirical reconstruction of the §5 martingale analysis.

Theorem 11's proof builds the martingale ``Y_i = f_i − E[f_i | history]``
over the sequential view of the ranking algorithm.  This module rebuilds
those quantities from recorded trajectories so the property tests can
check the *Max change* and *Expected increase* conditions of Proposition 4
on real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.core.ranking import SeqBoppanaTrajectory, seq_boppana_trajectory
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["MartingaleCheck", "check_proposition4_conditions", "martingale_increments"]


@dataclass(frozen=True)
class MartingaleCheck:
    """Outcome of checking Proposition 4's conditions on a trajectory."""

    max_change_ok: bool          # |f_{i+1} - f_i| <= M0 = 1
    k: int                       # the n/(2(Δ+1)) horizon actually used
    min_join_probability: float  # min over the first k steps
    expected_increase_ok: bool   # that min is >= M1 = 1/2
    final_size: float            # |I_k|
    target: float                # k * M1 - t with t = k/4, i.e. k/4


def martingale_increments(trajectory: SeqBoppanaTrajectory) -> List[float]:
    """The shifted increments ``Y_t − Y_{t-1} = ΔI_t − Pr[join | history]``."""
    return [
        inc - p
        for inc, p in zip(trajectory.increments, trajectory.join_probabilities)
    ]


def check_proposition4_conditions(
    graph: WeightedGraph,
    seed: Union[int, None, np.random.Generator] = None,
) -> MartingaleCheck:
    """Run one sequential-view trajectory and test Proposition 4's setup.

    Uses the paper's parameters: ``k = n/(2(Δ+1))``, ``M0 = 1``,
    ``M1 = 1/2``, ``t = k/4`` — under which Theorem 11 promises
    ``|I_k| >= k/4 = n/(8(Δ+1))`` except with probability ``exp(−k/128)``.
    """
    traj = seq_boppana_trajectory(graph, seed)
    delta = graph.max_degree
    k = max(1, int(graph.n / (2 * (delta + 1))))

    increments = traj.increments[:k]
    probs = traj.join_probabilities[:k]
    sizes = traj.sizes()

    return MartingaleCheck(
        max_change_ok=all(inc in (0, 1) for inc in increments),
        k=k,
        min_join_probability=min(probs) if probs else 1.0,
        expected_increase_ok=all(p >= 0.5 for p in probs),
        final_size=float(sizes[min(k, len(sizes) - 1)]),
        target=k / 4.0,
    )
