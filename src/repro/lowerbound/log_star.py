"""The iterated logarithm ``log* n`` and the paper's ``log^(b)`` tower.

Theorem 4's bound is ``Ω(log* n)``; Theorem 13 uses the recursively
defined ``log^(b)(x)`` (``log^(0)(x) = x``, ``log^(b) = log ∘ log^(b-1)``).
"""

from __future__ import annotations

import math

__all__ = ["log_star", "iterated_log", "tower"]


def log_star(n: float, base: float = 2.0) -> int:
    """``log* n``: how many times ``log`` must be applied to reach <= 1."""
    if n <= 1:
        return 0
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log(x, base)
        count += 1
    return count


def iterated_log(n: float, b: int, base: float = 2.0) -> float:
    """``log^(b)(n)``: ``b``-fold composition of ``log`` (Theorem 13)."""
    x = float(n)
    for _ in range(b):
        if x <= 0:
            return float("-inf")
        x = math.log(x, base)
    return x


def tower(height: int, base: float = 2.0) -> float:
    """``base^base^...`` of the given height — inverse of ``log*``."""
    x = 1.0
    for _ in range(height):
        if x > 900:  # base**x would overflow a double
            return float("inf")
        x = base ** x
    return x
