"""Theorem 4's lower-bound machinery: the cycle-of-cliques reduction
(Algorithm 7, Figure 1) and the log* arithmetic."""

from repro.lowerbound.gaps import components_after_removal, gap_lengths, max_gap
from repro.lowerbound.log_star import iterated_log, log_star, tower
from repro.lowerbound.reduction import ISApproximation, RandMISOutcome, rand_mis

__all__ = [
    "gap_lengths",
    "max_gap",
    "components_after_removal",
    "log_star",
    "iterated_log",
    "tower",
    "rand_mis",
    "RandMISOutcome",
    "ISApproximation",
]
