"""Gap analysis on cycles (§7).

Given an independent set ``I`` of the ``n``-cycle, the *gaps* are the runs
of consecutive cycle nodes strictly between consecutive members of ``I``.
The reduction's runtime is governed by the maximum gap: the paper shows
that a correct ``Ω(n/Δ)``-size approximation on the cycle of cliques leaves
only ``O(T)``-length gaps, which a sequential fill closes in ``O(T)`` rounds.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["gap_lengths", "max_gap", "components_after_removal"]


def gap_lengths(n: int, independent_set: Iterable[int]) -> List[int]:
    """Circular gap lengths between consecutive IS members on the n-cycle.

    Returns one entry per IS member (the run of non-members following it
    clockwise); ``[n]`` when the set is empty.
    """
    members = sorted(set(independent_set))
    if not members:
        return [n]
    for v in members:
        if not 0 <= v < n:
            raise ValueError(f"node {v} outside cycle of length {n}")
    gaps = []
    for i, v in enumerate(members):
        nxt = members[(i + 1) % len(members)]
        distance = (nxt - v) % n if len(members) > 1 else n
        gaps.append(distance - 1)
    return gaps


def max_gap(n: int, independent_set: Iterable[int]) -> int:
    """Largest circular gap (``n`` for the empty set)."""
    return max(gap_lengths(n, independent_set))


def components_after_removal(n: int, removed: Iterable[int]) -> List[List[int]]:
    """Connected components of the n-cycle after deleting ``removed``.

    These are the paths the reduction's sequential MIS fill runs on
    (``C2 = C \\ J`` in Algorithm 7).
    """
    removed_set = set(removed)
    alive = [v for v in range(n) if v not in removed_set]
    if not alive:
        return []
    if not removed_set:
        return [list(range(n))]
    components: List[List[int]] = []
    current: List[int] = []
    for v in range(n):
        if v in removed_set:
            if current:
                components.append(current)
                current = []
        else:
            current.append(v)
    if current:
        # Wrap around: the last run may join the first one.
        if components and components[0][0] == 0 and (n - 1) not in removed_set:
            components[0] = current + components[0]
        else:
            components.append(current)
    return components
