"""Algorithm 7: the RandMIS reduction behind Theorem 4 (§7, Figure 1).

Given an ``n0``-cycle ``C`` and a black-box IS-approximation algorithm
``A``, RandMIS:

1. builds the cycle of cliques ``C1`` (``n0`` cliques of size ``n1``) and
   runs ``A`` on it (in the real model this is *simulated* on ``C`` — each
   cycle node simulates its whole clique; the paper's Proposition 10);
2. maps the found set ``I1`` back to ``I ⊆ C`` (``u_i`` joins iff its
   clique contains an ``I1`` node);
3. removes ``I`` and its neighbours and fills each remaining path with a
   sequential greedy MIS.

The output is a maximal independent set of ``C``; the *effective round
cost* is ``T(n0·n1)`` for the simulated call plus the maximum component
length for the fill — so if ``A`` were ``o(log* n)``, MIS on the cycle
would be too, contradicting Naor's bound (Theorem 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Union

import numpy as np

from repro.core.verify import assert_independent, assert_maximal_independent_set
from repro.exceptions import VerificationError
from repro.graphs.cliques import CycleOfCliques, cycle_of_cliques
from repro.graphs.generators import cycle
from repro.graphs.weighted_graph import WeightedGraph
from repro.lowerbound.gaps import components_after_removal, gap_lengths, max_gap
from repro.mis.sequential import greedy_mis
from repro.results import AlgorithmResult

__all__ = ["RandMISOutcome", "rand_mis"]

# Black box: an IS approximation run on a graph, returning an AlgorithmResult.
ISApproximation = Callable[..., AlgorithmResult]


@dataclass(frozen=True)
class RandMISOutcome:
    """Everything Algorithm 7 produced, for both use and measurement."""

    mis: FrozenSet[int]                  # maximal independent set of C
    projected: FrozenSet[int]            # I — the projection of I1 onto C
    inner_set_size: int                  # |I1| on C1
    inner_rounds: int                    # T — rounds A spent on C1
    fill_rounds: int                     # max component length of C \ J
    gaps: List[int]                      # circular gaps of I in C
    n0: int
    n1: int

    @property
    def effective_rounds(self) -> int:
        """Simulated cost on C: the A call plus the sequential fill."""
        return self.inner_rounds + self.fill_rounds


def rand_mis(
    n0: int,
    inner: ISApproximation,
    *,
    n1: Optional[int] = None,
    seed: Union[int, None, np.random.SeedSequence] = None,
    check: bool = True,
) -> RandMISOutcome:
    """Run Algorithm 7 on the ``n0``-cycle.

    Args:
        n0: cycle length.
        inner: the approximation black box ``A``; called as
            ``inner(C1_graph, seed=...)``.  (The paper's hard instances use
            ``n1 ≈ 2^{n0}``; any ``n1 >= 3`` exercises the construction —
            larger ``n1`` boosts ``A``'s local success probability.)
        n1: clique size (default ``2 * n0``, big enough that the clique
            dominates the neighbourhood structure at test scale).
        seed: forwarded to the black box.
        check: verify independence/maximality of every intermediate set.

    Returns:
        A :class:`RandMISOutcome` with the MIS of ``C`` and the cost split.
    """
    if n1 is None:
        n1 = 2 * n0
    instance: CycleOfCliques = cycle_of_cliques(n0, n1)
    c1 = instance.graph

    inner_result = inner(c1, seed=seed)
    i1 = inner_result.independent_set
    if check:
        assert_independent(c1, i1)

    projected = instance.project_independent_set(i1)
    cycle_graph = cycle(n0)
    if check:
        # Projection of an independent set of C1 is independent in C
        # (adjacent cliques form a biclique, Lemma 9).
        assert_independent(cycle_graph, projected)

    # J = I plus its cycle neighbours; fill each remaining path greedily.
    j = set(projected)
    for v in projected:
        j.update(cycle_graph.neighbors(v))
    components = components_after_removal(n0, j)
    mis = set(projected)
    fill_rounds = 0
    for comp in components:
        fill_rounds = max(fill_rounds, len(comp))
        sub = cycle_graph.induced_subgraph(comp)
        mis.update(greedy_mis(sub))

    mis_frozen = frozenset(mis)
    if check:
        assert_maximal_independent_set(cycle_graph, mis_frozen)

    return RandMISOutcome(
        mis=mis_frozen,
        projected=projected,
        inner_set_size=len(i1),
        inner_rounds=inner_result.rounds,
        fill_rounds=fill_rounds,
        gaps=gap_lengths(n0, projected),
        n0=n0,
        n1=n1,
    )
