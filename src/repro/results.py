"""Common result type for every distributed algorithm in the library.

Whether it's an MIS black box or a full MaxIS approximation pipeline, a run
produces an independent set plus the cost accounting the paper's theorems
are stated in (rounds, messages, bits).  ``metadata`` carries
algorithm-specific diagnostics (phase logs, stack values, sampled subgraph
sizes, ...) consumed by the experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet

from repro.graphs.weighted_graph import WeightedGraph
from repro.simulator.metrics import RunMetrics

__all__ = ["AlgorithmResult"]


@dataclass(frozen=True)
class AlgorithmResult:
    """An independent set plus the cost of computing it."""

    independent_set: FrozenSet[int]
    metrics: RunMetrics
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Total communication rounds (the paper's complexity measure)."""
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def size(self) -> int:
        return len(self.independent_set)

    def weight(self, graph: WeightedGraph) -> float:
        """``w(I)`` with respect to ``graph``'s weight function."""
        return graph.total_weight(self.independent_set)

    def with_metadata(self, **extra: Any) -> "AlgorithmResult":
        """Copy with additional metadata entries."""
        md = dict(self.metadata)
        md.update(extra)
        return AlgorithmResult(self.independent_set, self.metrics, md)
