"""Experiment harness: named experiments producing printable row tables.

Each experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentReport`; ``benchmarks/`` wraps them with pytest-benchmark
and ``examples/`` prints them.  The report carries both the rows (the
"table" the paper never printed, E1–E13 in DESIGN.md) and a dict of
headline findings asserted by the benchmark drivers.  Reports round-trip
through JSON so CI runs can archive them as artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.bench.tables import format_row_dicts

__all__ = ["ExperimentReport", "timed", "to_native"]


def to_native(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays to native Python values.

    Reports must round-trip through JSON faithfully; a stray ``np.float64``
    would otherwise only survive serialisation as a string.  Tuples become
    lists (what JSON would do anyway), so equality holds across the trip.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [to_native(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {to_native(k): to_native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_native(v) for v in value]
    return value


@dataclass
class ExperimentReport:
    """One experiment's regenerated table plus headline findings."""

    experiment: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    findings: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **row: Any) -> None:
        self.rows.append({k: to_native(v) for k, v in row.items()})

    def add_finding(self, key: str, value: Any) -> None:
        """Record a headline finding, coerced to JSON-native types."""
        self.findings[key] = to_native(value)

    def render(self) -> str:
        header = f"== {self.experiment}: {self.description} =="
        body = format_row_dicts(self.rows)
        notes = "\n".join(f"  {k}: {v}" for k, v in self.findings.items())
        parts = [header, body]
        if notes:
            parts.append("findings:")
            parts.append(notes)
        return "\n".join(parts)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())

    def to_json(self) -> str:
        """Serialize to JSON.

        Rows are coerced at :meth:`add_row` time; findings are coerced
        here because experiments assign ``report.findings`` directly.  No
        ``default=`` fallback: anything still unserialisable should fail
        loudly rather than silently become a string.
        """
        return json.dumps({
            "experiment": self.experiment,
            "description": self.description,
            "rows": self.rows,
            "findings": to_native(self.findings),
        }, indent=2)

    @staticmethod
    def from_json(text: str) -> "ExperimentReport":
        """Parse a report previously produced by :meth:`to_json`."""
        doc = json.loads(text)
        return ExperimentReport(
            experiment=doc["experiment"],
            description=doc["description"],
            rows=list(doc.get("rows", [])),
            findings=dict(doc.get("findings", {})),
        )


class timed:
    """Context manager measuring wall-clock seconds (for report rows).

    Safe to re-enter: one instance can time several ``with`` blocks (even
    nested — starts are kept on a stack), and ``seconds`` always reflects
    the most recently *finished* block.  Elapsed time is recorded even when
    the body raises, so error paths still report how long they took.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._starts: List[float] = []

    def __enter__(self) -> "timed":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._starts.pop()
