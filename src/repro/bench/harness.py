"""Experiment harness: named experiments producing printable row tables.

Each experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentReport`; ``benchmarks/`` wraps them with pytest-benchmark
and ``examples/`` prints them.  The report carries both the rows (the
"table" the paper never printed, E1–E13 in DESIGN.md) and a dict of
headline findings asserted by the benchmark drivers.  Reports round-trip
through JSON so CI runs can archive them as artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.tables import format_row_dicts

__all__ = ["ExperimentReport", "timed"]


@dataclass
class ExperimentReport:
    """One experiment's regenerated table plus headline findings."""

    experiment: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    findings: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **row: Any) -> None:
        self.rows.append(row)

    def render(self) -> str:
        header = f"== {self.experiment}: {self.description} =="
        body = format_row_dicts(self.rows)
        notes = "\n".join(f"  {k}: {v}" for k, v in self.findings.items())
        parts = [header, body]
        if notes:
            parts.append("findings:")
            parts.append(notes)
        return "\n".join(parts)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())

    def to_json(self) -> str:
        """Serialize to JSON (rows and findings must be JSON-compatible)."""
        return json.dumps({
            "experiment": self.experiment,
            "description": self.description,
            "rows": self.rows,
            "findings": self.findings,
        }, indent=2, default=str)

    @staticmethod
    def from_json(text: str) -> "ExperimentReport":
        """Parse a report previously produced by :meth:`to_json`."""
        doc = json.loads(text)
        return ExperimentReport(
            experiment=doc["experiment"],
            description=doc["description"],
            rows=list(doc.get("rows", [])),
            findings=dict(doc.get("findings", {})),
        )


class timed:
    """Context manager measuring wall-clock seconds (for report rows)."""

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
