"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "format_row_dicts"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def format_row_dicts(rows: Sequence[dict]) -> str:
    """Render a list of uniform dicts as a table (keys of the first row)."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[r.get(h, "") for h in headers] for r in rows])
