"""Deep-sweep presets for the experiment suite.

The default experiment parameters finish in about a minute for quick
iteration; these presets trade minutes of runtime for wider sweeps and
more trials — the settings behind a "full" reproduction run:

    python -m repro experiments --deep
    python -m repro experiments E5 E7 --deep
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["DEEP_PRESETS", "deep_kwargs"]

DEEP_PRESETS: Dict[str, Dict[str, Any]] = {
    "E1": {"sizes": (100, 200, 400, 800, 1600), "trials": 5},
    "E2": {"sizes": (200, 400, 800, 1600), "trials": 5},
    "E3": {"n": 300, "eps_values": (4.0, 2.0, 1.0, 0.5, 0.25, 0.125)},
    "E4": {"n": 80, "eps_values": (2.0, 1.0, 0.5, 0.25, 0.125), "trials": 5},
    "E5": {"n": 500, "scales": (1, 100, 10_000, 1_000_000, 100_000_000)},
    "E6": {"hub_degrees": (20, 40, 80, 160), "n": 500},
    "E7": {"n": 1200, "degrees": (4, 8, 16, 32), "trials": 25},
    "E8": {"trials": 20_000},
    "E9": {"cycle_sizes": (20, 40, 80, 120)},
    "E10": {"n": 500},
    "E11": {"lengths": (20, 40, 80, 160)},
    "E12": {"n_leaves": 400, "trials": 5_000},
    "E13": {"sizes": (100, 200, 400, 800)},
}


def deep_kwargs(name: str) -> Dict[str, Any]:
    """Preset kwargs for experiment ``name`` (empty dict if none)."""
    return dict(DEEP_PRESETS.get(name, {}))
