"""Experiment harness and the E1–E13 suite (DESIGN.md §3)."""

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    experiment_e1_good_nodes,
    experiment_e2_sparsify,
    experiment_e3_boosting,
    experiment_e4_theorem1,
    experiment_e5_speedup,
    experiment_e6_arboricity,
    experiment_e7_ranking,
    experiment_e8_sequential_view,
    experiment_e9_lower_bound,
    experiment_e10_ablations,
    experiment_e11_coloring_diameter,
    experiment_e12_ranking_variance,
    experiment_e13_message_complexity,
)
from repro.bench.deep import DEEP_PRESETS, deep_kwargs
from repro.bench.harness import ExperimentReport, timed, to_native
from repro.bench.tables import format_row_dicts, format_table

__all__ = [
    "ALL_EXPERIMENTS",
    "DEEP_PRESETS",
    "deep_kwargs",
    "ExperimentReport",
    "timed",
    "to_native",
    "format_table",
    "format_row_dicts",
    "experiment_e1_good_nodes",
    "experiment_e2_sparsify",
    "experiment_e3_boosting",
    "experiment_e4_theorem1",
    "experiment_e5_speedup",
    "experiment_e6_arboricity",
    "experiment_e7_ranking",
    "experiment_e8_sequential_view",
    "experiment_e9_lower_bound",
    "experiment_e10_ablations",
    "experiment_e11_coloring_diameter",
    "experiment_e12_ranking_variance",
    "experiment_e13_message_complexity",
]
