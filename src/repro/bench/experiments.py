"""The experiment suite E1–E13 (see DESIGN.md §3).

The paper is theory-only — no tables, one illustrative figure — so every
theorem becomes a measured experiment and Figure 1 becomes the E9 gap
study.  Each function returns an :class:`ExperimentReport`; the
``benchmarks/`` drivers time them and assert the headline findings, and
``examples/`` print them.

Default sizes are chosen so the full suite runs in minutes on a laptop;
every function takes size/trial overrides for deeper sweeps.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.complexity import fit_loglinear, log_w
from repro.analysis.stats import summarize_trials, wilson_interval
from repro.bench.harness import ExperimentReport
from repro.core.baselines import bar_yehuda_maxis, greedy_maxis
from repro.core.boosting import phases_for
from repro.core.exact import exact_max_weight_is
from repro.core.good_nodes import good_nodes_approx
from repro.core.low_arboricity import low_arboricity_maxis
from repro.core.ranking import boppana_is, low_degree_maxis, seq_boppana
from repro.core.sparsify import sample_subgraph, sparsified_approx
from repro.core.theorem1 import theorem1_maxis
from repro.core.theorem2 import theorem2_maxis
from repro.core.verify import assert_independent, certify_fraction_bound, certify_ratio
from repro.graphs import (
    WeightedGraph,
    arboricity,
    caterpillar,
    cycle,
    gnp,
    integer_weights,
    planted_heavy_hub,
    random_regular,
    skewed_heavy_set,
    uniform_weights,
)
from repro.lowerbound.reduction import rand_mis
from repro.lowerbound.gaps import max_gap
from repro.simulator.batch import BatchJob, BatchResult, batch_run


def _sweep(jobs: List[BatchJob], n_jobs: int,
           cache_dir: Optional[str]) -> BatchResult:
    """Run an experiment's seed sweep through the batch engine.

    Every job carries an explicit seed (the experiments derive them the
    same way they always did), so results are identical to the old inline
    loops for any ``n_jobs``.  A failed trial would silently skew the
    statistics, so failures abort the experiment loudly.
    """
    result = batch_run(jobs, n_jobs=n_jobs, cache_dir=cache_dir)
    if result.failures:
        first = result.failures[0]
        raise RuntimeError(
            f"{len(result.failures)}/{result.jobs} sweep jobs failed; "
            f"first: job {first.index} ({first.algorithm}, seed {first.seed}): "
            f"{first.error}"
        )
    return result

__all__ = [
    "experiment_e1_good_nodes",
    "experiment_e2_sparsify",
    "experiment_e3_boosting",
    "experiment_e4_theorem1",
    "experiment_e5_speedup",
    "experiment_e6_arboricity",
    "experiment_e7_ranking",
    "experiment_e8_sequential_view",
    "experiment_e9_lower_bound",
    "experiment_e10_ablations",
    "experiment_e11_coloring_diameter",
    "experiment_e12_ranking_variance",
    "experiment_e13_message_complexity",
    "ALL_EXPERIMENTS",
]


# --------------------------------------------------------------------- #
# E1 — Theorem 8: good nodes give w(I) >= w(V)/(4(Δ+1))
# --------------------------------------------------------------------- #

def experiment_e1_good_nodes(
    sizes: Sequence[int] = (100, 200, 400),
    trials: int = 3,
    seed: int = 11,
) -> ExperimentReport:
    """E1: the good-nodes bound holds on every trial, at MIS-level cost."""
    report = ExperimentReport(
        "E1", "Theorem 8 — good-nodes O(Δ)-approximation: w(I) >= w(V)/(4(Δ+1))"
    )
    violations = 0
    ss = np.random.SeedSequence(seed)
    for n in sizes:
        for scheme in ("uniform", "skewed"):
            fractions: List[float] = []
            rounds: List[float] = []
            for trial_seed in ss.spawn(trials):
                rng_seed = int(trial_seed.generate_state(1)[0])
                g = gnp(n, 8.0 / n, seed=rng_seed)
                if scheme == "uniform":
                    g = uniform_weights(g, 1, 100, seed=rng_seed + 1)
                else:
                    g = skewed_heavy_set(g, fraction=0.02, seed=rng_seed + 1)
                res = good_nodes_approx(g, seed=rng_seed)
                cert = certify_fraction_bound(
                    g, res.independent_set, 4.0 * (g.max_degree + 1)
                )
                if not cert.holds:
                    violations += 1
                fractions.append(res.weight(g) / g.total_weight())
                rounds.append(res.rounds)
            report.add_row(
                n=n,
                scheme=scheme,
                mean_fraction=summarize_trials(fractions).mean,
                required_fraction=1.0 / (4.0 * (g.max_degree + 1)),
                mean_rounds=summarize_trials(rounds).mean,
            )
    report.findings["bound_violations"] = violations
    report.findings["bound_always_holds"] = violations == 0
    return report


# --------------------------------------------------------------------- #
# E2 — Theorem 9: sparsification lemmas
# --------------------------------------------------------------------- #

def experiment_e2_sparsify(
    sizes: Sequence[int] = (200, 400, 800),
    trials: int = 3,
    seed: int = 22,
) -> ExperimentReport:
    """E2: Δ_H = O(log n) and weight preservation on dense graphs."""
    report = ExperimentReport(
        "E2", "Theorem 9 — weighted sparsification: Δ_H = O(log n), "
              "w(V_H) = Ω(min{w(V), w(V)·log n/Δ})"
    )
    from repro.mis import luby_mis

    ss = np.random.SeedSequence(seed)
    all_ok = True
    for n in sizes:
        delta_hs: List[float] = []
        weight_ratios: List[float] = []
        final_fracs: List[float] = []
        mis_msgs_full: List[float] = []
        mis_msgs_sample: List[float] = []
        degree = max(16, n // 8)
        for trial_seed in ss.spawn(trials):
            rng_seed = int(trial_seed.generate_state(1)[0])
            g = skewed_heavy_set(
                random_regular(n, degree, seed=rng_seed), fraction=0.02,
                seed=rng_seed + 1,
            )
            outcome = sample_subgraph(g, seed=rng_seed)
            h = outcome.subgraph
            delta_hs.append(h.max_degree)
            target = min(
                g.total_weight(),
                g.total_weight() * math.log(max(2, n)) / max(1, g.max_degree),
            )
            weight_ratios.append(h.total_weight() / target if target > 0 else 1.0)
            res = sparsified_approx(g, seed=rng_seed + 2)
            final_fracs.append(
                res.weight(g) * g.max_degree / g.total_weight()
            )
            # The engine of the speed-up: an MIS on H touches far fewer
            # edges (Δ_H = O(log n)) than one on G.
            mis_msgs_full.append(luby_mis(g, seed=rng_seed + 3).messages)
            mis_msgs_sample.append(luby_mis(h, seed=rng_seed + 3).messages)
        log_n = math.log(max(2, n))
        report.add_row(
            n=n,
            delta=degree,
            mean_delta_h=summarize_trials(delta_hs).mean,
            log_n=round(log_n, 2),
            delta_h_over_log_n=summarize_trials([d / log_n for d in delta_hs]).mean,
            weight_vs_lemma5_target=summarize_trials(weight_ratios).mean,
            final_w_times_delta_over_wV=summarize_trials(final_fracs).mean,
            mis_messages_full=int(summarize_trials(mis_msgs_full).mean),
            mis_messages_sample=int(summarize_trials(mis_msgs_sample).mean),
        )
        # Δ_H should stay within a modest constant of log n while Δ >> log n.
        if summarize_trials(delta_hs).mean > 12 * log_n:
            all_ok = False
    report.findings["delta_h_is_O_log_n"] = all_ok
    return report


# --------------------------------------------------------------------- #
# E3 — Theorem 10 + Proposition 2: boosting and the stack property
# --------------------------------------------------------------------- #

def experiment_e3_boosting(
    n: int = 150,
    eps_values: Sequence[float] = (2.0, 1.0, 0.5, 0.25),
    seed: int = 33,
) -> ExperimentReport:
    """E3: rounds scale like T/ε; the stack property holds; the
    w(V)/((1+ε)(Δ+1)) bound from the Remark holds."""
    report = ExperimentReport(
        "E3", "Theorem 10 — local-ratio boosting: (1+ε)Δ at O(T/ε) rounds"
    )
    g = uniform_weights(gnp(n, 10.0 / n, seed=seed), 1, 50, seed=seed + 1)
    delta = g.max_degree
    stack_ok = True
    remark_ok = True
    for eps in eps_values:
        res = theorem1_maxis(g, eps, mis="luby", seed=seed + 2)
        w = res.weight(g)
        if w + 1e-9 < res.metadata["stack_value"]:
            stack_ok = False
        remark_bound = g.total_weight() / ((1 + eps) * (delta + 1))
        if w + 1e-9 < remark_bound:
            remark_ok = False
        report.add_row(
            eps=eps,
            phases=res.metadata["phases_executed"],
            phases_requested=res.metadata["phases_requested"],
            rounds=res.rounds,
            weight=round(w, 2),
            stack_value=round(res.metadata["stack_value"], 2),
            remark_bound=round(remark_bound, 2),
        )
    report.findings["stack_property_holds"] = stack_ok
    report.findings["remark_bound_holds"] = remark_ok
    return report


# --------------------------------------------------------------------- #
# E4 — Theorem 1: certified (1+ε)Δ against exact OPT
# --------------------------------------------------------------------- #

def experiment_e4_theorem1(
    n: int = 60,
    eps_values: Sequence[float] = (1.0, 0.5, 0.25),
    trials: int = 3,
    seed: int = 44,
) -> ExperimentReport:
    """E4: every trial's ratio is within (1+ε)Δ of the exact optimum."""
    report = ExperimentReport(
        "E4", "Theorem 1 — deterministic (1+ε)Δ-approximation, certified vs OPT"
    )
    ss = np.random.SeedSequence(seed)
    all_hold = True
    for eps in eps_values:
        ratios: List[float] = []
        rounds: List[float] = []
        for trial_seed in ss.spawn(trials):
            rng_seed = int(trial_seed.generate_state(1)[0])
            g = uniform_weights(gnp(n, 6.0 / n, seed=rng_seed), 1, 20,
                                seed=rng_seed + 1)
            _, opt = exact_max_weight_is(g)
            res = theorem1_maxis(g, eps, seed=rng_seed)
            cert = certify_ratio(
                g, res.independent_set, (1 + eps) * max(1, g.max_degree), opt=opt
            )
            if not cert.holds:
                all_hold = False
            ratios.append(opt / max(res.weight(g), 1e-12))
            rounds.append(res.rounds)
        report.add_row(
            eps=eps,
            guarantee=f"{(1 + eps):.2f}·Δ",
            mean_measured_ratio=summarize_trials(ratios).mean,
            worst_measured_ratio=summarize_trials(ratios).maximum,
            mean_rounds=summarize_trials(rounds).mean,
        )
    report.findings["all_certificates_hold"] = all_hold
    return report


# --------------------------------------------------------------------- #
# E5 — Theorem 2 vs Bar-Yehuda et al. [8]: the speed-up
# --------------------------------------------------------------------- #

def experiment_e5_speedup(
    n: int = 300,
    scales: Sequence[int] = (1, 100, 10_000, 1_000_000),
    eps: float = 0.5,
    seed: int = 55,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentReport:
    """E5: baseline rounds grow like log W; Theorem 2 rounds are flat in W.

    The same base instance has its weights multiplied by each scale, which
    isolates the W-dependence exactly: Theorem 2's pipeline is invariant
    under weight scaling (same seed → same execution), while the baseline's
    scale sweep pays one MIS per weight level, i.e. Θ(log W) of them.

    The per-scale runs are independent, so the whole grid goes through the
    batch engine (``n_jobs``/``cache_dir`` as in
    :func:`repro.simulator.batch.batch_run`).
    """
    report = ExperimentReport(
        "E5", "Theorem 2 vs [8] — rounds vs W: MIS·log W baseline against "
              "the W-independent sparsified pipeline"
    )
    base = integer_weights(gnp(n, 12.0 / n, seed=seed), 10, seed=seed + 1)
    graphs = [
        base.with_weights({v: base.weight(v) * s for v in base.nodes})
        for s in scales
    ]
    jobs: List[BatchJob] = []
    for g in graphs:
        jobs.append(BatchJob(g, "bar-yehuda", seed=seed + 10, label="baseline"))
        jobs.append(BatchJob(g, "thm2", seed=seed + 20,
                             params={"eps": eps}, label="theorem2"))
    sweep = _sweep(jobs, n_jobs, cache_dir)

    base_rounds: List[float] = []
    fast_rounds: List[float] = []
    w_values: List[float] = []
    for i, g in enumerate(graphs):
        baseline, fast = sweep.outcomes[2 * i], sweep.outcomes[2 * i + 1]
        w_values.append(g.max_weight())
        base_rounds.append(baseline.metrics.rounds)
        fast_rounds.append(fast.metrics.rounds)
        report.add_row(
            W=int(g.max_weight()),
            log2_W=round(log_w(g.max_weight()), 1),
            baseline_rounds=baseline.metrics.rounds,
            theorem2_rounds=fast.metrics.rounds,
            speedup=round(baseline.metrics.rounds / max(1, fast.metrics.rounds), 2),
            baseline_weight=round(baseline.weight, 1),
            theorem2_weight=round(fast.weight, 1),
        )
    _, base_slope = fit_loglinear(w_values, base_rounds)
    _, fast_slope = fit_loglinear(w_values, fast_rounds)
    report.findings["baseline_slope_per_log2W"] = round(base_slope, 3)
    report.findings["theorem2_slope_per_log2W"] = round(fast_slope, 3)
    report.findings["baseline_grows_with_W"] = base_slope > 0.5
    report.findings["theorem2_flat_in_W"] = abs(fast_slope) < max(0.5, base_slope / 4)
    return report


# --------------------------------------------------------------------- #
# E6 — Theorem 3: low arboricity beats Δ-based guarantees
# --------------------------------------------------------------------- #

def experiment_e6_arboricity(
    hub_degrees: Sequence[int] = (20, 40, 80),
    n: int = 300,
    eps: float = 0.5,
    seed: int = 66,
) -> ExperimentReport:
    """E6: on α << Δ graphs the 8(1+ε)α guarantee beats (1+ε)Δ, and the
    measured weights track it; the crossover sits at α = Δ/(8(1+ε))."""
    report = ExperimentReport(
        "E6", "Theorem 3 — 8(1+ε)α vs (1+ε)Δ on sparse graphs with planted hubs"
    )
    better_when_expected = True
    instances = [
        ("hub", hub, uniform_weights(
            planted_heavy_hub(n, hub, 2.0 / n, seed=seed + i), 1, 20,
            seed=seed + 10 + i,
        ))
        for i, hub in enumerate(hub_degrees)
    ]
    from repro.graphs import barabasi_albert

    ba = uniform_weights(barabasi_albert(n, 2, seed=seed + 99), 1, 20,
                         seed=seed + 98)
    instances.append(("barabasi-albert", ba.max_degree, ba))
    for kind, hub, g in instances:
        alpha = arboricity(g)
        delta = g.max_degree
        res_arb = low_arboricity_maxis(g, eps, alpha=alpha, seed=seed + 20 + hub)
        res_delta = theorem2_maxis(g, eps, seed=seed + 30 + hub)
        factor_arb = 8 * (1 + eps) * alpha
        factor_delta = (1 + eps) * delta
        arb_wins_guarantee = factor_arb < factor_delta
        if arb_wins_guarantee and res_arb.weight(g) <= 0:
            better_when_expected = False
        report.add_row(
            instance=kind,
            hub_degree=hub,
            alpha=alpha,
            delta=delta,
            factor_arb=round(factor_arb, 1),
            factor_delta=round(factor_delta, 1),
            guarantee_winner="arboricity" if arb_wins_guarantee else "delta",
            weight_arb=round(res_arb.weight(g), 1),
            weight_delta=round(res_delta.weight(g), 1),
            rounds_arb=res_arb.rounds,
            rounds_delta=res_delta.rounds,
        )
    report.findings["arboricity_algorithm_nontrivial"] = better_when_expected
    return report


# --------------------------------------------------------------------- #
# E7 — Theorems 5 and 11: the ranking algorithm
# --------------------------------------------------------------------- #

def experiment_e7_ranking(
    n: int = 600,
    degrees: Sequence[int] = (4, 8, 16),
    eps: float = 0.5,
    trials: int = 10,
    seed: int = 77,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentReport:
    """E7: |I| >= n/(8(Δ+1)) across trials; boosting reaches
    n/((1+ε)(Δ+1)); failure rate far below the exp(−n/256(Δ+1)) budget.

    The per-degree trial loops are a seed sweep and run through the batch
    engine; per-trial seeds are derived exactly as the old inline loop did.
    """
    report = ExperimentReport(
        "E7", "Theorems 5/11 — ranking: size >= n/(8(Δ+1)) w.h.p.; boosted "
              "to n/((1+ε)(Δ+1)) in O(1/ε) rounds"
    )
    ss = np.random.SeedSequence(seed)
    jobs: List[BatchJob] = []
    for d in degrees:
        for trial_seed in ss.spawn(trials):
            rng_seed = int(trial_seed.generate_state(1)[0])
            g = random_regular(n, d, seed=rng_seed)
            jobs.append(BatchJob(g, "ranking", seed=rng_seed, label=f"d={d}"))
    sweep = _sweep(jobs, n_jobs, cache_dir)
    for j, d in enumerate(degrees):
        target = n / (8.0 * (d + 1))
        successes = 0
        sizes: List[float] = []
        for outcome in sweep.outcomes[j * trials:(j + 1) * trials]:
            size = len(outcome.independent_set)
            sizes.append(size)
            if size >= target:
                successes += 1
        lo, hi = wilson_interval(successes, trials)
        report.add_row(
            delta=d,
            target_size=round(target, 1),
            mean_size=summarize_trials(sizes).mean,
            min_size=summarize_trials(sizes).minimum,
            success_rate=f"{successes}/{trials}",
            wilson_low=round(lo, 3),
        )
    # Boosted variant on the largest-degree instance.
    g = random_regular(n, degrees[-1], seed=seed)
    boosted = low_degree_maxis(g, eps, seed=seed + 1)
    boosted_target = n / ((1 + eps) * (degrees[-1] + 1))
    report.findings["boosted_size"] = boosted.size
    report.findings["boosted_target"] = round(boosted_target, 1)
    report.findings["boosted_bound_holds"] = boosted.size >= boosted_target
    report.findings["boosted_rounds"] = boosted.rounds
    return report


# --------------------------------------------------------------------- #
# E8 — Proposition 3: sequential view equivalence
# --------------------------------------------------------------------- #

def experiment_e8_sequential_view(
    trials: int = 4000,
    seed: int = 88,
) -> ExperimentReport:
    """E8: empirical TV distance between Boppana and SeqBoppana output
    distributions on a small graph is within sampling noise of 0."""
    report = ExperimentReport(
        "E8", "Proposition 3 — Boppana ≡ SeqBoppana up to 1/n^c TV distance"
    )
    g = gnp(8, 0.35, seed=seed)
    ss = np.random.SeedSequence(seed)
    dist_rank: Dict[frozenset, int] = {}
    dist_seq: Dict[frozenset, int] = {}
    for i, trial_seed in enumerate(ss.spawn(2 * trials)):
        rng_seed = int(trial_seed.generate_state(1)[0])
        if i % 2 == 0:
            s = boppana_is(g, seed=rng_seed).independent_set
            dist_rank[s] = dist_rank.get(s, 0) + 1
        else:
            s = seq_boppana(g, seed=rng_seed)
            dist_seq[s] = dist_seq.get(s, 0) + 1
    support = set(dist_rank) | set(dist_seq)
    tv = 0.5 * sum(
        abs(dist_rank.get(s, 0) / trials - dist_seq.get(s, 0) / trials)
        for s in support
    )
    # Sampling noise for TV over k categories is ~ sqrt(k / trials).
    noise = math.sqrt(len(support) / trials)
    report.add_row(
        graph=f"G({g.n}, 0.35)",
        support_size=len(support),
        trials_per_algorithm=trials,
        tv_distance=round(tv, 4),
        noise_scale=round(noise, 4),
    )
    report.findings["tv_within_noise"] = tv <= 2.5 * noise
    return report


# --------------------------------------------------------------------- #
# E9 — Theorem 4 / Figure 1: the cycle-of-cliques reduction
# --------------------------------------------------------------------- #

def experiment_e9_lower_bound(
    cycle_sizes: Sequence[int] = (20, 40, 80),
    seed: int = 99,
) -> ExperimentReport:
    """E9: RandMIS produces a correct MIS; gaps stay small on the
    cycle of cliques while plain ranking on the bare cycle leaves gaps
    that grow with n0 (the motivation for the clique blow-up)."""
    report = ExperimentReport(
        "E9", "Theorem 4 / Figure 1 — RandMIS reduction on the cycle of cliques"
    )
    for i, n0 in enumerate(cycle_sizes):
        outcome = rand_mis(n0, lambda g, seed=None: boppana_is(g, seed=seed),
                           seed=seed + i)
        bare = boppana_is(cycle(n0), seed=seed + 100 + i)
        report.add_row(
            n0=n0,
            n1=outcome.n1,
            inner_set=outcome.inner_set_size,
            projected=len(outcome.projected),
            max_gap_cliques=max(outcome.gaps),
            max_gap_bare_cycle=max_gap(n0, bare.independent_set),
            fill_rounds=outcome.fill_rounds,
            effective_rounds=outcome.effective_rounds,
            mis_size=len(outcome.mis),
        )
    report.findings["all_reductions_correct"] = True  # asserted inside rand_mis
    return report


# --------------------------------------------------------------------- #
# E10 — Ablations
# --------------------------------------------------------------------- #

def experiment_e10_ablations(
    n: int = 300,
    seed: int = 101,
) -> ExperimentReport:
    """E10: (a) dropping the weight-boost sampling term loses the heavy
    nodes on skewed instances; (b) too few boosting phases degrade the
    ratio; (c) the 4α threshold trades phases for guarantee; (d) the MIS
    black box is swappable."""
    report = ExperimentReport("E10", "Ablations of the paper's design choices")

    # (a) sampling without the w(v)/wmax(v) term on skewed weights.
    # High degree makes the 1/δ term tiny, so the uniform-only variant
    # keeps each (heavy) node only with probability ~λ log n/Δ; averaged
    # over trials the captured weight fraction collapses.
    degree = max(60, n // 3)
    fracs_full: List[float] = []
    fracs_unif: List[float] = []
    for trial in range(5):
        g_skew = skewed_heavy_set(
            random_regular(n, degree, seed=seed + trial), fraction=0.02,
            heavy=1e6, seed=seed + 1 + trial,
        )
        full = sample_subgraph(g_skew, seed=seed + 2 + trial)
        unif = sample_subgraph(g_skew, uniform_only=True, seed=seed + 2 + trial)
        fracs_full.append(full.subgraph.total_weight() / g_skew.total_weight())
        fracs_unif.append(unif.subgraph.total_weight() / g_skew.total_weight())
    frac_full = sum(fracs_full) / len(fracs_full)
    frac_unif = sum(fracs_unif) / len(fracs_unif)
    report.add_row(ablation="a: sampling term", variant="full p(v)",
                   metric=round(frac_full, 4))
    report.add_row(ablation="a: sampling term", variant="uniform only",
                   metric=round(frac_unif, 4))
    report.findings["weight_term_needed"] = frac_full > 2 * frac_unif

    # (b) boosting phase count below/at/above c/eps.
    g = uniform_weights(gnp(120, 8.0 / 120, seed=seed + 3), 1, 40, seed=seed + 4)
    eps = 0.5
    delta = g.max_degree
    c = 4.0 * (delta + 1) / max(1, delta)
    t_star = phases_for(c, eps)
    for t in (1, max(1, t_star // 2), t_star, 2 * t_star):
        res = theorem1_maxis(g, eps, phases=t, seed=seed + 5)
        report.add_row(ablation="b: phases", variant=f"t={t} (t*={t_star})",
                       metric=round(res.weight(g), 2))

    # (c) arboricity threshold factor.
    cat = uniform_weights(caterpillar(40, 8), 1, 10, seed=seed + 6)
    for factor in (2, 4, 8):
        res = low_arboricity_maxis(cat, 0.5, threshold_factor=factor,
                                   seed=seed + 7)
        report.add_row(
            ablation="c: 4α threshold", variant=f"factor={factor}",
            metric=round(res.weight(cat), 2),
        )

    # (d) MIS black-box swap.
    for mis_name in ("luby", "ghaffari", "deterministic", "coloring"):
        res = good_nodes_approx(g, mis=mis_name, seed=seed + 8)
        report.add_row(ablation="d: MIS black box", variant=mis_name,
                       metric=res.rounds)
    return report


# --------------------------------------------------------------------- #
# E11 — §8 Open Question 2: colouring-based MaxIS pays Ω(D) rounds
# --------------------------------------------------------------------- #

def experiment_e11_coloring_diameter(
    lengths: Sequence[int] = (20, 40, 80),
    eps: float = 0.5,
    seed: int = 111,
) -> ExperimentReport:
    """E11: the colouring route's rounds grow with the diameter while
    Theorem 2's stay flat — the §8 obstruction, measured."""
    from repro.coloring import (
        distributed_color_class_maxis,
        pipelined_color_class_maxis,
        random_coloring,
    )
    from repro.graphs import grid_2d

    report = ExperimentReport(
        "E11", "§8 / Open Question 2 — best colour class needs Ω(D) rounds; "
               "Theorem 2 is diameter-independent"
    )
    coloring_rounds: List[float] = []
    theorem2_rounds: List[float] = []
    for i, length in enumerate(lengths):
        g = uniform_weights(grid_2d(2, length), 1, 20, seed=seed + i)
        coloring = random_coloring(g, seed=seed + 10 + i)
        via_coloring = distributed_color_class_maxis(g, coloring.colors)
        via_pipelined = pipelined_color_class_maxis(g, coloring.colors)
        via_thm2 = theorem2_maxis(g, eps, seed=seed + 20 + i)
        coloring_rounds.append(via_pipelined.rounds)
        theorem2_rounds.append(via_thm2.rounds)
        report.add_row(
            diameter=length,  # 2 x L grid: D = L
            colors=coloring.num_colors,
            naive_rounds=coloring.rounds + via_coloring.rounds,
            pipelined_rounds=coloring.rounds + via_pipelined.rounds,
            tree_depth=via_coloring.metadata["tree_depth"],
            class_weight=round(via_coloring.weight(g), 1),
            theorem2_rounds=via_thm2.rounds,
            theorem2_weight=round(via_thm2.weight(g), 1),
        )
    grows = coloring_rounds[-1] > 2 * coloring_rounds[0]
    flat = theorem2_rounds[-1] < 2 * max(theorem2_rounds[0], 1)
    # Even the optimal Θ(D + C) pipelined schedule grows with D — the
    # barrier is the diameter itself, not the naive schedule.
    report.findings["coloring_rounds_grow_with_diameter"] = grows
    report.findings["theorem2_diameter_independent"] = flat
    return report


# --------------------------------------------------------------------- #
# E12 — §1 "Results for unweighted graphs": weighted ranking has no
# concentration (the variance blow-up the paper points out in [17])
# --------------------------------------------------------------------- #

def experiment_e12_ranking_variance(
    n_leaves: int = 200,
    heavy: float = 1e6,
    trials: int = 2000,
    seed: int = 122,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentReport:
    """E12: on a heavy-hub star, one-round ranking achieves its expected
    weight w(V)/(Δ+1) *in expectation* but almost never in any single run
    — while Theorem 9's sparsified algorithm meets its bound every time.

    This is the instance family behind the paper's remark that "for the
    algorithm given by [17] ... the variance of the solution is very
    high", motivating the w.h.p. machinery of §4.
    """
    from repro.graphs import star

    report = ExperimentReport(
        "E12", "weighted one-round ranking: high variance on heavy-hub stars "
               "(why §4 needs sparsification, not plain ranking)"
    )
    g = star(n_leaves).with_weights(
        {0: heavy, **{i: 1.0 for i in range(1, n_leaves + 1)}}
    )
    expectation_bound = g.total_weight() / (g.max_degree + 1)
    # Exact expectation of one-round ranking on the star: the hub joins
    # with probability 1/(n_leaves+1); each leaf beats the hub w.p. 1/2.
    exact_expectation = heavy / (n_leaves + 1) + n_leaves / 2.0

    # Both trial loops are pure seed sweeps over the one fixed star: route
    # them through the batch engine as a single job list (ranking trials
    # first, then the sparsified contrast runs), with per-trial seeds
    # derived exactly as the old inline loops derived them.
    ss = np.random.SeedSequence(seed)
    sparsified_trials = 20  # sparsified runs are slower; a handful suffices
    jobs: List[BatchJob] = [
        BatchJob(g, "ranking",
                 seed=int(trial_seed.generate_state(1)[0]), label="ranking")
        for trial_seed in ss.spawn(trials)
    ] + [
        BatchJob(g, "thm9",
                 seed=int(trial_seed.generate_state(1)[0]), label="sparsified")
        for trial_seed in ss.spawn(sparsified_trials)
    ]
    sweep = _sweep(jobs, n_jobs, cache_dir)

    ranking_weights: List[float] = []
    hub_joined = 0
    sparsified_ok = 0
    for outcome in sweep.outcomes[:trials]:
        if 0 in outcome.independent_set:
            hub_joined += 1
        ranking_weights.append(outcome.weight)
    for outcome in sweep.outcomes[trials:]:
        if outcome.weight >= g.total_weight() / (8 * g.max_degree):
            sparsified_ok += 1

    mean_w = sum(ranking_weights) / len(ranking_weights)
    hits = sum(1 for w in ranking_weights if w >= expectation_bound)
    median_w = sorted(ranking_weights)[len(ranking_weights) // 2]
    report.add_row(
        instance=f"star({n_leaves}), hub weight {heavy:g}",
        expectation_bound=round(expectation_bound, 1),
        exact_expectation=round(exact_expectation, 1),
        mean_ranking_weight=round(mean_w, 1),
        median_ranking_weight=round(median_w, 1),
        hub_join_rate=f"{hub_joined}/{trials} (theory {trials/(n_leaves+1):.1f})",
        runs_reaching_expectation=f"{hits}/{trials}",
        sparsified_bound_hit=f"{sparsified_ok}/{sparsified_trials}",
    )
    report.findings["expectation_met_on_average"] = (
        0.3 * exact_expectation <= mean_w <= 3 * exact_expectation
    )
    report.findings["no_concentration"] = hits / trials < 0.25
    report.findings["sparsified_always_ok"] = sparsified_ok == sparsified_trials
    return report


# --------------------------------------------------------------------- #
# E13 — message complexity of the pipelines (CONGEST traffic, not rounds)
# --------------------------------------------------------------------- #

def experiment_e13_message_complexity(
    sizes: Sequence[int] = (100, 200, 400),
    eps: float = 0.5,
    seed: int = 131,
) -> ExperimentReport:
    """E13: total messages and bits per algorithm as n grows.

    The paper's theorems are about rounds, but the simulator also accounts
    messages and bits; this table records the traffic profile of each
    pipeline on the same instances (all scale near-linearly with m — no
    pipeline hides super-linear traffic behind its round count).
    """
    from repro.core.weighted_greedy import weighted_greedy_maxis
    from repro.mis import luby_mis

    report = ExperimentReport(
        "E13", "message complexity — total messages / bits per pipeline"
    )
    per_edge_growth: Dict[str, List[float]] = {}
    for i, n in enumerate(sizes):
        g = integer_weights(gnp(n, 8.0 / n, seed=seed + i), 100, seed=seed + 10 + i)
        runs = {
            "luby_mis": luby_mis(g, seed=seed + 20 + i),
            "thm8": good_nodes_approx(g, seed=seed + 30 + i),
            "thm9": sparsified_approx(g, seed=seed + 40 + i),
            "thm1": theorem1_maxis(g, eps, seed=seed + 50 + i),
            "thm2": theorem2_maxis(g, eps, seed=seed + 60 + i),
            "bar_yehuda": bar_yehuda_maxis(g, seed=seed + 70 + i),
            "weighted_greedy": weighted_greedy_maxis(g),
        }
        row: Dict[str, object] = {"n": n, "m": g.m}
        for name, res in runs.items():
            row[f"{name}_msgs"] = res.messages
            per_edge_growth.setdefault(name, []).append(
                res.messages / max(1, g.m)
            )
        report.add_row(**row)
    # Messages per edge should stay bounded as n grows (no super-linear
    # traffic): compare first and last sweep points.
    bounded = all(
        series[-1] <= 4 * series[0] + 8 for series in per_edge_growth.values()
    )
    report.findings["messages_per_edge_bounded"] = bounded
    report.findings["messages_per_edge_last"] = {
        k: round(v[-1], 1) for k, v in per_edge_growth.items()
    }
    return report


ALL_EXPERIMENTS = {
    "E1": experiment_e1_good_nodes,
    "E2": experiment_e2_sparsify,
    "E3": experiment_e3_boosting,
    "E4": experiment_e4_theorem1,
    "E5": experiment_e5_speedup,
    "E6": experiment_e6_arboricity,
    "E7": experiment_e7_ranking,
    "E8": experiment_e8_sequential_view,
    "E9": experiment_e9_lower_bound,
    "E10": experiment_e10_ablations,
    "E11": experiment_e11_coloring_diameter,
    "E12": experiment_e12_ranking_variance,
    "E13": experiment_e13_message_complexity,
}
