"""Perf-gate benchmark harness (``repro bench`` / ``make bench-perf``).

The simulator's hot path is a deliberate optimisation target (CSR graph
kernels, the slot-indexed round scheduler — see ``docs/performance.md``),
and optimisations rot silently: a harmless-looking change to message
accounting or context plumbing can double the wall-clock cost of every
experiment without failing a single correctness test.  This module pins
the cost down.

It times a fixed matrix of **cells** — generator-zoo instance × algorithm
family (good-nodes, sparsification, Theorem 1 boosting, the pipelined
colouring-to-MaxIS) — through the batch engine (``n_jobs=1``, no cache,
so every run pays full price through the exact code path sweeps use).
Each cell is run ``repeats`` times with the *same* seed and scored by the
best (minimum) wall-clock time, which is robust to scheduler noise; the
first, warm-up repetition is discarded.

Results are written as ``BENCH_runner.json``: per-cell seconds,
rounds/sec and messages/sec, plus enough environment metadata (python,
numpy, platform, commit) to judge whether two files are comparable.  The
*gate* compares a fresh measurement against a committed baseline and
fails if any cell slowed beyond a tolerance factor.  Absolute times only
transfer between identical machines, so CI runs the gate against its own
freshly measured baseline with a wide tolerance (see the ``bench-perf``
job) while developers compare against the committed file on the machine
that produced it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.generators import gnp, grid_2d, random_tree
from repro.graphs.weights import integer_weights, uniform_weights
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "SCHEMA",
    "BASELINE_FILE",
    "pipelined_coloring",
    "MATRICES",
    "matrix_cells",
    "resolve_matrix",
    "run_perf_gate",
    "compare_reports",
    "render_report",
    "render_comparison",
    "main",
]

SCHEMA = "repro-perf-gate/v1"
BASELINE_FILE = "BENCH_runner.json"

# One fixed seed per cell: best-of-k only makes sense when every repeat
# does identical work.
CELL_SEED = 7


def pipelined_coloring(graph: WeightedGraph, *, seed: Any = None,
                       **kwargs: Any):
    """Greedy ``(Δ+1)``-colouring + pipelined best-colour-class MaxIS.

    Module-level (hence picklable) so it can ride through
    :class:`~repro.simulator.batch.BatchJob` like the registry entries.
    The pipeline is deterministic; ``seed`` is accepted for signature
    uniformity and ignored.
    """
    from repro.coloring import greedy_coloring, pipelined_color_class_maxis

    colors = greedy_coloring(graph)
    return pipelined_color_class_maxis(graph, colors, **kwargs)


# --------------------------------------------------------------------- #
# the cell matrix
# --------------------------------------------------------------------- #

def _graph_zoo() -> Dict[str, Any]:
    """Named, deterministic instance *builders* spanning the generator zoo.

    ``gnp60`` is the *tiny* tier (CI smoke); the medium cells carry the
    ≥2x hot-path speedup criterion; ``gnp100k``/``gnp200k`` are the
    columnar-backend scale tier (10⁵–10⁶ edge endpoints).  Builders keep
    matrix selection cheap — a tiny run never pays for a 200k-node
    generator.
    """
    return {
        "gnp60": lambda: integer_weights(gnp(60, 0.1, seed=5), 100, seed=6),
        "gnp300": lambda: integer_weights(gnp(300, 0.04, seed=1),
                                          1_000_000, seed=2),
        "grid300": lambda: uniform_weights(grid_2d(15, 20), 1, 100, seed=3),
        "tree400": lambda: integer_weights(random_tree(400, seed=4),
                                           1000, seed=5),
        "gnp100k": lambda: integer_weights(gnp(100_000, 8e-5, seed=3),
                                           100, seed=4),
        "gnp200k": lambda: integer_weights(gnp(200_000, 4e-5, seed=3),
                                           100, seed=4),
    }


# (name, batch algorithm) — strings resolve through algorithm_registry(),
# the callable is the colouring pipeline above.
_ALGORITHMS: Tuple[Tuple[str, Any], ...] = (
    ("thm8", "thm8"),          # good-nodes single shot (Theorem 8)
    ("thm9", "thm9"),          # sparsify-then-solve (Theorem 9)
    ("thm1", "thm1"),          # boosted (1+eps)Delta (Theorem 1)
    ("coloring", pipelined_coloring),
)

_TINY_GRAPHS = ("gnp60",)
_FULL_GRAPHS = ("gnp60", "gnp300", "grid300", "tree400")

# The columnar-backend scale tier: (graph, algorithm, backend).  The
# per-node/columnar pairs on the same (graph, algorithm) are what the
# ≥10x wall-clock criterion in ROADMAP.md is read from.  mis-det is
# RNG-free, so its kernel shows the pure array-path speedup; mis-luby
# adds a per-node RNG-bound cell for honesty (generator construction
# caps those near 4-5x).
_SCALE_CELLS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("gnp100k", "mis-det", None),
    ("gnp100k", "mis-det", "columnar"),
    ("gnp200k", "mis-det", None),
    ("gnp200k", "mis-det", "columnar"),
    ("gnp100k", "mis-luby", "columnar"),
)

# One cheap columnar scale cell for CI (the per-node reference at this
# size is too slow for a smoke job).
_COLUMNAR_TINY_CELLS = (("gnp100k", "mis-det", "columnar"),)

MATRICES = ("tiny", "full", "scale", "columnar-tiny")


def matrix_cells(matrix: str = "full") -> List[Dict[str, Any]]:
    """The cell list for ``matrix`` (one of :data:`MATRICES`).

    Each cell dict carries ``graph_name``, ``graph``, ``alg_name``,
    ``algorithm`` (a registry name or picklable callable), and
    ``backend`` (``None`` = per-node, or ``"columnar"``).  ``full`` is
    the classic generator-zoo matrix plus the scale tier; ``scale`` and
    ``columnar-tiny`` are the scale tier alone and its CI subset.
    """
    if matrix == "tiny":
        graph_names: Sequence[str] = _TINY_GRAPHS
        extra: Sequence[Tuple[str, str, Optional[str]]] = ()
    elif matrix == "full":
        graph_names = _FULL_GRAPHS
        extra = _SCALE_CELLS
    elif matrix == "scale":
        graph_names = ()
        extra = _SCALE_CELLS
    elif matrix == "columnar-tiny":
        graph_names = ()
        extra = _COLUMNAR_TINY_CELLS
    else:
        raise ValueError(
            f"unknown matrix {matrix!r}; use one of {', '.join(MATRICES)}"
        )
    zoo = _graph_zoo()
    built: Dict[str, WeightedGraph] = {}

    def graph_of(name: str) -> WeightedGraph:
        if name not in built:
            built[name] = zoo[name]()
        return built[name]

    cells = [
        {"graph_name": gname, "graph": graph_of(gname),
         "alg_name": aname, "algorithm": alg, "backend": None}
        for gname in graph_names
        for aname, alg in _ALGORITHMS
    ]
    cells.extend(
        {"graph_name": gname, "graph": graph_of(gname),
         "alg_name": f"{aname}@{backend}" if backend else aname,
         "algorithm": aname, "backend": backend}
        for gname, aname, backend in extra
    )
    return cells


# --------------------------------------------------------------------- #
# measurement
# --------------------------------------------------------------------- #

def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _environment() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "commit": _git_commit(),
    }


def _time_cell(cell: Dict[str, Any], repeats: int) -> Dict[str, Any]:
    """Best-of-``repeats`` wall clock for one cell through the batch engine.

    Submits ``repeats + 1`` identical fixed-seed jobs in one in-process
    sweep and drops the first (warm-up: imports, lazy CSR build, ...).
    """
    from repro.simulator.batch import BatchJob, batch_run

    graph = cell["graph"]
    jobs = [BatchJob(graph, cell["algorithm"], seed=CELL_SEED,
                     label=f"{cell['graph_name']}/{cell['alg_name']}",
                     backend=cell.get("backend"))
            for _ in range(repeats + 1)]
    result = batch_run(jobs, master_seed=0, n_jobs=1, cache_dir=None)
    failures = result.failures
    if failures:
        raise RuntimeError(
            f"perf-gate cell {cell['graph_name']}/{cell['alg_name']} "
            f"failed: {failures[0].error}"
        )
    timed = result.outcomes[1:]  # drop the warm-up repetition
    best = min(o.seconds for o in timed)
    metrics = timed[0].metrics
    rounds = metrics.rounds if metrics is not None else 0
    messages = metrics.messages if metrics is not None else 0
    return {
        "graph": cell["graph_name"],
        "algorithm": cell["alg_name"],
        "backend": cell.get("backend") or "per-node",
        "n": graph.n,
        "m": graph.m,
        "seconds": best,
        "rounds": rounds,
        "messages": messages,
        "rounds_per_sec": rounds / best if best > 0 else 0.0,
        "messages_per_sec": messages / best if best > 0 else 0.0,
        "weight": timed[0].weight,
    }


def run_perf_gate(matrix: str = "full", repeats: int = 3) -> Dict[str, Any]:
    """Measure every cell of ``matrix`` and return the report document."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cells = [_time_cell(cell, repeats) for cell in matrix_cells(matrix)]
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "matrix": matrix,
        "repeats": repeats,
        "cell_seed": CELL_SEED,
        "env": _environment(),
        "cells": cells,
    }


# --------------------------------------------------------------------- #
# the gate
# --------------------------------------------------------------------- #

def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = 1.5) -> Tuple[List[Dict[str, Any]], bool]:
    """Match cells by (graph, algorithm) and flag slowdowns.

    A cell **fails** when ``current.seconds > baseline.seconds *
    tolerance``.  Cells present on only one side are reported but never
    fail the gate (the tiny CI matrix is a strict subset of the full
    one).  Returns ``(rows, ok)``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    base_by_key = {(c["graph"], c["algorithm"]): c
                   for c in baseline.get("cells", [])}
    rows: List[Dict[str, Any]] = []
    ok = True
    for cell in current.get("cells", []):
        key = (cell["graph"], cell["algorithm"])
        base = base_by_key.pop(key, None)
        if base is None:
            rows.append({"graph": key[0], "algorithm": key[1],
                         "status": "new", "seconds": cell["seconds"],
                         "baseline_seconds": None, "ratio": None})
            continue
        ratio = (cell["seconds"] / base["seconds"]
                 if base["seconds"] > 0 else float("inf"))
        failed = ratio > tolerance
        ok = ok and not failed
        rows.append({
            "graph": key[0],
            "algorithm": key[1],
            "status": "FAIL" if failed else "ok",
            "seconds": cell["seconds"],
            "baseline_seconds": base["seconds"],
            "ratio": ratio,
        })
    for key in sorted(base_by_key):
        rows.append({"graph": key[0], "algorithm": key[1],
                     "status": "missing", "seconds": None,
                     "baseline_seconds": base_by_key[key]["seconds"],
                     "ratio": None})
    return rows, ok


def render_report(doc: Dict[str, Any]) -> str:
    lines = [
        f"perf gate — matrix={doc['matrix']} repeats={doc['repeats']} "
        f"commit={doc['env'].get('commit') or '?'}",
        f"{'cell':<22} {'n':>5} {'m':>6} {'ms':>9} "
        f"{'rounds/s':>10} {'msgs/s':>12}",
    ]
    for c in doc["cells"]:
        lines.append(
            f"{c['graph'] + '/' + c['algorithm']:<22} {c['n']:>5} {c['m']:>6} "
            f"{c['seconds'] * 1e3:>9.2f} {c['rounds_per_sec']:>10.0f} "
            f"{c['messages_per_sec']:>12.0f}"
        )
    return "\n".join(lines)


def render_comparison(rows: List[Dict[str, Any]], tolerance: float) -> str:
    lines = [
        f"gate vs baseline (tolerance {tolerance:g}x)",
        f"{'cell':<22} {'ms':>9} {'base ms':>9} {'ratio':>7}  status",
    ]
    for r in rows:
        ms = "-" if r["seconds"] is None else f"{r['seconds'] * 1e3:.2f}"
        base = ("-" if r["baseline_seconds"] is None
                else f"{r['baseline_seconds'] * 1e3:.2f}")
        ratio = "-" if r["ratio"] is None else f"{r['ratio']:.2f}"
        lines.append(
            f"{r['graph'] + '/' + r['algorithm']:<22} {ms:>9} {base:>9} "
            f"{ratio:>7}  {r['status']}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CLI plumbing (shared by `repro bench` and benchmarks/perf_gate.py)
# --------------------------------------------------------------------- #

def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a perf-gate report (schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r})"
        )
    return doc


def write_report(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def run_gate(*, matrix: str, repeats: int, out: Optional[str],
             baseline: Optional[str], tolerance: float,
             as_json: bool = False) -> int:
    """Measure, optionally persist, optionally gate.  Returns exit code."""
    doc = run_perf_gate(matrix=matrix, repeats=repeats)
    if out:
        write_report(doc, out)
    if as_json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_report(doc))
    if baseline is None:
        return 0
    try:
        base_doc = load_report(baseline)
    except FileNotFoundError:
        print(f"baseline {baseline!r} not found; gate skipped "
              f"(write one with --out)")
        return 0
    except ValueError as exc:
        print(str(exc))
        return 2
    rows, ok = compare_reports(doc, base_doc, tolerance=tolerance)
    print()
    print(render_comparison(rows, tolerance))
    if not ok:
        print("PERF GATE FAILED")
        return 1
    print("perf gate passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description="Time the simulator hot path over a fixed cell matrix "
                    "and gate against a committed baseline.",
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    return run_gate(matrix=resolve_matrix(args),
                    repeats=args.repeats, out=args.out,
                    baseline=args.baseline, tolerance=args.tolerance,
                    as_json=args.json)


def resolve_matrix(args: Any) -> str:
    """``--matrix`` wins; ``--tiny`` stays as the legacy spelling."""
    if getattr(args, "matrix", None):
        return args.matrix
    return "tiny" if args.tiny else "full"


def add_bench_arguments(parser: Any) -> None:
    """Shared flag set for ``repro bench`` and ``benchmarks/perf_gate.py``."""
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke matrix (gnp60 only) instead of the "
                             "full generator-zoo matrix")
    parser.add_argument("--matrix", choices=list(MATRICES), default=None,
                        help="explicit cell matrix (overrides --tiny); "
                             "'scale' is the 10^5-node backend tier, "
                             "'columnar-tiny' its one-cell CI subset")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per cell (best-of, after a "
                             "discarded warm-up run)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help=f"write the measurement as a report JSON "
                             f"(commit as {BASELINE_FILE} to set the "
                             f"baseline)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="gate against this report; exit 1 if any "
                             "matched cell slowed beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed slowdown factor per cell "
                             "(default 1.5; CI uses 3.0)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
