"""The solver engine: coalescing, admission control, micro-batching.

The asyncio core of ``repro serve``, independent of HTTP so it can be
driven (and tested) directly:

* **Coalescing.**  Requests are identified by
  ``(graph fingerprint, algorithm, seed, params)`` —
  :meth:`repro.api.SolveRequest.key`.  While a computation for a key is
  in flight, further submissions of the same key *attach* to it instead
  of enqueueing: N concurrent identical requests execute the solver
  exactly once.
* **Admission control.**  Undispatched work lives in a bounded queue;
  when it is full, new keys are rejected immediately
  (:class:`RequestRejected`, HTTP 429) rather than buffered unboundedly.
  Attaching to an in-flight key consumes no queue slot.
* **Micro-batching.**  A single dispatcher drains whatever is queued (up
  to ``max_batch``) and hands it to the existing batch engine —
  :func:`repro.simulator.batch.batch_run` with a long-lived worker pool
  and the JSON disk cache — so the serving path and ``repro sweep`` share
  one execution path, one cache, and bit-identical results.
* **Deadlines.**  A request's ``timeout_s`` bounds its wait (queue +
  compute).  On expiry the waiter gets :class:`DeadlineExceeded` (HTTP
  504); the computation itself is not abandoned, so coalesced followers
  and the disk cache still profit from it.
* **Drain.**  :meth:`SolverEngine.begin_drain` stops admission;
  :meth:`SolverEngine.drain` waits until every in-flight computation has
  resolved — the SIGTERM path of ``repro serve``.

All engine state is touched only from the event-loop thread; workers
only ever see immutable job payloads.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.api import SolveReport, SolveRequest
from repro.exceptions import ReproError
from repro.graphs.store import GraphRef
from repro.obs.telemetry import new_trace_id
from repro.registry import algorithm_registry
from repro.service.fleet.cache import LruCache
from repro.service.stats import ServiceStats

__all__ = [
    "DeadlineExceeded",
    "RequestRejected",
    "ServedReport",
    "SolverEngine",
    "UnknownAlgorithmError",
]


class RequestRejected(ReproError):
    """Admission control refused the request (queue full, or draining)."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason  # "queue_full" | "draining"


class DeadlineExceeded(ReproError):
    """The request's ``timeout_s`` elapsed before its report was ready."""


class UnknownAlgorithmError(ReproError, ValueError):
    """The requested algorithm is not in the registry."""


@dataclass(frozen=True)
class ServedReport:
    """A canonical report plus its serving provenance.

    ``seconds`` is the leader's queue-to-completion time; ``cached`` and
    ``coalesced`` say whether the disk cache or an in-flight twin served
    the request.  ``trace_id`` identifies this request; ``stages`` is its
    per-stage latency breakdown in seconds (``queue_wait``,
    ``cache_lookup``, ``solve``, ... — coalesced followers instead get
    ``coalesce_wait`` plus ``primary_trace_id``, the leader trace whose
    computation produced the report).  ``telemetry`` is the run-telemetry
    doc the execution reported (backend runs, kernel wall time, fleet
    fallbacks with reasons).  None of this is part of the canonical
    report — the report stays byte-identical however it was served.
    """

    report: SolveReport
    cached: bool = False
    coalesced: bool = False
    seconds: float = 0.0
    trace_id: str = ""
    primary_trace_id: str = ""
    stages: Dict[str, float] = field(default_factory=dict)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    # Which cache tier satisfied the request: "memory" (per-worker LRU),
    # "disk" (shared JSON cache), or "" (computed / coalesced).
    cache_tier: str = ""
    # Delta-form requests only: how the solve was performed —
    # "incremental" (report derived from the parent's cached report) or
    # "full" (the solver actually ran on the child).  Empty for
    # non-delta requests and for straight cache hits of the child's own
    # key.  ``dirty_frontier`` is the size of the outermost BFS shell of
    # the dirty region around the delta's touched nodes (-1 when not
    # computed).
    solve_mode: str = ""
    dirty_frontier: int = -1


@dataclass
class _Entry:
    request: SolveRequest
    key: str
    future: "asyncio.Future[ServedReport]"
    enqueued: float
    trace_id: str = ""


class SolverEngine:
    """Coalescing, admission-controlled front of the batch engine."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        policy: Optional[Any] = None,
        max_queue: int = 64,
        max_batch: int = 8,
        registry: Optional[Dict[str, Callable[..., Any]]] = None,
        memory_cache: int = 0,
        worker_id: str = "",
        backend: str = "per-node",
        graph_store: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if memory_cache < 0:
            raise ValueError(f"memory_cache must be >= 0, got {memory_cache}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.policy = policy
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.worker_id = worker_id
        self.backend = backend or "per-node"
        # The graph plane: a content-addressed store backing POST
        # /v1/graphs registration and graph_ref solves.  Accepts a
        # GraphStore instance (caller-owned, e.g. shared across a
        # threaded fleet), a directory path, or None — which defaults to
        # <cache_dir>/graphs next to the result cache, or an ephemeral
        # temp store without one.  Stores the engine constructs are
        # closed (and, if ephemeral, removed) in aclose().
        from repro.graphs.store import GraphStore, ephemeral_store

        if graph_store is None or isinstance(graph_store, (str, Path)):
            self._owns_graph_store = True
            if graph_store is not None:
                self._graph_store = GraphStore(graph_store)
            elif cache_dir is not None:
                self._graph_store = GraphStore(Path(cache_dir) / "graphs")
            else:
                self._graph_store = ephemeral_store()
        else:
            self._owns_graph_store = False
            self._graph_store = graph_store
        # Tier 1 of the two-tier cache: ok reports keyed by request key,
        # populated on completion (computed *and* disk-cache hits) and
        # served from the event-loop thread with no dispatch handoff.
        # Size 0 disables the tier (the single-process default).
        self._memory_cache: Optional[LruCache] = (
            LruCache(memory_cache) if memory_cache > 0 else None
        )
        # An explicit registry (tests inject counting wrappers) switches
        # jobs from name-strings to callables, which forces in-process
        # execution — callables made of closures do not cross the process
        # boundary, and tests want them observed anyway.
        self._registry = registry
        self._names = frozenset(registry if registry is not None
                                else algorithm_registry())
        self._stats = ServiceStats()
        self._inflight: Dict[str, _Entry] = {}
        # Eviction-vs-in-flight-solve safety: refs named by admitted
        # requests are pinned until their computation resolves; DELETE
        # on a pinned ref evicts *logically* (new lookups 404) and the
        # physical removal is deferred to the last unpin.
        self._ref_pins: Dict[str, int] = {}
        self._deferred_evictions: set = set()
        self._draining = False
        self._started = False
        self._pool_warm = False
        self._warmup_task: Optional[asyncio.Task] = None
        self._queue: "asyncio.Queue[_Entry]" = None  # type: ignore[assignment]
        self._dispatch_task: Optional[asyncio.Task] = None
        self._dispatch_pool: Optional[ThreadPoolExecutor] = None
        self._worker_pool: Optional[ProcessPoolExecutor] = None

    # ----------------------------------------------------------------- #
    # lifecycle
    # ----------------------------------------------------------------- #

    async def start(self) -> "SolverEngine":
        """Create the queue, worker pool, and dispatcher task."""
        if self._started:
            return self
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        if self.workers > 1 and self._registry is None:
            self._worker_pool = ProcessPoolExecutor(max_workers=self.workers)
        loop = asyncio.get_running_loop()
        self._dispatch_task = loop.create_task(self._dispatch_loop())
        if self._worker_pool is not None:
            # Readiness gate: /v1/ready answers 503 until every pool
            # process has imported and executed once, so a router never
            # sends traffic into a cold fork.
            self._warmup_task = loop.create_task(self._warm_pool())
        else:
            self._pool_warm = True
        self._started = True
        return self

    async def _warm_pool(self) -> None:
        loop = asyncio.get_running_loop()

        def spin_up() -> None:
            assert self._worker_pool is not None
            futures = [self._worker_pool.submit(_pool_warmup)
                       for _ in range(self.workers)]
            for fut in futures:
                fut.result()

        try:
            await loop.run_in_executor(self._dispatch_pool, spin_up)
        except Exception:  # noqa: BLE001 — a failed warmup must not wedge
            pass           # readiness forever; real jobs will surface it.
        self._pool_warm = True

    def begin_drain(self) -> None:
        """Stop admitting new work (health reports ``draining``)."""
        self._draining = True

    async def drain(self) -> None:
        """Block until every admitted request has a resolved future."""
        self.begin_drain()
        while self._inflight:
            waits = [asyncio.shield(e.future)
                     for e in list(self._inflight.values())]
            await asyncio.gather(*waits, return_exceptions=True)

    async def aclose(self) -> None:
        """Drain, then tear the dispatcher, pools, and graph store down."""
        if not self._started:
            if self._owns_graph_store:
                self._graph_store.close()
            return
        await self.drain()
        if self._warmup_task is not None and not self._warmup_task.done():
            self._warmup_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._warmup_task
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatch_task
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=False)
        if self._worker_pool is not None:
            self._worker_pool.shutdown(wait=False, cancel_futures=True)
        if self._owns_graph_store:
            self._graph_store.close()
        self._started = False

    # ----------------------------------------------------------------- #
    # introspection
    # ----------------------------------------------------------------- #

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """Readiness (vs liveness): started, not draining, pool warm.

        ``GET /v1/ready`` maps ``False`` to 503 — the router's signal to
        keep traffic away while this worker is warming up or draining.
        """
        return self._started and not self._draining and self._pool_warm

    @property
    def memory_cache(self) -> Optional[LruCache]:
        return self._memory_cache

    @property
    def graph_store(self):
        """The engine's content-addressed graph store (always present)."""
        return self._graph_store

    # ----------------------------------------------------------------- #
    # graph lifecycle (the eviction-vs-in-flight race lives here)
    # ----------------------------------------------------------------- #

    def ref_alive(self, fingerprint: str) -> bool:
        """Whether new requests may name this ref: stored and not
        (logically) evicted."""
        return (fingerprint not in self._deferred_evictions
                and fingerprint in self._graph_store)

    def evict_graph(self, fingerprint: str) -> Dict[str, Any]:
        """``DELETE /v1/graphs/<ref>`` semantics.

        Logical eviction is immediate — :meth:`ref_alive` turns false
        and new solves/describes 404.  Physical removal (blob, shm
        segment, memo) is deferred while any in-flight solve holds a pin
        on the ref, so a solve that already attached the arena completes
        — and its report stays certified — instead of crashing on a
        vanished segment.  Returns ``{"evicted": bool, "deferred":
        bool}``.
        """
        if self._ref_pins.get(fingerprint):
            self._deferred_evictions.add(fingerprint)
            return {"evicted": True, "deferred": True}
        evicted = self._graph_store.evict(fingerprint)
        self._deferred_evictions.discard(fingerprint)
        return {"evicted": evicted, "deferred": False}

    def _pin_ref(self, fingerprint: str) -> None:
        self._ref_pins[fingerprint] = self._ref_pins.get(fingerprint, 0) + 1

    def _unpin_ref(self, fingerprint: str) -> None:
        count = self._ref_pins.get(fingerprint, 0) - 1
        if count > 0:
            self._ref_pins[fingerprint] = count
            return
        self._ref_pins.pop(fingerprint, None)
        if fingerprint in self._deferred_evictions:
            self._deferred_evictions.discard(fingerprint)
            self._graph_store.evict(fingerprint)

    @property
    def stats(self) -> ServiceStats:
        return self._stats

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def algorithm_names(self) -> List[str]:
        return sorted(self._names)

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self._stats.snapshot(
            in_flight=self.in_flight,
            queue_depth=self.queue_depth,
            draining=self._draining,
            worker_id=self.worker_id,
            backend=self.backend,
            memory_cache=(self._memory_cache.snapshot()
                          if self._memory_cache is not None else None),
        )

    def render_prometheus(self) -> str:
        """The same metrics as Prometheus text exposition 0.0.4."""
        return self._stats.render_prometheus(
            in_flight=self.in_flight,
            queue_depth=self.queue_depth,
            draining=self._draining,
        )

    # ----------------------------------------------------------------- #
    # submission
    # ----------------------------------------------------------------- #

    async def submit(self, request: SolveRequest) -> ServedReport:
        """Admit, coalesce, and await one solve request.

        Raises:
            RequestRejected: draining, or the admission queue is full.
            UnknownAlgorithmError: the algorithm name is not registered.
            DeadlineExceeded: ``request.timeout_s`` elapsed first.
        """
        if not self._started:
            raise RuntimeError("engine not started; call await engine.start()")
        if self._draining:
            raise RequestRejected("draining", "service is draining")
        if request.algorithm not in self._names:
            raise UnknownAlgorithmError(
                f"unknown algorithm {request.algorithm!r}; "
                f"known: {self.algorithm_names()}"
            )
        key = request.key()
        trace_id = new_trace_id()
        if self._memory_cache is not None:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            report = self._memory_cache.get(key)
            if report is not None:
                lookup = loop.time() - t0
                stages = {"cache_lookup": lookup}
                self._stats.requests += 1
                self._stats.completed += 1
                self._stats.record_cache_hit("memory")
                self._stats.observe_latency(lookup)
                self._stats.observe_stages(stages)
                return ServedReport(report=report, cached=True,
                                    seconds=lookup, trace_id=trace_id,
                                    stages=stages, cache_tier="memory")
        twin = self._inflight.get(key)
        if twin is not None:
            self._stats.coalesced += 1
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            served = await self._await_entry(twin, request.timeout_s)
            wait = loop.time() - t0
            stages = {"coalesce_wait": wait}
            self._stats.observe_stages(stages)
            # The follower keeps its own identity and wait; the leader's
            # trace (which did the computing) is recorded alongside.
            return replace(served, coalesced=True, trace_id=trace_id,
                           primary_trace_id=served.trace_id, stages=stages)
        if request.delta is not None:
            served = self._serve_incremental(request, key, trace_id)
            if served is not None:
                return served
        if self._queue.full():
            self._stats.rejected += 1
            raise RequestRejected(
                "queue_full",
                f"admission queue full ({self.max_queue} pending)",
            )
        loop = asyncio.get_running_loop()
        entry = _Entry(request=request, key=key,
                       future=loop.create_future(), enqueued=loop.time(),
                       trace_id=trace_id)
        if isinstance(request.graph, GraphRef):
            # Pinned until the dispatch loop resolves this entry: a
            # DELETE racing the solve defers physical eviction instead
            # of yanking the arena out from under the workers.
            self._pin_ref(request.graph.ref)
        self._inflight[key] = entry
        # Cannot raise: fullness was checked above and only this
        # event-loop thread enqueues.
        self._queue.put_nowait(entry)
        self._stats.requests += 1
        return await self._await_entry(entry, request.timeout_s)

    async def _await_entry(self, entry: _Entry,
                           timeout_s: Optional[float]) -> ServedReport:
        # shield(): wait_for cancels the awaited future on timeout, and
        # this future is shared by every coalesced waiter — one waiter's
        # deadline must not kill the computation for the others.
        try:
            return await asyncio.wait_for(asyncio.shield(entry.future),
                                          timeout_s)
        except asyncio.TimeoutError:
            self._stats.timeouts += 1
            raise DeadlineExceeded(
                f"deadline of {timeout_s}s exceeded for "
                f"{entry.request.algorithm} (key {entry.key[:12]}…)"
            ) from None

    # ----------------------------------------------------------------- #
    # incremental re-solve (delta-form requests)
    # ----------------------------------------------------------------- #

    def _serve_incremental(self, request: SolveRequest, key: str,
                           trace_id: str) -> Optional[ServedReport]:
        """Try to derive this delta-form request's report from the
        parent's cached one (see :mod:`repro.service.incremental`).

        Returns the served derivation, or ``None`` — counted as
        ``incremental_fallback`` — when the request is ineligible
        (topology edits, weight-sensitive algorithm), no parent report
        is cached, or the cached set fails dirty-region certification.
        """
        from repro.service import incremental as inc

        loop = asyncio.get_running_loop()
        t0 = loop.time()
        if not inc.eligible(request):
            self._stats.incremental_fallback += 1
            return None
        assert request.delta is not None
        parent_key = request.key_for_fingerprint(request.delta.parent)
        parent_report: Optional[SolveReport] = None
        tier = ""
        if self._memory_cache is not None:
            parent_report = self._memory_cache.get(parent_key)
            tier = "memory"
        if parent_report is None and self.cache_dir:
            parent_report = inc.parent_report_from_disk(
                self.cache_dir, request, policy=self.policy,
                default_backend=self.backend)
            tier = "disk"
        if parent_report is None or not parent_report.ok:
            self._stats.incremental_fallback += 1
            return None
        cert = inc.certify(request.graph, parent_report.independent_set,
                           request.delta.touched)
        if cert is None:
            self._stats.incremental_fallback += 1
            return None
        _region, frontier = cert
        report = inc.derive_report(parent_report, request)
        if self._memory_cache is not None:
            # The derived report is the child's canonical report; cache
            # it under the child's own key so later solves (delta-form
            # or not) hit the memory tier directly.
            self._memory_cache.put(key, report)
        seconds = loop.time() - t0
        stages = {"incremental": seconds}
        self._stats.requests += 1
        self._stats.completed += 1
        self._stats.incremental_served += 1
        self._stats.observe_latency(seconds)
        self._stats.observe_stages(stages)
        return ServedReport(report=report, cached=True, seconds=seconds,
                            trace_id=trace_id, stages=stages,
                            cache_tier=tier, solve_mode="incremental",
                            dirty_frontier=len(frontier))

    @staticmethod
    def _frontier_size(request: SolveRequest) -> int:
        """Dirty-frontier size of a delta-form request's child graph."""
        from repro.graphs.delta import dirty_region

        assert request.delta is not None
        _region, frontier = dirty_region(request.graph,
                                         request.delta.touched)
        return len(frontier)

    # ----------------------------------------------------------------- #
    # dispatch
    # ----------------------------------------------------------------- #

    def _make_job(self, request: SolveRequest):
        from repro.simulator.batch import BatchJob

        algorithm: Any = request.algorithm
        if self._registry is not None:
            algorithm = self._registry[request.algorithm]
        # The request's backend wins; otherwise the engine's default
        # (non-per-node defaults flow into the job so the cache key and
        # execution agree with what /v1/health advertises).
        backend = request.backend or self.backend
        if backend == "per-node":
            backend = ""
        return BatchJob(request.graph, algorithm, seed=request.seed,
                        params=dict(request.params), label=request.label,
                        backend=backend or None)

    def _run_batch(self, jobs: List[Any]):
        """Blocking micro-batch execution; runs on the dispatch thread."""
        from repro.simulator.batch import batch_run

        return batch_run(
            jobs,
            n_jobs=1 if self._registry is not None else self.workers,
            cache_dir=self.cache_dir,
            policy=self.policy,
            executor=self._worker_pool,
        )

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            batch = [entry]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            jobs = [self._make_job(e.request) for e in batch]
            dispatched = loop.time()
            try:
                result = await loop.run_in_executor(
                    self._dispatch_pool, self._run_batch, jobs
                )
                outcomes = list(result.outcomes)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — infra failure:
                # resolve every waiter with a failed report instead of
                # wedging the service.
                outcomes = [None] * len(batch)
                infra_error = f"batch dispatch failed: {type(exc).__name__}: {exc}"
            else:
                infra_error = ""
            now = loop.time()
            self._stats.batches += 1
            for e, outcome in zip(batch, outcomes):
                self._inflight.pop(e.key, None)
                if isinstance(e.request.graph, GraphRef):
                    self._unpin_ref(e.request.graph.ref)
                # Delta-form entries reaching the dispatcher took the
                # full path (ineligible, or incremental fell back).
                delta_marks: Dict[str, Any] = {}
                if e.request.delta is not None:
                    delta_marks = {
                        "solve_mode": "full",
                        "dirty_frontier": self._frontier_size(e.request),
                    }
                # Stage attribution: queue_wait is admission → dispatch;
                # cache_lookup and any run-recorded stages come from the
                # outcome's telemetry; solve is compute performed *for
                # this request* (zero on a cache hit — the stored
                # outcome.seconds timed the original run).
                stages = {"queue_wait": dispatched - e.enqueued}
                if outcome is None:
                    report = _failed_report(e.request, infra_error)
                    served = ServedReport(report=report,
                                          seconds=now - e.enqueued,
                                          trace_id=e.trace_id,
                                          stages=stages,
                                          **delta_marks)
                    self._stats.failed += 1
                else:
                    stages.update(outcome.telemetry.get("stages", {}))
                    stages["solve"] = 0.0 if outcome.cached else outcome.seconds
                    report = SolveReport.from_outcome(
                        outcome,
                        graph=e.request.graph,
                        algorithm=e.request.algorithm,
                        params=e.request.params,
                    )
                    served = ServedReport(report=report,
                                          cached=outcome.cached,
                                          seconds=now - e.enqueued,
                                          trace_id=e.trace_id,
                                          stages=stages,
                                          telemetry=outcome.telemetry,
                                          cache_tier=("disk" if outcome.cached
                                                      else ""),
                                          **delta_marks)
                    self._stats.absorb_run_telemetry(outcome.telemetry)
                    if outcome.cached:
                        self._stats.record_cache_hit("disk")
                    else:
                        # An actual solver execution (not served from any
                        # cache tier) — what the fleet's exactly-once
                        # coalescing test counts across workers.
                        self._stats.executed += 1
                    if not report.ok:
                        self._stats.failed += 1
                    elif self._memory_cache is not None:
                        # Both computed results and disk-cache hits fall
                        # through into the memory tier.
                        self._memory_cache.put(e.key, report)
                self._stats.completed += 1
                self._stats.observe_latency(served.seconds)
                self._stats.observe_stages(stages)
                if not e.future.done():
                    e.future.set_result(served)


def _pool_warmup() -> bool:
    """No-op executed in each pool process to force its cold start."""
    return True


def _failed_report(request: SolveRequest, error: str) -> SolveReport:
    return SolveReport(
        algorithm=request.algorithm,
        seed=request.seed,
        graph_fingerprint=request.graph.fingerprint(),
        ok=False,
        independent_set=(),
        weight=0.0,
        rounds=0,
        messages=0,
        total_bits=0,
        metrics=None,
        params=dict(request.params),
        error=error,
        label=request.label,
    )
