"""Declarative service-level objectives for the solver service.

An :class:`SLOSpec` is a small JSON document of thresholds — tail
latency (p50/p95/p99 in milliseconds), error rate, throughput — and
:meth:`SLOSpec.evaluate` turns a set of measurements into an
:class:`SLOReport` of per-threshold verdicts, in the spirit of
:func:`repro.core.verify.certify_result`: every check records what was
*required*, what was *measured*, and whether the objective *holds*.

The loadgen (:func:`repro.service.loadgen.run_loadgen`) embeds the
report in ``BENCH_service.json`` under ``"slo"``; ``make slo-check``
(benchmarks/slo_check.py) gates CI on it — first offline against the
committed baseline document, then against a fresh loadgen burst.

Thresholds are optional: a spec that omits ``p99_ms`` simply does not
check p99.  An empty spec holds vacuously (and says so).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.aggregate import percentile

__all__ = ["SLOCheck", "SLOReport", "SLOSpec", "load_slo_spec"]


@dataclass(frozen=True)
class SLOCheck:
    """One threshold verdict: ``measured`` vs ``required``."""

    metric: str           # "p50_ms" | "p95_ms" | "p99_ms" | ...
    comparator: str       # "<=" or ">="
    required: float
    measured: float
    holds: bool

    def to_doc(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "comparator": self.comparator,
            "required": self.required,
            "measured": self.measured,
            "holds": self.holds,
        }


@dataclass(frozen=True)
class SLOReport:
    """All of one spec's verdicts against one measurement set."""

    spec_name: str
    checks: List[SLOCheck] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return all(c.holds for c in self.checks)

    @property
    def violations(self) -> List[SLOCheck]:
        return [c for c in self.checks if not c.holds]

    def to_doc(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "holds": self.holds,
            "checks": [c.to_doc() for c in self.checks],
        }

    def render(self) -> str:
        lines = [f"SLO {self.spec_name}: "
                 f"{'HOLDS' if self.holds else 'VIOLATED'}"]
        for c in self.checks:
            mark = "ok " if c.holds else "FAIL"
            lines.append(f"  [{mark}] {c.metric:<20} measured "
                         f"{c.measured:10.3f} {c.comparator} "
                         f"required {c.required:g}")
        if not self.checks:
            lines.append("  (no thresholds declared — holds vacuously)")
        return "\n".join(lines)


@dataclass(frozen=True)
class SLOSpec:
    """Thresholds; ``None`` means "not checked"."""

    name: str = "default"
    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    max_error_rate: Optional[float] = None
    min_throughput_rps: Optional[float] = None

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": "v1", "name": self.name}
        for key in ("p50_ms", "p95_ms", "p99_ms", "max_error_rate",
                    "min_throughput_rps"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    @staticmethod
    def from_doc(doc: Dict[str, Any]) -> "SLOSpec":
        if not isinstance(doc, dict):
            raise ValueError(f"SLO spec must be a JSON object, "
                             f"got {type(doc).__name__}")
        schema = doc.get("schema", "v1")
        if schema != "v1":
            raise ValueError(f"unsupported SLO spec schema {schema!r}")
        known = {"schema", "name", "p50_ms", "p95_ms", "p99_ms",
                 "max_error_rate", "min_throughput_rps"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown SLO spec fields {unknown}; "
                             f"known: {sorted(known)}")

        def _num(key: str) -> Optional[float]:
            value = doc.get(key)
            if value is None:
                return None
            value = float(value)
            if value < 0:
                raise ValueError(f"SLO threshold {key} must be >= 0, "
                                 f"got {value}")
            return value

        return SLOSpec(
            name=str(doc.get("name", "default")),
            p50_ms=_num("p50_ms"),
            p95_ms=_num("p95_ms"),
            p99_ms=_num("p99_ms"),
            max_error_rate=_num("max_error_rate"),
            min_throughput_rps=_num("min_throughput_rps"),
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        *,
        latencies_s: Optional[Sequence[float]] = None,
        p50_s: Optional[float] = None,
        p95_s: Optional[float] = None,
        p99_s: Optional[float] = None,
        sent: int = 0,
        completed: int = 0,
        throughput_rps: Optional[float] = None,
    ) -> SLOReport:
        """Verdicts from raw latencies or precomputed percentiles.

        ``latencies_s`` (client-observed seconds of *successful*
        requests) takes precedence for the percentile checks; otherwise
        the precomputed ``pXX_s`` values are used.  The error rate is
        ``(sent - completed) / sent`` — anything that was submitted and
        did not come back 200.
        """
        if latencies_s is not None:
            lat = list(latencies_s)
            p50_s = percentile(lat, 50)
            p95_s = percentile(lat, 95)
            p99_s = percentile(lat, 99)
        checks: List[SLOCheck] = []
        for metric, required, measured_s in (
            ("p50_ms", self.p50_ms, p50_s),
            ("p95_ms", self.p95_ms, p95_s),
            ("p99_ms", self.p99_ms, p99_s),
        ):
            if required is None:
                continue
            if measured_s is None:
                checks.append(SLOCheck(metric=metric, comparator="<=",
                                       required=required,
                                       measured=float("inf"), holds=False))
                continue
            measured_ms = measured_s * 1000.0
            checks.append(SLOCheck(metric=metric, comparator="<=",
                                   required=required, measured=measured_ms,
                                   holds=measured_ms <= required))
        if self.max_error_rate is not None:
            rate = ((sent - completed) / sent) if sent > 0 else 1.0
            checks.append(SLOCheck(metric="error_rate", comparator="<=",
                                   required=self.max_error_rate,
                                   measured=rate,
                                   holds=rate <= self.max_error_rate))
        if self.min_throughput_rps is not None:
            rps = throughput_rps if throughput_rps is not None else 0.0
            checks.append(SLOCheck(metric="throughput_rps", comparator=">=",
                                   required=self.min_throughput_rps,
                                   measured=rps,
                                   holds=rps >= self.min_throughput_rps))
        return SLOReport(spec_name=self.name, checks=checks)

    def evaluate_doc(self, bench: Dict[str, Any]) -> SLOReport:
        """Offline verdicts against an existing ``BENCH_service.json``
        document (the ``make slo-check`` baseline gate).  Documents
        written before p99 was recorded fall back to ``max_s`` for the
        p99 check — a conservative upper bound."""
        latency = bench.get("latency", {})
        p99 = latency.get("p99_s")
        if p99 is None:
            p99 = latency.get("max_s")
        return self.evaluate(
            p50_s=latency.get("p50_s"),
            p95_s=latency.get("p95_s"),
            p99_s=p99,
            sent=int(bench.get("sent", 0)),
            completed=int(bench.get("completed", 0)),
            throughput_rps=bench.get("throughput_rps"),
        )


def load_slo_spec(path: str) -> SLOSpec:
    """Read and validate a spec file (JSON)."""
    with open(path, "r", encoding="utf-8") as fh:
        return SLOSpec.from_doc(json.load(fh))
