"""Incremental re-solve planning for delta-form solve requests.

A solve that arrived as ``{"delta": {"parent": fp, "ops": [...]}}``
names its own provenance: the serving layer knows exactly which stored
graph the request's graph was edited from, and how.  When the parent's
report for the *same* ``(algorithm, seed, params, backend)`` is already
cached, the engine can try to **derive** the child's report instead of
re-running the solver:

1. **Eligibility** (:func:`eligible`).  The derivation is only sound
   when the cached independent set is guaranteed to be what a fresh run
   on the child would choose.  That holds exactly for *weight-only*
   deltas (topology unchanged) under *weight-oblivious* algorithms
   (:data:`WEIGHT_OBLIVIOUS` — the MIS family, whose execution never
   reads a node weight).  Everything else — topology edits, or
   weight-sensitive algorithms like the paper's ``thm*`` solvers —
   falls back to a full solve of the child.
2. **Certification** (:func:`certify`).  Even an eligible derivation is
   gated behind a structural re-check of the cached set against the
   child's *dirty region* — the radius-1 BFS ball around the touched
   nodes (:func:`repro.graphs.delta.dirty_region`), the only
   neighbourhoods an edit can have changed.  Independence and local
   maximality are re-verified there; any violation (a corrupted cache
   entry, a mis-declared delta) falls back to the full solve rather
   than serving an uncertified set.
3. **Derivation** (:func:`derive_report`).  The child's report is the
   parent's with the graph fingerprint swapped, the set weight re-summed
   under the child's weights, and the request's own label — and is
   **byte-identical** to the canonical report a full solve of the child
   would produce (pinned by the delta-plane test-suite on both
   backends).

The engine surfaces the decision as ``solve_mode``
(``"incremental"``/``"full"``) plus the dirty-frontier size in the
served envelope, and counts each outcome
(``incremental_served``/``incremental_fallback``) in ``/v1/metrics``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.api import SolveReport, SolveRequest
from repro.graphs.delta import dirty_region
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "WEIGHT_OBLIVIOUS",
    "certify",
    "derive_report",
    "eligible",
    "parent_report_from_disk",
]

# Registry algorithms whose execution is a pure function of (topology,
# seed, params) — node weights are carried in the instance but never
# read.  Only these may reuse a parent's independent set across a
# reweighting.  The paper's thm* solvers are all weight-*sensitive*
# (they bucket, compare, and exchange weights), so they always take the
# full path.
WEIGHT_OBLIVIOUS = frozenset({"mis-luby", "mis-ghaffari", "mis-det"})


def eligible(request: SolveRequest) -> bool:
    """Whether a derived (incremental) report can be *sound* for this
    request: delta-form, weight-only edits, weight-oblivious algorithm."""
    return (request.delta is not None
            and request.delta.weight_only
            and request.algorithm in WEIGHT_OBLIVIOUS)


def certify(child: WeightedGraph, independent_set: Iterable[int],
            touched: Iterable[int],
            ) -> Optional[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """Re-verify the cached set against the child's dirty region.

    Checks independence and local maximality for every node within one
    hop of a touched node — the only places an edit can have changed
    either property.  Returns ``(region, frontier)`` when the set still
    certifies there, ``None`` when it does not (→ full solve).
    """
    region, frontier = dirty_region(child, touched, radius=1)
    chosen = set(independent_set)
    for v in region:
        if v in chosen:
            if any(u in chosen for u in child.neighbors(v)):
                return None  # independence violated
        elif not any(u in chosen for u in child.neighbors(v)):
            return None      # local maximality violated
    return region, frontier


def derive_report(parent_report: SolveReport,
                  request: SolveRequest) -> SolveReport:
    """The child's canonical report, derived from the parent's.

    Sound only after :func:`eligible` and :func:`certify`: the chosen
    set, CONGEST cost accounting, metrics, and guarantee metadata are
    all weight-oblivious functions of (topology, seed, params) and carry
    over verbatim; only the graph fingerprint, the set's weight under
    the child's node weights, and the request's serving label change.
    ``total_weight`` sums in the report's set order — the same order a
    full solve uses — so the derived bytes match exactly.
    """
    child = request.graph
    return replace(
        parent_report,
        graph_fingerprint=child.fingerprint(),
        weight=child.total_weight(parent_report.independent_set),
        params=dict(request.params),
        label=request.label,
    )


def parent_report_from_disk(cache_dir: str, request: SolveRequest, *,
                            policy=None,
                            default_backend: str = "per-node",
                            ) -> Optional[SolveReport]:
    """The parent's report from the shared disk cache, if present.

    Addresses the batch engine's cache by raw coordinates (parent
    fingerprint + the request's algorithm/seed/params/backend) — no
    graph is materialized.  Returns ``None`` on a miss or a failed
    cached outcome.
    """
    from repro.simulator.batch import cached_outcome_for

    assert request.delta is not None
    backend = request.backend or default_backend
    outcome = cached_outcome_for(
        cache_dir,
        fingerprint=request.delta.parent,
        algorithm_name=request.algorithm,
        seed=request.seed,
        params=dict(request.params),
        policy=policy,
        backend_name=backend or "per-node",
    )
    if outcome is None or not outcome.ok:
        return None
    return SolveReport.from_outcome(outcome, graph=_Fingerprint(
        request.delta.parent), algorithm=request.algorithm,
        params=request.params)


class _Fingerprint:
    """Graph stand-in carrying only a fingerprint (what
    :meth:`SolveReport.from_outcome` reads)."""

    def __init__(self, fp: str) -> None:
        self._fp = fp

    def fingerprint(self) -> str:
        return self._fp
