"""Serving-side counters, histograms, and latency aggregates.

Backs both views of ``GET /v1/metrics``: the JSON snapshot (default) and
Prometheus text exposition (``?format=prometheus``).  All metrics live
in one :class:`repro.obs.telemetry.MetricRegistry` under the
``repro_service`` namespace.

Percentiles are computed over a :class:`~repro.obs.telemetry.ReservoirSample`
(Vitter's Algorithm R), not a bounded deque: under sustained load a
``deque(maxlen=N)`` only ever holds the *newest* N observations, so its
"p95" silently becomes a recent-window statistic; the reservoir keeps a
uniform sample of the whole run, which is what an SLO verdict needs.
The sampling scheme, capacity, current size, and lifetime observation
count are all reported in the snapshot (``latency_reservoir``).

All mutation happens on the event-loop thread (the engine updates stats
when futures resolve, never from worker threads); registry primitives
carry their own locks anyway so render-time reads from other threads are
safe.  Percentiles reuse the observability layer's interpolating
:func:`repro.obs.aggregate.percentile` so service p50/p95/p99 are
computed exactly like sweep-cell p50/p95.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.obs.aggregate import percentile
from repro.obs.telemetry import MetricRegistry, ReservoirSample

__all__ = ["ServiceStats"]

_RESERVOIR = 4096

# The serving stages every request is attributed to (the server adds
# ``serialize`` after the engine resolves; followers only see
# ``coalesce_wait``).  Kept here so docs/tests have one source of truth.
STAGES = ("queue_wait", "coalesce_wait", "cache_lookup", "solve",
          "incremental", "serialize")


class ServiceStats:
    """Counters + histograms + latency reservoir of one solver service."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests = 0          # accepted POST /v1/solve submissions
        self.completed = 0         # reports delivered (ok or failed)
        self.failed = 0            # reports with ok=False
        self.rejected = 0          # admission-control 429s
        self.coalesced = 0         # requests served by an in-flight twin
        self.cache_hits = 0        # reports served from the disk cache
        self.memory_cache_hits = 0  # reports served from the in-memory LRU
        self.executed = 0          # solver executions (no cache tier hit)
        self.timeouts = 0          # per-request deadlines exceeded
        self.batches = 0           # micro-batches dispatched
        self.incremental_served = 0    # delta solves derived from parent
        self.incremental_fallback = 0  # delta solves that went full-path
        self.latency_sample = ReservoirSample(_RESERVOIR)

        self.registry = MetricRegistry(namespace="repro_service")
        self._latency_hist = self.registry.histogram(
            "request_latency_seconds",
            "End-to-end queue-to-completion latency of served requests.",
        )
        self._stage_hist = self.registry.histogram(
            "stage_latency_seconds",
            "Per-stage request latency breakdown "
            "(queue_wait/coalesce_wait/cache_lookup/solve/serialize).",
            labelnames=("stage",),
        )
        self._fallback_counter = self.registry.counter(
            "fleet_fallback_total",
            "Columnar-backend fallbacks to the per-node scheduler, "
            "by reason.",
            labelnames=("algorithm", "reason"),
        )
        self._kernel_seconds = self.registry.counter(
            "fleet_kernel_seconds_total",
            "Cumulative fleet-kernel wall-clock seconds, per kernel.",
            labelnames=("kernel",),
        )
        self._kernel_runs = self.registry.counter(
            "fleet_kernel_runs_total",
            "Fleet-kernel executions, per kernel.",
            labelnames=("kernel",),
        )
        self._backend_runs = self.registry.counter(
            "backend_runs_total",
            "runner.run executions, per execution backend.",
            labelnames=("backend",),
        )
        self._cache_tier_hits = self.registry.counter(
            "cache_tier_hits_total",
            "Requests served from a result-cache tier "
            "(memory = per-worker LRU, disk = shared JSON cache).",
            labelnames=("tier",),
        )
        # JSON-snapshot mirrors of the labelled counters above (the
        # snapshot stays flat and diff-friendly).
        self.fallback_reasons: Dict[str, int] = {}
        self.fallback_details: Dict[str, str] = {}
        self.backend_runs: Dict[str, int] = {}
        self.kernel_stats: Dict[str, Dict[str, float]] = {}

    # ----------------------------------------------------------------- #
    # observation
    # ----------------------------------------------------------------- #

    def observe_latency(self, seconds: float) -> None:
        self.latency_sample.observe(seconds)
        self._latency_hist.observe(seconds)

    def record_cache_hit(self, tier: str) -> None:
        """Count one request served from ``tier`` (memory/disk)."""
        if tier == "memory":
            self.memory_cache_hits += 1
        else:
            self.cache_hits += 1
        self._cache_tier_hits.inc(tier=tier)

    def observe_stages(self, stages: Dict[str, float]) -> None:
        for name, seconds in stages.items():
            if name == "total":
                continue
            self._stage_hist.observe(seconds, stage=name)

    def absorb_run_telemetry(self, telemetry: Dict[str, Any]) -> None:
        """Fold one job outcome's run-telemetry doc (see
        :class:`repro.obs.telemetry.RunTelemetry`) into the service-wide
        aggregates — this is how kernel timings and fallbacks recorded in
        worker processes reach ``/v1/metrics``."""
        if not telemetry:
            return
        for backend, count in telemetry.get("runs", {}).items():
            self.backend_runs[backend] = (
                self.backend_runs.get(backend, 0) + int(count))
            self._backend_runs.inc(int(count), backend=backend)
        for kernel, entry in telemetry.get("kernels", {}).items():
            agg = self.kernel_stats.setdefault(
                kernel, {"runs": 0, "seconds": 0.0})
            agg["runs"] += int(entry.get("runs", 0))
            agg["seconds"] += float(entry.get("seconds", 0.0))
            self._kernel_runs.inc(int(entry.get("runs", 0)), kernel=kernel)
            self._kernel_seconds.inc(float(entry.get("seconds", 0.0)),
                                     kernel=kernel)
        for fb in telemetry.get("fallbacks", []):
            reason = str(fb.get("reason", "unknown"))
            count = int(fb.get("count", 1))
            self.fallback_reasons[reason] = (
                self.fallback_reasons.get(reason, 0) + count)
            if fb.get("detail"):
                self.fallback_details[reason] = str(fb["detail"])
            self._fallback_counter.inc(
                count, algorithm=str(fb.get("algorithm", "?")),
                reason=reason)

    # ----------------------------------------------------------------- #
    # read side
    # ----------------------------------------------------------------- #

    def snapshot(self, *, in_flight: int, queue_depth: int,
                 draining: bool, worker_id: str = "",
                 backend: str = "per-node",
                 memory_cache: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
        """The ``/v1/metrics`` JSON document."""
        lat = self.latency_sample.values()
        total = self.requests + self.coalesced
        stage_summary: Dict[str, Dict[str, float]] = {}
        for entry in self._stage_hist.series():
            stage = entry["labels"]["stage"]
            count = entry["count"]
            stage_summary[stage] = {
                "count": count,
                "total_s": entry["sum"],
                "mean_s": (entry["sum"] / count) if count else 0.0,
            }
        served_from_cache = self.cache_hits + self.memory_cache_hits
        return {
            "schema": "v1",
            "uptime_s": time.monotonic() - self.started,
            "worker_id": worker_id,
            "default_backend": backend,
            "in_flight": in_flight,
            "queue_depth": queue_depth,
            "draining": draining,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "memory_cache_hits": self.memory_cache_hits,
            "executed": self.executed,
            "timeouts": self.timeouts,
            "batches": self.batches,
            "incremental_served": self.incremental_served,
            "incremental_fallback": self.incremental_fallback,
            "cache_hit_rate": (self.cache_hits / total) if total else 0.0,
            "served_from_cache_rate": (
                (served_from_cache / total) if total else 0.0),
            "coalesce_rate": (self.coalesced / total) if total else 0.0,
            "memory_cache": memory_cache,
            "p50_latency_s": percentile(lat, 50),
            "p95_latency_s": percentile(lat, 95),
            "p99_latency_s": percentile(lat, 99),
            "observed_latencies": len(lat),
            "latency_reservoir": {
                "scheme": "reservoir-sampling (Vitter Algorithm R)",
                "capacity": self.latency_sample.capacity,
                "size": len(self.latency_sample),
                "observed_total": self.latency_sample.observed_total,
            },
            "stages": stage_summary,
            "backend": {
                "fallbacks": sum(self.fallback_reasons.values()),
                "fallback_reasons": dict(sorted(
                    self.fallback_reasons.items())),
                "fallback_details": dict(sorted(
                    self.fallback_details.items())),
                "runs": dict(sorted(self.backend_runs.items())),
                "kernels": {
                    k: {"runs": int(v["runs"]), "seconds": v["seconds"]}
                    for k, v in sorted(self.kernel_stats.items())
                },
            },
            "histograms": self.registry.snapshot(),
        }

    def render_prometheus(self, *, in_flight: int, queue_depth: int,
                          draining: bool,
                          uptime_s: Optional[float] = None) -> str:
        """Prometheus text exposition format 0.0.4 of the same state."""
        counters = {
            "requests_total": ("Accepted POST /v1/solve submissions.",
                               self.requests),
            "completed_total": ("Reports delivered (ok or failed).",
                                self.completed),
            "failed_total": ("Reports with ok=False.", self.failed),
            "rejected_total": ("Admission-control rejections (HTTP 429).",
                               self.rejected),
            "coalesced_total": ("Requests served by an in-flight twin.",
                                self.coalesced),
            "cache_hits_total": ("Reports served from the disk cache.",
                                 self.cache_hits),
            "memory_cache_hits_total": (
                "Reports served from the per-worker in-memory LRU.",
                self.memory_cache_hits),
            "executed_total": ("Solver executions (requests served by no "
                               "cache tier).", self.executed),
            "timeouts_total": ("Per-request deadlines exceeded (HTTP 504).",
                               self.timeouts),
            "batches_total": ("Micro-batches dispatched.", self.batches),
            "incremental_served_total": (
                "Delta-form solves served by deriving the parent's "
                "cached report.", self.incremental_served),
            "incremental_fallback_total": (
                "Delta-form solves that fell back to a full solve.",
                self.incremental_fallback),
        }
        for name, (help_text, value) in counters.items():
            counter = self.registry.counter(name, help_text)
            delta = value - counter.value()
            if delta > 0:
                counter.inc(delta)
        gauges = {
            "in_flight": ("Requests admitted but not yet resolved.",
                          in_flight),
            "queue_depth": ("Undispatched entries in the admission queue.",
                            queue_depth),
            "draining": ("1 while the service refuses new work.",
                         1.0 if draining else 0.0),
            "uptime_seconds": ("Seconds since the stats were created.",
                               uptime_s if uptime_s is not None
                               else time.monotonic() - self.started),
        }
        for name, (help_text, value) in gauges.items():
            self.registry.gauge(name, help_text).set(value)
        return self.registry.render_prometheus()
