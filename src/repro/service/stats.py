"""Serving-side counters and latency aggregates for ``/v1/metrics``.

All mutation happens on the event-loop thread (the engine updates stats
when futures resolve, never from worker threads), so no locking is
needed.  Latencies go into a bounded reservoir; percentiles reuse the
observability layer's interpolating :func:`repro.obs.aggregate.percentile`
so service p50/p95 are computed exactly like sweep-cell p50/p95.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict

from repro.obs.aggregate import percentile

__all__ = ["ServiceStats"]

_RESERVOIR = 4096


class ServiceStats:
    """Counters + latency reservoir of one running solver service."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests = 0          # accepted POST /v1/solve submissions
        self.completed = 0         # reports delivered (ok or failed)
        self.failed = 0            # reports with ok=False
        self.rejected = 0          # admission-control 429s
        self.coalesced = 0         # requests served by an in-flight twin
        self.cache_hits = 0        # reports served from the disk cache
        self.timeouts = 0          # per-request deadlines exceeded
        self.batches = 0           # micro-batches dispatched
        self.latencies: Deque[float] = deque(maxlen=_RESERVOIR)

    def observe_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def snapshot(self, *, in_flight: int, queue_depth: int,
                 draining: bool) -> Dict[str, Any]:
        """The ``/v1/metrics`` document."""
        lat = list(self.latencies)
        total = self.requests + self.coalesced
        return {
            "schema": "v1",
            "uptime_s": time.monotonic() - self.started,
            "in_flight": in_flight,
            "queue_depth": queue_depth,
            "draining": draining,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "timeouts": self.timeouts,
            "batches": self.batches,
            "cache_hit_rate": (self.cache_hits / total) if total else 0.0,
            "coalesce_rate": (self.coalesced / total) if total else 0.0,
            "p50_latency_s": percentile(lat, 50),
            "p95_latency_s": percentile(lat, 95),
            "observed_latencies": len(lat),
        }
