"""The solver service: an asyncio daemon serving the v1 solve contract.

Layers:

* :mod:`repro.service.engine` — coalescing, admission control,
  micro-batching over the batch engine (HTTP-free; unit-testable).
* :mod:`repro.service.server` — the stdlib HTTP/1.1 front end
  (``repro serve``).
* :mod:`repro.service.loadgen` — the closed-loop benchmark client
  (``repro loadgen``), open-loop arrivals, and the churn benchmark
  against a mutating graph (``repro loadgen --churn``).
* :mod:`repro.service.incremental` — eligibility, certification, and
  derivation of incremental re-solves for delta-form requests.
* :mod:`repro.service.errors` — the unified error taxonomy every
  non-200 response speaks (worker and router alike).
* :mod:`repro.service.stats` — serving counters, histograms, and the
  latency reservoir behind ``/v1/metrics`` (JSON + Prometheus).
* :mod:`repro.service.slo` — declarative service-level objectives and
  the verdict machinery ``make slo-check`` gates CI on.
* :mod:`repro.service.fleet` — the sharded multi-worker fleet: router,
  worker supervisor, two-tier cache, metric aggregation, and the
  open-loop saturation sweep (``repro fleet``).
"""

from repro.service.engine import (
    DeadlineExceeded,
    RequestRejected,
    ServedReport,
    SolverEngine,
    UnknownAlgorithmError,
)
from repro.service.loadgen import (
    build_request_pool,
    generate_arrivals,
    generate_churn,
    run_churn,
    run_loadgen,
    run_open_loop,
)
from repro.service.server import SolverServer, serve
from repro.service.slo import SLOCheck, SLOReport, SLOSpec, load_slo_spec
from repro.service.stats import ServiceStats

__all__ = [
    "DeadlineExceeded",
    "RequestRejected",
    "SLOCheck",
    "SLOReport",
    "SLOSpec",
    "ServedReport",
    "ServiceStats",
    "SolverEngine",
    "SolverServer",
    "UnknownAlgorithmError",
    "build_request_pool",
    "generate_arrivals",
    "generate_churn",
    "load_slo_spec",
    "run_churn",
    "run_loadgen",
    "run_open_loop",
    "serve",
]
