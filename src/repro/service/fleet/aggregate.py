"""Merging per-worker ``/v1/metrics`` snapshots into one fleet view.

Every worker serves the JSON document built by
:meth:`repro.service.stats.ServiceStats.snapshot`.  The router fetches
all of them and folds them here:

* counters are summed, rates recomputed from the fleet-wide totals;
* registry histograms are merged bucket-wise (all workers share the
  bucket bounds they were registered with), which is what makes
  fleet-wide approximate percentiles possible — per-worker p99s cannot
  be averaged, but cumulative bucket counts can be added and the
  quantile re-read off the merged distribution;
* per-worker documents are kept verbatim under ``workers`` so nothing
  is lost by aggregation.

The Prometheus view re-renders the merged registry families plus a
``worker`` label on the per-worker gauge series, so one scrape of the
router covers the whole fleet.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["aggregate_snapshots", "render_fleet_prometheus"]

# ServiceStats counters that sum across workers (same keys as the
# per-worker snapshot document).
_SUM_KEYS = (
    "requests", "completed", "failed", "rejected", "coalesced",
    "cache_hits", "memory_cache_hits", "executed", "timeouts", "batches",
    "in_flight", "queue_depth",
)

_LATENCY_HIST = "repro_service_request_latency_seconds"


def _merge_bucket_lists(
    into: List[List[Any]], add: Sequence[Tuple[str, int]],
) -> List[List[Any]]:
    """Sum two cumulative ``[(le, count), ...]`` lists bound-by-bound.

    Bounds come from the shared registry defaults so they line up; if a
    worker ever reports a different ladder the union is taken and the
    missing bounds contribute their nearest lower cumulative count.
    """
    if not into:
        return [[le, int(n)] for le, n in add]
    merged: Dict[str, int] = {le: int(n) for le, n in into}
    for le, n in add:
        merged[le] = merged.get(le, _floor_count(into, le)) + int(n)
    def sort_key(le: str) -> float:
        return float("inf") if le == "+Inf" else float(le)
    return [[le, merged[le]] for le in sorted(merged, key=sort_key)]


def _floor_count(buckets: Sequence[Sequence[Any]], le: str) -> int:
    """Cumulative count a new bound inherits when one side lacks it."""
    bound = float("inf") if le == "+Inf" else float(le)
    best = 0
    for other_le, n in buckets:
        other = float("inf") if other_le == "+Inf" else float(other_le)
        if other <= bound:
            best = int(n)
    return best


def _merge_histograms(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge the ``histograms`` registry sections of worker snapshots."""
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for name, family in (snap.get("histograms") or {}).items():
            slot = merged.setdefault(name, {
                "kind": family.get("kind"),
                "help": family.get("help"),
                "series": [],
            })
            for entry in family.get("series", []):
                labels = entry.get("labels") or {}
                target = next(
                    (s for s in slot["series"] if s["labels"] == labels), None)
                if target is None:
                    target = {"labels": dict(labels)}
                    if "buckets" in entry:
                        target["buckets"] = []
                        target["sum"] = 0.0
                        target["count"] = 0
                    else:
                        target["value"] = 0.0
                    slot["series"].append(target)
                if "buckets" in entry:
                    target["buckets"] = _merge_bucket_lists(
                        target["buckets"], entry["buckets"])
                    target["sum"] += float(entry.get("sum", 0.0))
                    target["count"] += int(entry.get("count", 0))
                else:
                    target["value"] += float(entry.get("value", 0.0))
    return merged


def _quantile_from_buckets(buckets: Sequence[Sequence[Any]],
                           count: int, q: float) -> float:
    """Approximate quantile read off cumulative histogram buckets.

    Linear interpolation inside the containing bucket (Prometheus
    ``histogram_quantile`` semantics); the +Inf bucket clamps to the
    highest finite bound.
    """
    if count <= 0 or not buckets:
        return 0.0
    rank = q / 100.0 * count
    prev_bound, prev_cum = 0.0, 0
    last_finite = 0.0
    for le, cum in buckets:
        if le == "+Inf":
            return last_finite
        bound = float(le)
        last_finite = bound
        if cum >= rank and cum > prev_cum:
            frac = (rank - prev_cum) / (cum - prev_cum)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_cum = bound, cum
    return last_finite


def aggregate_snapshots(
    snapshots: List[Dict[str, Any]],
    *,
    router: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One fleet-wide metrics document from per-worker snapshots.

    ``router`` is the router's own counters (routed/failovers/...),
    included verbatim when given.  Workers that could not be scraped
    should simply be absent from ``snapshots`` — ``workers_reporting``
    records how many answered.
    """
    doc: Dict[str, Any] = {
        "schema": "v1",
        "scope": "fleet",
        "workers_reporting": len(snapshots),
    }
    totals = {key: 0 for key in _SUM_KEYS}
    memory = {"maxsize": 0, "size": 0, "hits": 0, "misses": 0, "evictions": 0}
    any_memory = False
    stages: Dict[str, Dict[str, float]] = {}
    fallback_reasons: Dict[str, int] = {}
    backend_runs: Dict[str, int] = {}
    kernels: Dict[str, Dict[str, float]] = {}
    draining = False
    for snap in snapshots:
        for key in _SUM_KEYS:
            totals[key] += int(snap.get(key, 0))
        draining = draining or bool(snap.get("draining"))
        mc = snap.get("memory_cache")
        if mc:
            any_memory = True
            for key in memory:
                memory[key] += int(mc.get(key, 0))
        for stage, entry in (snap.get("stages") or {}).items():
            agg = stages.setdefault(stage, {"count": 0, "total_s": 0.0})
            agg["count"] += entry.get("count", 0)
            agg["total_s"] += entry.get("total_s", 0.0)
        backend = snap.get("backend") or {}
        for reason, n in (backend.get("fallback_reasons") or {}).items():
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + n
        for name, n in (backend.get("runs") or {}).items():
            backend_runs[name] = backend_runs.get(name, 0) + n
        for name, entry in (backend.get("kernels") or {}).items():
            agg = kernels.setdefault(name, {"runs": 0, "seconds": 0.0})
            agg["runs"] += entry.get("runs", 0)
            agg["seconds"] += entry.get("seconds", 0.0)
    for agg in stages.values():
        agg["mean_s"] = (agg["total_s"] / agg["count"]) if agg["count"] else 0.0

    doc.update(totals)
    doc["draining"] = draining
    total = totals["requests"] + totals["coalesced"]
    served_from_cache = totals["cache_hits"] + totals["memory_cache_hits"]
    doc["cache_hit_rate"] = (totals["cache_hits"] / total) if total else 0.0
    doc["served_from_cache_rate"] = (
        (served_from_cache / total) if total else 0.0)
    doc["coalesce_rate"] = (totals["coalesced"] / total) if total else 0.0
    doc["memory_cache"] = dict(
        memory,
        hit_rate=(memory["hits"] / (memory["hits"] + memory["misses"])
                  if (memory["hits"] + memory["misses"]) else 0.0),
    ) if any_memory else None
    doc["stages"] = {k: stages[k] for k in sorted(stages)}
    doc["backend"] = {
        "fallbacks": sum(fallback_reasons.values()),
        "fallback_reasons": dict(sorted(fallback_reasons.items())),
        "runs": dict(sorted(backend_runs.items())),
        "kernels": {k: {"runs": int(v["runs"]), "seconds": v["seconds"]}
                    for k, v in sorted(kernels.items())},
    }

    histograms = _merge_histograms(snapshots)
    doc["histograms"] = histograms
    latency = histograms.get(_LATENCY_HIST, {}).get("series") or []
    unlabelled = next((s for s in latency if not s["labels"]), None)
    if unlabelled is not None:
        buckets, count = unlabelled["buckets"], unlabelled["count"]
        doc["latency_approx"] = {
            "method": "merged-histogram interpolation",
            "count": count,
            "p50_s": _quantile_from_buckets(buckets, count, 50),
            "p95_s": _quantile_from_buckets(buckets, count, 95),
            "p99_s": _quantile_from_buckets(buckets, count, 99),
        }
    else:
        doc["latency_approx"] = None

    doc["workers"] = {
        str(snap.get("worker_id", i)): snap
        for i, snap in enumerate(snapshots)
    }
    if router is not None:
        doc["router"] = router
    return doc


def _fmt(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


def render_fleet_prometheus(
    snapshots: List[Dict[str, Any]],
    *,
    router: Optional[Dict[str, Any]] = None,
) -> str:
    """Prometheus text exposition 0.0.4 of the merged fleet state.

    Counter families carry fleet totals plus a per-worker breakdown via
    a ``worker`` label; the merged request-latency histogram is emitted
    with standard ``_bucket``/``_sum``/``_count`` series so
    ``histogram_quantile`` works on one router scrape.
    """
    merged = aggregate_snapshots(snapshots, router=router)
    lines: List[str] = []

    counter_help = {
        "requests": "Accepted POST /v1/solve submissions.",
        "completed": "Reports delivered (ok or failed).",
        "failed": "Reports with ok=False.",
        "rejected": "Admission-control rejections (HTTP 429).",
        "coalesced": "Requests served by an in-flight twin.",
        "cache_hits": "Reports served from the shared disk cache.",
        "memory_cache_hits": "Reports served from per-worker memory LRUs.",
        "executed": "Solver executions (no cache tier hit).",
        "timeouts": "Per-request deadlines exceeded.",
        "batches": "Micro-batches dispatched.",
    }
    for key, help_text in counter_help.items():
        name = f"repro_fleet_{key}_total"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(merged[key])}")
        for worker_id, snap in sorted(merged["workers"].items()):
            lines.append(f'{name}{{worker="{worker_id}"}} '
                         f"{_fmt(snap.get(key, 0))}")

    gauge_help = {
        "in_flight": "Requests admitted but not yet resolved, fleet-wide.",
        "queue_depth": "Undispatched admission-queue entries, fleet-wide.",
        "workers_reporting": "Workers whose metrics were scraped.",
    }
    for key, help_text in gauge_help.items():
        name = f"repro_fleet_{key}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(merged[key])}")

    if router is not None:
        for key, value in sorted(router.items()):
            if not isinstance(value, (int, float)):
                continue
            name = f"repro_fleet_router_{key}"
            lines.append(f"# HELP {name} Router-side counter.")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(value)}")

    latency = (merged["histograms"].get(_LATENCY_HIST) or {}).get("series")
    unlabelled = next((s for s in latency or [] if not s["labels"]), None)
    if unlabelled is not None:
        name = "repro_fleet_request_latency_seconds"
        lines.append(f"# HELP {name} Merged per-worker request latency.")
        lines.append(f"# TYPE {name} histogram")
        for le, cum in unlabelled["buckets"]:
            lines.append(f'{name}_bucket{{le="{le}"}} {int(cum)}')
        lines.append(f"{name}_sum {_fmt(unlabelled['sum'])}")
        lines.append(f"{name}_count {int(unlabelled['count'])}")

    return "\n".join(lines) + "\n"
