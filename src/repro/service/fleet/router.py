"""The fleet router: one HTTP front door, N sharded solver workers.

``repro fleet`` binds this router.  ``POST /v1/solve`` is forwarded to
the worker that owns the request's shard —
``sha256(SolveRequest.key())`` modulo the worker count
(:func:`repro.service.fleet.routing.shard_for_key`) — so every
identical request lands on the same worker regardless of which client
sent it or when.  That placement is the whole point: the per-worker
coalescer still collapses concurrent twins and the per-worker memory
LRU still sees its repeats, i.e. coalescing and cache locality survive
sharding.

Routing is cheap on the hot path: the router keeps a body-bytes →
shard-key LRU, so a repeated request body costs one sha256 of the raw
bytes, not a JSON parse.  ``graph_ref`` requests are cheaper still —
the ref *is* the graph fingerprint, so the shard key falls out of the
tiny JSON body without materializing a graph (and co-locates with
body-based twins of the same graph, because the fingerprints agree).
Unparseable or schema-invalid bodies are sharded by their body hash
instead and forwarded anyway — the worker owns the canonical 400, the
router never duplicates that logic.  Oversized graph declarations are
the one exception (413 at the router, before any bytes cross to a
worker).

The graph registry (``/v1/graphs``) is proxied too: workers share one
content-addressed store directory, so registration and lookup forward
to any alive worker, while ``DELETE`` broadcasts so every worker drops
its in-process attach state.

Failover: if the owning worker is down, the request walks to the next
alive worker (placement degrades for exactly the keys owned by the dead
shard, correctness never does — any worker can solve any request).  A
background reaper notices dead workers and asks the supervisor to
restart them.

``GET /v1/metrics`` scrapes every worker and serves the merged fleet
document (:mod:`repro.service.fleet.aggregate`); ``?format=prometheus``
is the same state as one text exposition.  ``/v1/health`` and
``/v1/ready`` aggregate worker health; the router itself drains on
SIGTERM by refusing new work, draining the workers, then exiting.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import signal
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs

from repro._version import __version__
from repro.api import (
    SCHEMA_VERSION,
    SchemaError,
    SolveRequest,
    delta_route_key_from_doc,
    request_key_from_doc,
)
from repro.service.errors import HTTP_REASONS, error_doc, pop_headers
from repro.service.fleet.aggregate import (
    aggregate_snapshots,
    render_fleet_prometheus,
)
from repro.service.fleet.cache import LruCache
from repro.service.fleet.routing import shard_for_key
from repro.service.fleet.supervisor import FleetSupervisor, WorkerEndpoint
from repro.service.server import (
    JSON_CONTENT_TYPE,
    MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    SolverServer,
)

__all__ = ["FleetRouter", "run_fleet"]

# How many idle keep-alive connections the router parks per worker.
POOL_SIZE = 16
# Worker-side request timeout the router enforces on proxied calls
# (workers enforce per-request deadlines themselves; this is the
# backstop against a hung worker socket).
PROXY_TIMEOUT_S = 300.0
HEALTH_TIMEOUT_S = 5.0
REAP_INTERVAL_S = 1.0


class _UpstreamError(Exception):
    """The proxied worker could not be reached or answered garbage."""


class _WorkerChannel:
    """Keep-alive connection pool to one worker endpoint."""

    def __init__(self, endpoint: WorkerEndpoint) -> None:
        self.endpoint = endpoint
        self._free: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(self, method: str, path: str, body: bytes = b"",
                      timeout_s: float = PROXY_TIMEOUT_S,
                      ) -> Tuple[int, bytes, str]:
        """Proxy one request; returns (status, body, content type).

        A pooled connection may have been closed by the worker while
        parked; the first attempt reuses one, the second always dials
        fresh before the failure is declared upstream.
        """
        last: Optional[BaseException] = None
        for attempt in (1, 2):
            conn = self._free.pop() if (attempt == 1 and self._free) else None
            try:
                if conn is None:
                    conn = await asyncio.wait_for(
                        asyncio.open_connection(self.endpoint.host,
                                                self.endpoint.port),
                        timeout=HEALTH_TIMEOUT_S,
                    )
                reader, writer = conn
                head = (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {self.endpoint.host}:{self.endpoint.port}\r\n"
                    f"Content-Type: {JSON_CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"\r\n"
                ).encode("latin-1")
                writer.write(head + body)
                await writer.drain()
                status, payload, ctype, reusable = await asyncio.wait_for(
                    self._read_response(reader), timeout=timeout_s)
                if reusable and len(self._free) < POOL_SIZE:
                    self._free.append((reader, writer))
                else:
                    await _close_writer(writer)
                return status, payload, ctype
            except (OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, ConnectionError) as exc:
                last = exc
                if conn is not None:
                    await _close_writer(conn[1])
        raise _UpstreamError(
            f"worker {self.endpoint.worker_id} "
            f"({self.endpoint.host}:{self.endpoint.port}): {last}")

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, bytes, str, bool]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("worker closed connection")
        status = int(status_line.split()[1])
        length = 0
        ctype = JSON_CONTENT_TYPE
        keep = True
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            lname = name.strip().lower()
            if lname == "content-length":
                length = int(value.strip())
            elif lname == "content-type":
                ctype = value.strip()
            elif lname == "connection" and value.strip().lower() == "close":
                keep = False
        payload = await reader.readexactly(length) if length else b""
        return status, payload, ctype, keep

    async def close(self) -> None:
        for _, writer in self._free:
            await _close_writer(writer)
        self._free.clear()


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    with contextlib.suppress(Exception):
        writer.close()
        await writer.wait_closed()


class FleetRouter:
    """Shard-routing HTTP proxy over a supervisor's worker pool."""

    def __init__(self, supervisor: Any, *, host: str = "127.0.0.1",
                 port: int = 0, routing_cache: int = 4096) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._endpoints = supervisor.endpoints()
        self._channels = [_WorkerChannel(e) for e in self._endpoints]
        self._server: Optional[asyncio.base_events.Server] = None
        self._reaper: Optional[asyncio.Task] = None
        self._draining = False
        # body sha256 → shard key: repeats skip the JSON parse.
        self._routing_cache: Optional[LruCache] = (
            LruCache(routing_cache) if routing_cache > 0 else None
        )
        self.stats: Dict[str, int] = {
            "routed": 0, "failovers": 0, "routing_cache_hits": 0,
            "parse_routed": 0, "ref_routed": 0, "delta_routed": 0,
            "body_routed": 0, "upstream_errors": 0, "restarts": 0,
        }

    @property
    def shards(self) -> int:
        return len(self._endpoints)

    # ----------------------------------------------------------------- #
    # lifecycle
    # ----------------------------------------------------------------- #

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_loop())
        return self.port

    async def shutdown(self, *, drain_workers: bool = True) -> None:
        """Stop admitting, drain the workers, close every channel."""
        self._draining = True
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Parked keep-alive connections are closed before the workers
        # drain — a draining worker cancelling a half-open router
        # connection is pure teardown noise.
        for channel in self._channels:
            await channel.close()
        if drain_workers:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.supervisor.drain)

    async def _reap_loop(self) -> None:
        """Restart crashed workers in the background (supervisor.check
        is blocking — subprocess wait + readiness poll — so it runs in
        the default executor, never on the event loop)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(REAP_INTERVAL_S)
            try:
                restarted = await loop.run_in_executor(
                    None, self.supervisor.check)
            except Exception:  # noqa: BLE001 — reaping must not die
                continue
            if restarted:
                self.stats["restarts"] += len(restarted)

    # ----------------------------------------------------------------- #
    # connection handling (same minimal HTTP/1.1 as the worker server)
    # ----------------------------------------------------------------- #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    return
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, ctype = await self._route(method, path, body)
                await self._write_response(writer, status, payload, ctype,
                                           close=not keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            await _close_writer(writer)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        method, path, _version = line.decode("latin-1").split()
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError("oversized body")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: Union[bytes, str, Dict[str, Any]],
                              ctype: str, *, close: bool) -> None:
        headers = pop_headers(payload)
        if isinstance(payload, dict):
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode()
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in headers.items())
        head = (
            f"HTTP/1.1 {status} {HTTP_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ----------------------------------------------------------------- #
    # routing
    # ----------------------------------------------------------------- #

    async def _route(self, method: str, path: str, body: bytes,
                     ) -> Tuple[int, Union[bytes, str, Dict[str, Any]], str]:
        path, _, query = path.partition("?")
        if path == "/v1/solve":
            if method != "POST":
                return self._error(405, "use POST for /v1/solve",
                                   allow="POST")
            return await self._solve(body)
        if path == "/v1/graphs" or path.startswith("/v1/graphs/"):
            return await self._graphs(method, path, body)
        if method not in ("GET", "HEAD"):
            return self._error(405, f"use GET for {path}",
                               allow="GET, HEAD")
        if path == "/v1/health":
            return await self._health()
        if path == "/v1/ready":
            return await self._ready()
        if path == "/v1/metrics":
            fmt = (parse_qs(query).get("format") or ["json"])[-1]
            if fmt not in ("json", "prometheus"):
                return self._error(400, f"unknown metrics format {fmt!r}; "
                                        f"use 'json' or 'prometheus'")
            return await self._metrics(fmt)
        if path == "/v1/algorithms":
            # Identical on every worker; any alive one may answer.
            return await self._forward_any("GET", "/v1/algorithms")
        return self._error(404, f"no route {path!r}")

    def _shard_key(self, body: bytes) -> str:
        """The string whose sha256 places this request on a shard.

        Well-formed bodies shard by the canonical request fingerprint
        (``SolveRequest.key()``) so all encodings of the same logical
        request co-locate; malformed bodies shard by their body hash —
        the owning worker produces the canonical 400.
        """
        body_hash = hashlib.sha256(body).hexdigest()
        if self._routing_cache is not None:
            cached = self._routing_cache.get(body_hash)
            if cached is not None:
                self.stats["routing_cache_hits"] += 1
                return cached
        try:
            doc = json.loads(body.decode("utf-8"))
            ref_key = request_key_from_doc(doc)
            delta_key = (delta_route_key_from_doc(doc)
                         if ref_key is None else None)
            if ref_key is not None:
                # graph_ref request: the ref IS the canonical fingerprint,
                # so the shard key is computable without touching a graph
                # store or materializing anything.  Body-based twins of
                # the same graph land on the same shard because
                # GraphRef.fingerprint() == WeightedGraph.fingerprint().
                key = ref_key
                self.stats["ref_routed"] += 1
            elif delta_key is not None:
                # Delta-form request: the canonical key needs the *child*
                # fingerprint (only computable by applying the delta), but
                # the parent-keyed stand-in colocates the solve with the
                # worker whose memory LRU holds the parent's report — the
                # incremental path's cache locality.  Identical delta
                # bodies still coalesce at that worker.
                key = delta_key
                self.stats["delta_routed"] += 1
            else:
                oversized = SolverServer._graph_too_large(doc)
                if oversized is not None:
                    raise _OversizedGraph(oversized)
                key = SolveRequest.from_doc(doc).key()
                self.stats["parse_routed"] += 1
        except _OversizedGraph:
            raise
        except (ValueError, UnicodeDecodeError, SchemaError, TypeError,
                KeyError):
            key = body_hash
            self.stats["body_routed"] += 1
        if self._routing_cache is not None:
            self._routing_cache.put(body_hash, key)
        return key

    async def _solve(self, body: bytes,
                     ) -> Tuple[int, Union[bytes, Dict[str, Any]], str]:
        if self._draining:
            return self._error(503, "fleet is draining")
        loop = asyncio.get_running_loop()
        try:
            # Parsing a previously unseen body materializes the graph —
            # off the event loop, so one giant request cannot stall
            # routing for everyone else.
            key = await loop.run_in_executor(None, self._shard_key, body)
        except _OversizedGraph as exc:
            return self._error(413, str(exc))
        shard = shard_for_key(key, self.shards)
        status_payload = await self._forward_sharded(shard, body)
        return status_payload

    async def _forward_sharded(
        self, shard: int, body: bytes, path: str = "/v1/solve",
    ) -> Tuple[int, Union[bytes, Dict[str, Any]], str]:
        """Send to the owning worker; walk forward on failure.

        Every worker is tried at most once.  A worker that fails is
        marked dead (the reaper restarts it); the request itself keeps
        going — failover costs placement (coalescing for that key until
        the owner returns), never availability.
        """
        last_error = ""
        for offset in range(self.shards):
            index = (shard + offset) % self.shards
            endpoint = self._endpoints[index]
            if not endpoint.alive:
                continue
            try:
                status, payload, ctype = await self._channels[index].request(
                    "POST", path, body)
            except _UpstreamError as exc:
                endpoint.alive = False
                self.stats["upstream_errors"] += 1
                last_error = str(exc)
                continue
            self.stats["routed"] += 1
            if offset:
                self.stats["failovers"] += 1
            return status, payload, ctype
        return self._error(503, f"no worker available ({last_error})")

    async def _forward_any(
        self, method: str, path: str, body: bytes = b"",
    ) -> Tuple[int, Union[bytes, Dict[str, Any]], str]:
        for index, endpoint in enumerate(self._endpoints):
            if not endpoint.alive:
                continue
            try:
                return await self._channels[index].request(method, path, body)
            except _UpstreamError:
                endpoint.alive = False
                self.stats["upstream_errors"] += 1
        return self._error(503, "no worker available")

    # ----------------------------------------------------------------- #
    # graph plane
    # ----------------------------------------------------------------- #

    async def _graphs(self, method: str, path: str, body: bytes,
                      ) -> Tuple[int, Union[bytes, Dict[str, Any]], str]:
        """Proxy the graph registry.

        Workers share one content-addressed store directory, so a graph
        registered through *any* worker is immediately resolvable by all
        of them — ``POST`` and ``GET``/``HEAD`` forward to any alive
        worker.  Two exceptions: ``DELETE`` must also drop each worker's
        in-process attach memo and shared-memory mapping, so it
        broadcasts to every alive worker and merges the answers; and
        ``POST .../deltas`` shards by the parent ref, so one mutating
        client's delta chain grows on one worker (whose attach memo
        already holds the parent) instead of faulting every store onto
        every worker.
        """
        if path == "/v1/graphs":
            if method != "POST":
                return self._error(405, "use POST for /v1/graphs",
                                   allow="POST")
            if self._draining:
                return self._error(503, "fleet is draining")
            return await self._forward_any("POST", "/v1/graphs", body)
        if path.endswith("/deltas"):
            if method != "POST":
                return self._error(405, f"use POST for {path}",
                                   allow="POST")
            if self._draining:
                return self._error(503, "fleet is draining")
            parent = path[len("/v1/graphs/"):-len("/deltas")]
            return await self._forward_sharded(
                shard_for_key(parent, self.shards), body, path)
        if method in ("GET", "HEAD"):
            return await self._forward_any(method, path)
        if method == "DELETE":
            return await self._evict_graph(path)
        return self._error(405, f"unsupported method {method} for {path}",
                           allow="GET, HEAD, DELETE")

    async def _evict_graph(self, path: str,
                           ) -> Tuple[int, Dict[str, Any], str]:
        """Broadcast a graph eviction to every alive worker.

        The first worker to delete the backing file answers
        ``evicted: true``; the rest drop their local attach state and
        report the ref as already gone.  The merged response says
        whether *any* worker actually evicted, which is the fleet-level
        truth the client cares about.
        """
        async def one(index: int) -> Optional[Dict[str, Any]]:
            endpoint = self._endpoints[index]
            if not endpoint.alive:
                return None
            try:
                status, payload, _ = await self._channels[index].request(
                    "DELETE", path, timeout_s=HEALTH_TIMEOUT_S)
            except _UpstreamError:
                endpoint.alive = False
                self.stats["upstream_errors"] += 1
                return None
            try:
                doc = json.loads(payload) if payload else {}
            except ValueError:
                doc = {}
            doc["_status"] = status
            return doc

        polled = [doc for doc in await asyncio.gather(
            *(one(i) for i in range(self.shards))) if doc is not None]
        if not polled:
            return self._error(503, "no worker available")
        bad = next((doc for doc in polled
                    if doc.get("_status") not in (200, 404)), None)
        if bad is not None:
            status = int(bad.get("_status", 500))
            return status, {k: v for k, v in bad.items()
                            if not k.startswith("_")}, JSON_CONTENT_TYPE
        evicted = any(doc.get("evicted") for doc in polled)
        ref = next((doc.get("graph_ref") for doc in polled
                    if doc.get("graph_ref")), path.rsplit("/", 1)[-1])
        return 200, {
            "schema": SCHEMA_VERSION,
            "graph_ref": ref,
            "evicted": evicted,
            "workers_polled": len(polled),
        }, JSON_CONTENT_TYPE

    # ----------------------------------------------------------------- #
    # fleet health + metrics
    # ----------------------------------------------------------------- #

    async def _poll_workers(
        self, path: str,
    ) -> List[Optional[Dict[str, Any]]]:
        async def one(index: int) -> Optional[Dict[str, Any]]:
            try:
                status, payload, _ = await self._channels[index].request(
                    "GET", path, timeout_s=HEALTH_TIMEOUT_S)
            except _UpstreamError:
                return None
            try:
                doc = json.loads(payload)
            except ValueError:
                return None
            doc["_status"] = status
            return doc

        return list(await asyncio.gather(
            *(one(i) for i in range(self.shards))))

    async def _health(self) -> Tuple[int, Dict[str, Any], str]:
        polled = await self._poll_workers("/v1/health")
        workers = {}
        for endpoint, doc in zip(self._endpoints, polled):
            workers[endpoint.worker_id] = {
                "alive": doc is not None,
                "restarts": endpoint.restarts,
                **({k: v for k, v in doc.items() if not k.startswith("_")}
                   if doc else {}),
            }
        alive = sum(1 for doc in polled if doc is not None)
        status = ("draining" if self._draining
                  else "ok" if alive == self.shards
                  else "degraded" if alive else "down")
        return 200, {
            "schema": SCHEMA_VERSION,
            "status": status,
            "version": __version__,
            "role": "fleet-router",
            "shards": self.shards,
            "workers_alive": alive,
            "workers": workers,
        }, JSON_CONTENT_TYPE

    async def _ready(self) -> Tuple[int, Dict[str, Any], str]:
        polled = await self._poll_workers("/v1/ready")
        ready = sum(1 for doc in polled
                    if doc is not None and doc.get("_status") == 200)
        ok = not self._draining and ready == self.shards
        return (200 if ok else 503), {
            "schema": SCHEMA_VERSION,
            "status": ("ready" if ok
                       else "draining" if self._draining else "warming"),
            "shards": self.shards,
            "workers_ready": ready,
        }, JSON_CONTENT_TYPE

    async def _metrics(
        self, fmt: str,
    ) -> Tuple[int, Union[str, Dict[str, Any]], str]:
        polled = await self._poll_workers("/v1/metrics")
        snapshots = [
            {k: v for k, v in doc.items() if k != "_status"}
            for doc in polled if doc is not None
        ]
        router = dict(self.stats, shards=self.shards)
        if fmt == "prometheus":
            return (200, render_fleet_prometheus(snapshots, router=router),
                    PROMETHEUS_CONTENT_TYPE)
        return (200, aggregate_snapshots(snapshots, router=router),
                JSON_CONTENT_TYPE)

    @staticmethod
    def _error(status: int, message: str, *, detail: str = "",
               allow: Optional[str] = None,
               ) -> Tuple[int, Dict[str, Any], str]:
        status, doc = error_doc(status, message, detail=detail, allow=allow)
        return status, doc, JSON_CONTENT_TYPE


class _OversizedGraph(Exception):
    """Raised inside shard-key computation for a 413 at the router."""


async def _run_fleet_async(router: FleetRouter, *, banner: bool) -> None:
    port = await router.start()
    if banner:
        print(f"repro-fleet listening on http://{router.host}:{port} "
              f"({router.shards} workers, schema {SCHEMA_VERSION})",
              flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stop.wait()
        if banner:
            print("repro-fleet draining workers...", flush=True)
        await router.shutdown()
        if banner:
            print("repro-fleet drained; bye", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def run_fleet(
    *,
    host: str = "127.0.0.1",
    port: int = 8009,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    memory_cache: int = 256,
    max_queue: int = 64,
    max_batch: int = 8,
    backend: str = "per-node",
    scratch_dir: str = ".fleet",
    graph_store: Optional[str] = None,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro fleet``.

    Spawns ``workers`` solver subprocesses sharing ``cache_dir`` (tier
    2), each with a ``memory_cache``-sized LRU (tier 1) and one shared
    content-addressed graph store (``graph_store``, defaulting to
    ``<scratch_dir>/graphs``), then routes ``/v1/*`` traffic across
    them until SIGTERM/SIGINT, then drains.
    """
    supervisor = FleetSupervisor(
        workers=workers, cache_dir=cache_dir, memory_cache=memory_cache,
        max_queue=max_queue, max_batch=max_batch, backend=backend,
        scratch_dir=scratch_dir, graph_store=graph_store, host=host,
    )
    supervisor.start()
    router = FleetRouter(supervisor, host=host, port=port)
    try:
        asyncio.run(_run_fleet_async(router, banner=banner))
    finally:
        supervisor.stop()
    return 0
