"""Worker lifecycle: spawn, readiness, restart-on-crash, graceful drain.

Two interchangeable worker pools sit behind the router:

* :class:`FleetSupervisor` — the production pool: each worker is a
  ``python -m repro serve`` *subprocess* on an ephemeral port (parsed
  from its startup banner), health-checked over ``GET /v1/ready`` and
  respawned if it crashes.  SIGTERM semantics mirror the fault
  vocabulary's :class:`~repro.faults.plans.CrashSchedule`: a worker can
  fail-stop at any time and later restart, and the shared disk cache
  (plus the router's stable sha256 sharding) is what makes the restart
  cheap — the revived worker refills its memory tier from disk on first
  touch.  :meth:`FleetSupervisor.inject_crash` is the testing hook: a
  SIGKILL'd worker exercises exactly the restart path a real crash
  would.
* :class:`ThreadedFleet` — the in-process pool used by the unit tests
  and available for single-machine development: the same
  :class:`~repro.service.server.SolverServer` stack, one event loop per
  worker thread.  No fork cost, same HTTP surface, same endpoints
  interface.

Both expose the small interface the router consumes: ``endpoints()``
(stable shard order), ``check()`` (detect + restart crashed workers),
``begin_drain()``/``drain()`` and ``describe()``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["FleetSupervisor", "ThreadedFleet", "WorkerEndpoint"]

_BANNER = re.compile(r"listening on http://([0-9.]+):(\d+)")


@dataclass
class WorkerEndpoint:
    """Where one worker listens, plus its liveness as last observed."""

    worker_id: str
    host: str
    port: int
    alive: bool = True
    restarts: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)


def _http_get(host: str, port: int, path: str,
              timeout: float = 5.0) -> "tuple[int, Any]":
    """One blocking GET used by readiness checks (no asyncio needed)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    try:
        doc = json.loads(payload) if payload else None
    except ValueError:
        doc = None
    return status, doc


def wait_ready(host: str, port: int, timeout_s: float = 30.0) -> None:
    """Block until ``GET /v1/ready`` answers 200 (or raise)."""
    deadline = time.monotonic() + timeout_s
    last: Any = None
    while time.monotonic() < deadline:
        try:
            status, doc = _http_get(host, port, "/v1/ready")
            if status == 200:
                return
            last = (status, doc)
        except OSError as exc:
            last = exc
        time.sleep(0.05)
    raise TimeoutError(
        f"worker {host}:{port} not ready after {timeout_s}s (last: {last})"
    )


class FleetSupervisor:
    """Spawn and babysit N ``repro serve`` worker subprocesses."""

    def __init__(
        self,
        *,
        workers: int,
        cache_dir: Optional[str] = None,
        memory_cache: int = 256,
        max_queue: int = 64,
        max_batch: int = 8,
        backend: str = "per-node",
        scratch_dir: str = ".",
        graph_store: Optional[str] = None,
        restart_on_crash: bool = True,
        start_timeout_s: float = 60.0,
        host: str = "127.0.0.1",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.memory_cache = memory_cache
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.backend = backend
        self.scratch_dir = scratch_dir
        # All workers attach the same content-addressed graph store so a
        # graph registered through any one of them resolves on all.
        self.graph_store = (graph_store if graph_store is not None
                            else os.path.join(scratch_dir, "graphs"))
        self.restart_on_crash = restart_on_crash
        self.start_timeout_s = start_timeout_s
        self.host = host
        self._procs: List[Optional[subprocess.Popen]] = [None] * workers
        self._logs: List[Optional[Any]] = [None] * workers
        self._endpoints: List[WorkerEndpoint] = [
            WorkerEndpoint(worker_id=str(i), host=host, port=0, alive=False)
            for i in range(workers)
        ]
        self._draining = False

    # ----------------------------------------------------------------- #
    # lifecycle
    # ----------------------------------------------------------------- #

    def start(self) -> List[WorkerEndpoint]:
        os.makedirs(self.scratch_dir, exist_ok=True)
        for i in range(self.workers):
            self._spawn(i)
        for endpoint in self._endpoints:
            wait_ready(endpoint.host, endpoint.port, self.start_timeout_s)
        return self.endpoints()

    def _spawn(self, index: int) -> None:
        log_path = os.path.join(self.scratch_dir, f"worker-{index}.log")
        log = open(log_path, "a", encoding="utf-8")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--worker-id", str(index),
            "--memory-cache", str(self.memory_cache),
            "--max-queue", str(self.max_queue),
            "--max-batch", str(self.max_batch),
            "--backend", self.backend,
            "--graph-store", self.graph_store,
        ]
        if self.cache_dir is not None:
            argv += ["--cache", self.cache_dir]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        mark = os.path.getsize(log_path) if os.path.exists(log_path) else 0
        proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT,
                                env=env)
        self._procs[index] = proc
        self._logs[index] = log
        port = self._parse_port(log_path, proc, mark)
        endpoint = self._endpoints[index]
        endpoint.port = port
        endpoint.alive = True

    def _parse_port(self, log_path: str, proc: subprocess.Popen,
                    offset: int) -> int:
        deadline = time.monotonic() + self.start_timeout_s
        while time.monotonic() < deadline:
            with open(log_path, encoding="utf-8") as fh:
                fh.seek(offset)
                match = _BANNER.search(fh.read())
            if match:
                return int(match.group(2))
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        with open(log_path, encoding="utf-8") as fh:
            raise RuntimeError(f"worker did not start:\n{fh.read()}")

    def check(self) -> List[str]:
        """Detect crashed workers; respawn them unless draining.

        Returns the worker ids that were restarted (empty most calls).
        """
        restarted: List[str] = []
        if self._draining:
            return restarted
        for i, proc in enumerate(self._procs):
            if proc is not None and proc.poll() is not None:
                endpoint = self._endpoints[i]
                endpoint.alive = False
                if self.restart_on_crash:
                    self._spawn(i)
                    wait_ready(endpoint.host, endpoint.port,
                               self.start_timeout_s)
                    endpoint.restarts += 1
                    restarted.append(endpoint.worker_id)
        return restarted

    def inject_crash(self, worker_id: str) -> None:
        """Fail-stop one worker (SIGKILL) — the testing hook that plays
        the role of :class:`~repro.faults.plans.CrashSchedule` at the
        process level; ``check()`` performs the restart."""
        index = int(worker_id)
        proc = self._procs[index]
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        self._endpoints[index].alive = False

    def begin_drain(self) -> None:
        """SIGTERM every worker: stop admission, finish in-flight."""
        self._draining = True
        for proc in self._procs:
            if proc is not None and proc.poll() is None:
                proc.send_signal(signal.SIGTERM)

    def drain(self, timeout_s: float = 60.0) -> None:
        """Wait for every SIGTERM'd worker to finish draining and exit."""
        if not self._draining:
            self.begin_drain()
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            if proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)
        self._close_logs()

    def stop(self) -> None:
        """Hard stop (kill anything still running) — the finally-path."""
        self._draining = True
        for proc in self._procs:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
        self._close_logs()

    def _close_logs(self) -> None:
        for log in self._logs:
            if log is not None and not log.closed:
                log.close()

    # ----------------------------------------------------------------- #
    # the router-facing interface
    # ----------------------------------------------------------------- #

    def endpoints(self) -> List[WorkerEndpoint]:
        return list(self._endpoints)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "subprocess",
            "workers": self.workers,
            "memory_cache": self.memory_cache,
            "backend": self.backend,
            "cache_dir": self.cache_dir,
            "graph_store": self.graph_store,
            "restart_on_crash": self.restart_on_crash,
            "restarts": {e.worker_id: e.restarts for e in self._endpoints
                         if e.restarts},
        }


class ThreadedFleet:
    """In-process worker pool: one SolverServer per thread.

    The unit-test / single-machine twin of :class:`FleetSupervisor` —
    identical HTTP surface and endpoints interface, no subprocess spawn
    cost.  ``stop_worker`` plays the crash; ``check()`` restarts it.
    """

    def __init__(self, *, workers: int, cache_dir: Optional[str] = None,
                 memory_cache: int = 256, max_queue: int = 64,
                 max_batch: int = 8, backend: str = "per-node",
                 graph_store: Optional[str] = None,
                 restart_on_crash: bool = True,
                 registry: Optional[Dict[str, Any]] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.memory_cache = memory_cache
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.backend = backend
        self.graph_store = graph_store
        self.restart_on_crash = restart_on_crash
        self.registry = registry
        self._threads: List[Optional[threading.Thread]] = [None] * workers
        self._loops: List[Optional[asyncio.AbstractEventLoop]] = [None] * workers
        self._stops: List[Optional[asyncio.Event]] = [None] * workers
        self._endpoints = [
            WorkerEndpoint(worker_id=str(i), host="127.0.0.1", port=0,
                           alive=False)
            for i in range(workers)
        ]
        self._draining = False

    def start(self) -> List[WorkerEndpoint]:
        for i in range(self.workers):
            self._spawn(i)
        return self.endpoints()

    def _spawn(self, index: int) -> None:
        from repro.service.engine import SolverEngine
        from repro.service.server import SolverServer

        ready = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            async def main() -> None:
                engine = SolverEngine(
                    cache_dir=self.cache_dir,
                    memory_cache=self.memory_cache,
                    max_queue=self.max_queue, max_batch=self.max_batch,
                    worker_id=str(index), backend=self.backend,
                    registry=self.registry,
                    graph_store=self.graph_store,
                )
                server = SolverServer(engine, host="127.0.0.1", port=0)
                self._loops[index] = asyncio.get_running_loop()
                self._stops[index] = asyncio.Event()
                try:
                    self._endpoints[index].port = await server.start()
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    failure.append(exc)
                    ready.set()
                    return
                self._endpoints[index].alive = True
                ready.set()
                await self._stops[index].wait()
                await server.shutdown()
                self._endpoints[index].alive = False

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True,
                                  name=f"fleet-worker-{index}")
        self._threads[index] = thread
        thread.start()
        if not ready.wait(timeout=30.0) or failure:
            raise RuntimeError(f"threaded worker {index} failed to start: "
                               f"{failure[0] if failure else 'timeout'}")

    def stop_worker(self, worker_id: str) -> None:
        """Simulated fail-stop of one worker (for router failover tests)."""
        index = int(worker_id)
        loop, stop = self._loops[index], self._stops[index]
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        thread = self._threads[index]
        if thread is not None:
            thread.join(timeout=30.0)
        self._endpoints[index].alive = False

    def check(self) -> List[str]:
        restarted: List[str] = []
        if self._draining:
            return restarted
        for i, endpoint in enumerate(self._endpoints):
            thread = self._threads[i]
            if not endpoint.alive and (thread is None or not thread.is_alive()):
                if self.restart_on_crash:
                    self._spawn(i)
                    endpoint.restarts += 1
                    restarted.append(endpoint.worker_id)
        return restarted

    def begin_drain(self) -> None:
        self._draining = True

    def drain(self, timeout_s: float = 60.0) -> None:
        self._draining = True
        for i in range(self.workers):
            loop, stop = self._loops[i], self._stops[i]
            if loop is not None and stop is not None and not stop.is_set():
                loop.call_soon_threadsafe(stop.set)
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            if thread is not None and thread.is_alive():
                thread.join(timeout=max(0.1, deadline - time.monotonic()))

    def stop(self) -> None:
        self.drain(timeout_s=10.0)

    def endpoints(self) -> List[WorkerEndpoint]:
        return list(self._endpoints)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "threaded",
            "workers": self.workers,
            "memory_cache": self.memory_cache,
            "backend": self.backend,
            "cache_dir": self.cache_dir,
            "graph_store": self.graph_store,
            "restart_on_crash": self.restart_on_crash,
            "restarts": {e.worker_id: e.restarts for e in self._endpoints
                         if e.restarts},
        }
