"""Sharded multi-worker solver fleet.

A router process in front of N worker processes, each running the full
``repro serve`` stack (engine + HTTP server).  The router shards
``POST /v1/solve`` traffic by the sha256 request fingerprint, so every
identical request — concurrent or repeated — lands on the same worker:
request coalescing and cache locality survive sharding.

Layers:

* :mod:`repro.service.fleet.routing` — deterministic sha256 shard
  assignment (never Python ``hash()``).
* :mod:`repro.service.fleet.cache` — the in-memory LRU that forms the
  first tier of the two-tier (memory → disk) result cache.
* :mod:`repro.service.fleet.supervisor` — worker lifecycle: spawn,
  readiness checks, restart-on-crash, graceful drain.
* :mod:`repro.service.fleet.router` — the asyncio HTTP router
  (``repro fleet``) with fleet-wide metric aggregation.
* :mod:`repro.service.fleet.aggregate` — merging per-worker
  ``/v1/metrics`` snapshots into one fleet document (JSON + Prometheus).
* :mod:`repro.service.fleet.saturation` — the open-loop saturation
  sweep that finds the throughput/latency knee per worker count and
  writes ``BENCH_fleet.json``.
"""

from importlib import import_module
from typing import Any

from repro.service.fleet.cache import LruCache
from repro.service.fleet.routing import routing_key, shard_for_key, shard_for_request

# The heavier modules (router, supervisor, saturation) import the engine
# and server layers, which themselves use the cache tier above — they are
# resolved lazily so `repro.service.engine` can import this package
# without a cycle.
_LAZY = {
    "aggregate_snapshots": "repro.service.fleet.aggregate",
    "render_fleet_prometheus": "repro.service.fleet.aggregate",
    "FleetRouter": "repro.service.fleet.router",
    "run_fleet": "repro.service.fleet.router",
    "saturation_sweep": "repro.service.fleet.saturation",
    "FleetSupervisor": "repro.service.fleet.supervisor",
    "ThreadedFleet": "repro.service.fleet.supervisor",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module), name)


__all__ = [
    "FleetRouter",
    "FleetSupervisor",
    "LruCache",
    "ThreadedFleet",
    "aggregate_snapshots",
    "render_fleet_prometheus",
    "routing_key",
    "run_fleet",
    "saturation_sweep",
    "shard_for_key",
    "shard_for_request",
]
