"""Open-loop saturation sweep: find the throughput/latency knee.

For each worker count the sweep boots a fresh fleet (subprocess workers
behind a :class:`~repro.service.fleet.router.FleetRouter`), walks an
ascending offered-load ladder with deterministic Poisson arrivals
(:func:`repro.service.loadgen.generate_arrivals`), and records offered
vs achieved throughput and client-observed p99 per rung.  The *knee* is
the highest rung the fleet still keeps up with — achieved/offered at or
above ``knee_threshold`` — i.e. where the open loop first outruns the
service.  A closed loop cannot measure this point at all: it slows its
own offered load to match the service, so achieved == offered by
construction.

Results go to ``BENCH_fleet.json``, including the host topology
(``os.cpu_count``) — on a single-core host the per-worker-count knees
are expected to coincide for CPU-bound load, and the committed document
says so rather than pretending otherwise.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["FleetHandle", "saturation_sweep", "start_fleet"]

DEFAULT_RATES: Tuple[float, ...] = (25.0, 50.0, 100.0, 200.0, 400.0)
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4)


class FleetHandle:
    """A running fleet (supervisor + router-in-a-thread) for benchmarks.

    The router's asyncio loop runs in a daemon thread so blocking
    benchmark code (the load generator, pytest) can drive it over plain
    HTTP.  ``close()`` drains workers and joins the thread.
    """

    def __init__(self, supervisor: Any, router: Any,
                 thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop,
                 stop: asyncio.Event) -> None:
        self.supervisor = supervisor
        self.router = router
        self._thread = thread
        self._loop = loop
        self._stop = stop

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    def close(self, *, drain: bool = True) -> None:
        self.router.drain_workers_on_shutdown = drain
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120.0)
        self.supervisor.stop()


def start_fleet(
    *,
    workers: int,
    cache_dir: Optional[str] = None,
    memory_cache: int = 256,
    max_queue: int = 64,
    max_batch: int = 8,
    scratch_dir: str = ".fleet",
    graph_store: Optional[str] = None,
    threaded: bool = False,
    registry: Optional[Dict[str, Any]] = None,
    host: str = "127.0.0.1",
) -> FleetHandle:
    """Boot a fleet and return a handle once the router is listening.

    ``threaded=True`` swaps subprocess workers for in-process
    :class:`~repro.service.fleet.supervisor.ThreadedFleet` workers —
    what the unit tests use (``registry`` injection only works there;
    closures do not cross process boundaries).
    """
    from repro.service.fleet.router import FleetRouter
    from repro.service.fleet.supervisor import FleetSupervisor, ThreadedFleet

    if threaded:
        supervisor: Any = ThreadedFleet(
            workers=workers, cache_dir=cache_dir, memory_cache=memory_cache,
            max_queue=max_queue, max_batch=max_batch, registry=registry,
            graph_store=graph_store)
    else:
        if registry is not None:
            raise ValueError("registry injection requires threaded=True")
        supervisor = FleetSupervisor(
            workers=workers, cache_dir=cache_dir, memory_cache=memory_cache,
            max_queue=max_queue, max_batch=max_batch,
            scratch_dir=scratch_dir, graph_store=graph_store, host=host)
    supervisor.start()

    router = FleetRouter(supervisor, host=host, port=0)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    def run() -> None:
        async def main() -> None:
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            try:
                await router.start()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                box["error"] = exc
                ready.set()
                return
            ready.set()
            await box["stop"].wait()
            await router.shutdown(
                drain_workers=getattr(
                    router, "drain_workers_on_shutdown", True))

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True, name="fleet-router")
    thread.start()
    if not ready.wait(timeout=120.0) or "error" in box:
        supervisor.stop()
        raise RuntimeError(
            f"fleet router failed to start: {box.get('error', 'timeout')}")
    return FleetHandle(supervisor, router, thread, box["loop"], box["stop"])


def _find_knee(cells: Sequence[Dict[str, Any]],
               threshold: float) -> Optional[Dict[str, Any]]:
    """Highest rung still keeping up (goodput ratio >= threshold)."""
    knee = None
    for cell in cells:
        if cell["goodput_ratio"] >= threshold:
            knee = cell
    return knee


def saturation_sweep(
    *,
    host: str = "127.0.0.1",
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    rates: Sequence[float] = DEFAULT_RATES,
    duration_s: float = 3.0,
    arrival: str = "poisson",
    arrival_seed: int = 0,
    burst_size: int = 8,
    memory_cache: int = 256,
    knee_threshold: float = 0.9,
    out_path: Optional[str] = "BENCH_fleet.json",
    scratch_dir: Optional[str] = None,
    progress: bool = True,
) -> Dict[str, Any]:
    """The saturation sweep behind ``repro loadgen --saturation``.

    Each worker count gets its own fleet and its own fresh disk cache
    (warm-cache effects would otherwise let later counts free-ride on
    earlier ones); within a count the rate ladder shares the cache, as
    a real service would.  Every rung replays the same seeded arrival
    schedule, so two sweeps at the same seed offer identical load.
    """
    from repro.service.loadgen import build_request_pool, run_open_loop

    pool = build_request_pool()
    sweeps: List[Dict[str, Any]] = []
    t_start = time.monotonic()
    with tempfile.TemporaryDirectory() as default_scratch:
        scratch = scratch_dir or default_scratch
        for workers in worker_counts:
            cache_dir = os.path.join(scratch, f"cache-w{workers}")
            fleet = start_fleet(
                workers=workers, cache_dir=cache_dir,
                memory_cache=memory_cache,
                scratch_dir=os.path.join(scratch, f"fleet-w{workers}"),
                host=host,
            )
            cells: List[Dict[str, Any]] = []
            try:
                for rate in rates:
                    doc = run_open_loop(
                        host=fleet.host, port=fleet.port, rate=rate,
                        duration_s=duration_s, arrival=arrival,
                        arrival_seed=arrival_seed, burst_size=burst_size,
                        pool=pool, out_path=None,
                    )
                    cell = {
                        "offered_rps": doc["offered_rps"],
                        "achieved_rps": doc["achieved_rps"],
                        "goodput_ratio": doc["goodput_ratio"],
                        "p50_s": doc["latency"]["p50_s"],
                        "p99_s": doc["latency"]["p99_s"],
                        "rejected": doc["rejected"],
                        "gave_up": doc["gave_up"],
                        "completed": doc["completed"],
                        "offered": doc["offered"],
                    }
                    cells.append(cell)
                    if progress:
                        print(f"workers={workers} rate={rate:g}: "
                              f"achieved {cell['achieved_rps']:.1f}/"
                              f"{cell['offered_rps']:.1f} rps, "
                              f"p99 {cell['p99_s'] * 1e3:.1f} ms",
                              flush=True)
            finally:
                fleet.close()
            knee = _find_knee(cells, knee_threshold)
            sweeps.append({
                "workers": workers,
                "cells": cells,
                "knee": knee,
            })
            if progress:
                if knee:
                    print(f"workers={workers}: knee at "
                          f"{knee['offered_rps']:.1f} rps offered "
                          f"({knee['achieved_rps']:.1f} achieved, "
                          f"p99 {knee['p99_s'] * 1e3:.1f} ms)", flush=True)
                else:
                    print(f"workers={workers}: saturated below "
                          f"{min(rates):g} rps", flush=True)

    by_workers = {s["workers"]: s for s in sweeps}
    speedup = None
    if 1 in by_workers and 4 in by_workers:
        k1, k4 = by_workers[1]["knee"], by_workers[4]["knee"]
        if k1 and k4 and k1["achieved_rps"] > 0:
            speedup = k4["achieved_rps"] / k1["achieved_rps"]
    doc: Dict[str, Any] = {
        "schema": "v1",
        "kind": "fleet_saturation",
        "config": {
            "worker_counts": list(worker_counts),
            "rates": list(rates),
            "duration_s": duration_s,
            "arrival": arrival,
            "arrival_seed": arrival_seed,
            "memory_cache": memory_cache,
            "knee_threshold": knee_threshold,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "elapsed_s": time.monotonic() - t_start,
        "sweeps": sweeps,
        "knee_by_workers": {
            str(s["workers"]): s["knee"] for s in sweeps
        },
        "speedup_4v1": speedup,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc
