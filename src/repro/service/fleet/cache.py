"""The in-memory LRU tier of the two-tier result cache.

Tier 1 is this per-worker LRU: completed canonical reports keyed by the
request's coalescing key, served straight from the event-loop thread
with no dispatch-thread handoff, no file I/O, and no graph
re-materialization.  Tier 2 is the shared JSON disk cache of the batch
engine (:mod:`repro.simulator.batch`), which persists across restarts
and is shared by every worker and every sweep.  A disk hit falls
through into the LRU, so a worker's steady state serves repeats from
memory even after a restart.

The cache counts hits, misses, and evictions; the engine exports them
through its :class:`~repro.obs.telemetry.MetricRegistry` (see
``repro_service_cache_tier_hits_total``).  All access happens on the
event-loop thread, matching the rest of the engine state — the
structure itself is a plain :class:`~collections.OrderedDict` with no
locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["LruCache"]

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction and counters."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str, default: Optional[Any] = None) -> Optional[Any]:
        """Look up ``key``, marking it most-recently-used on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry past capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Counters + occupancy for ``/v1/metrics``."""
        total = self.hits + self.misses
        return {
            "maxsize": self.maxsize,
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }
