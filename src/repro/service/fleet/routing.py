"""Deterministic shard assignment by sha256 request fingerprint.

The router must place every logically-identical request on the same
worker, in every process, on every run: that placement is what lets
request coalescing and the per-worker memory cache survive sharding.
Python's builtin ``hash()`` is *per-process* (``PYTHONHASHSEED``
randomizes string hashing), so it can never be the shard function —
two router restarts would disagree about where a fingerprint lives and
every cached key would go cold.  Shards are therefore taken from the
sha256 digest of the request key, which is itself the sha256 hex of the
canonical request document (:meth:`repro.api.SolveRequest.key`).

``tests/test_service/test_fleet_routing.py`` pins the assignment to
fixed expected values so it can never silently change across versions,
processes, or hash seeds.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import SolveRequest

__all__ = ["routing_key", "shard_for_key", "shard_for_request"]


def shard_for_key(key: str, shards: int) -> int:
    """Map a request key to a shard in ``[0, shards)``.

    ``key`` is any stable string identity (normally the sha256 hex from
    :meth:`repro.api.SolveRequest.key`; the router falls back to the
    sha256 of the raw body for requests too malformed to parse).  The
    shard is the first 8 bytes of ``sha256(key)`` taken big-endian,
    modulo the shard count — stable across processes, platforms, and
    ``PYTHONHASHSEED`` values.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def routing_key(request: "SolveRequest") -> str:
    """The identity the fleet shards on: the request's coalescing key."""
    return request.key()


def shard_for_request(request: "SolveRequest", shards: int) -> int:
    """Shard for a parsed request — ``shard_for_key(request.key())``."""
    return shard_for_key(routing_key(request), shards)
