"""One machine-readable error taxonomy for the whole HTTP surface.

Every non-200 JSON response — from a solver worker *or* from the fleet
router — carries the same envelope::

    {"schema": "v2", "error": {"code": "<stable-code>",
                               "message": "<human text>",
                               "detail": "<machine context or empty>"}}

``code`` is a *stable string*, one per status, so clients branch on it
without parsing prose (and without caring whether the router or a
worker originated the error — the two are deliberately
indistinguishable on the wire):

====== ====================
status code
====== ====================
400    ``bad_request``
404    ``not_found``
405    ``method_not_allowed``
409    ``conflict``
413    ``payload_too_large``
429    ``queue_full``
500    ``internal``
502    ``bad_upstream``
503    ``unavailable``
504    ``deadline_exceeded``
====== ====================

405 responses additionally carry the ``Allow`` header (RFC 9110 §15.5.6)
listing the methods the resource does support; the header travels inside
the error doc under the private ``_headers`` key, which the HTTP writer
pops before serialization — error-producing call sites stay plain
``(status, doc)`` tuples.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.api import SCHEMA_VERSION

__all__ = ["ERROR_CODES", "HTTP_REASONS", "error_doc", "pop_headers"]

ERROR_CODES: Dict[int, str] = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    429: "queue_full",
    500: "internal",
    502: "bad_upstream",
    503: "unavailable",
    504: "deadline_exceeded",
}

HTTP_REASONS: Dict[int, str] = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable", 504: "Gateway Timeout",
}

# The private doc key carrying extra response headers (e.g. Allow on
# 405); popped by the HTTP writers, never serialized.
HEADERS_KEY = "_headers"


def error_doc(status: int, message: str, *, detail: str = "",
              allow: Optional[str] = None,
              ) -> Tuple[int, Dict[str, Any]]:
    """Build the taxonomy's ``(status, doc)`` pair for one error.

    ``detail`` is optional machine-oriented context (the offending ref,
    the queue bound, ...); ``allow`` sets the 405 ``Allow`` header.
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "error": {
            "code": ERROR_CODES.get(status, str(status)),
            "message": message,
            "detail": detail,
        },
    }
    if allow:
        doc[HEADERS_KEY] = {"Allow": allow}
    return status, doc


def pop_headers(doc: Any) -> Dict[str, str]:
    """Extract (and remove) the private extra-headers entry of an error
    doc; returns ``{}`` for docs without one."""
    if isinstance(doc, dict):
        headers = doc.pop(HEADERS_KEY, None)
        if isinstance(headers, dict):
            return {str(k): str(v) for k, v in headers.items()}
    return {}
