"""Stdlib-only asyncio HTTP front end for the solver engine.

``repro serve`` binds this server to a host/port.  The API is small and
versioned:

* ``POST /v1/solve`` — body is a :class:`repro.api.SolveRequest` JSON
  document (schema **v2**: the graph is a tagged union
  ``{"inline": ...} | {"ref": fp} | {"delta": {"parent": fp, "ops":
  [...]}}``; schema-v1 bodies still work through a compatibility shim
  and are answered with ``"deprecated": true`` in the envelope).  The
  response envelope is ``{"schema": <request's schema>, "report": ...,
  "served": {...}}`` where ``report`` is the *canonical* solve report
  (byte-identical to ``repro.api.solve``) and ``served`` carries cache /
  coalescing / latency provenance — plus, for delta-form requests,
  ``solve_mode`` (``"incremental"``/``"full"``) and the
  ``dirty_frontier`` size.  Unknown refs → 404; deltas contradicting
  the parent's state → 409.
* ``POST /v1/graphs`` — register a graph (binary CSR blob or JSON graph
  document) in the content-addressed graph store; returns its
  ``graph_ref`` (the graph fingerprint).  ``GET /v1/graphs/<ref>``
  describes a stored graph; ``DELETE /v1/graphs/<ref>`` evicts it
  (deferred past in-flight solves that pin it — the response says
  ``"deferred": true``).  ``POST /v1/graphs/<ref>/deltas`` applies an
  edit script to a stored graph and registers the child under its own
  fingerprint, byte-identical to registering the edited graph from
  scratch.
* ``GET /v1/health`` — liveness plus drain state, the worker id, and
  the default execution backend (what the fleet router keys on).
* ``GET /v1/ready`` — readiness: 503 while draining or before the
  engine's worker pool is warm, 200 otherwise.  Liveness and readiness
  are deliberately split so a router can keep a live-but-draining
  worker out of rotation without treating it as crashed.
* ``GET /v1/metrics`` — serving aggregates (in-flight, queue depth,
  cache-hit rate, p50/p95/p99 latency, per-stage histograms, fleet
  fallbacks) as JSON; ``?format=prometheus`` serves the same registry as
  Prometheus text exposition format 0.0.4.
* ``GET /v1/algorithms`` — the registry with parameter signatures.

Every 200 solve response carries serving telemetry: ``served.trace_id``
(the request's identity), ``served.stages`` (per-stage latency
breakdown including response serialization), and for coalesced
followers ``served.primary_trace_id`` — see docs/observability.md.

Every non-200 response speaks the unified error taxonomy of
:mod:`repro.service.errors` — ``{"error": {"code": "<stable-string>",
"message": ..., "detail": ...}}`` — shared verbatim with the fleet
router.  Status mapping: schema/graph/algorithm errors → 400
(``bad_request``), unknown route/ref → 404 (``not_found``), wrong
method → 405 (``method_not_allowed``, with ``Allow``), delta conflicts
→ 409 (``conflict``), admission-queue full → 429 (``queue_full``),
draining → 503 (``unavailable``), deadline exceeded → 504
(``deadline_exceeded``), oversized body or a graph declaring more than
``MAX_GRAPH_NODES`` nodes → 413 (``payload_too_large``).

The HTTP implementation is deliberately minimal (HTTP/1.1 keep-alive,
Content-Length bodies, JSON only) — enough for the load generator, CI
smoke, and curl, with zero dependencies beyond the standard library.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import signal
from time import perf_counter
from typing import Any, Dict, Optional, Set, Tuple, Union
from urllib.parse import parse_qs

from repro._version import __version__
from repro.api import (
    SCHEMA_V1,
    SCHEMA_VERSION,
    SchemaError,
    SolveRequest,
    describe_algorithms,
)
from repro.exceptions import GraphFormatError
from repro.graphs.delta import DeltaConflictError, GraphDelta
from repro.graphs.specs import declared_nodes
from repro.graphs.store import GraphRef, UnknownGraphRef
from repro.service.engine import (
    DeadlineExceeded,
    RequestRejected,
    SolverEngine,
    UnknownAlgorithmError,
)
from repro.service.errors import HTTP_REASONS, error_doc, pop_headers
from repro.service.fleet.cache import LruCache

__all__ = ["SolverServer", "serve"]

MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADER_LINES = 100
JSON_CONTENT_TYPE = "application/json"
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
# Largest graph a request may declare (inline node list or generator
# spec) before it is rejected with 413 — checked *before* the graph is
# materialized, so a gnp:10**9 spec never reaches the generator.
MAX_GRAPH_NODES = 1_000_000


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SolverServer:
    """One listening socket in front of one :class:`SolverEngine`."""

    def __init__(self, engine: SolverEngine, *, host: str = "127.0.0.1",
                 port: int = 0, parse_cache: int = 512) -> None:
        self.engine = engine
        self.host = host
        self.port = port          # 0 = ephemeral; .port is updated on start
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        # Body-bytes → parsed SolveRequest memo: repeated identical
        # bodies (the cache-heavy serving regime) skip JSON decoding and
        # graph materialization entirely.  Parsing is deterministic and
        # SolveRequest is frozen, so reuse is safe.
        self._parse_cache: Optional[LruCache] = (
            LruCache(parse_cache) if parse_cache > 0 else None
        )

    async def start(self) -> int:
        """Bind and listen; returns the actual port (resolves port 0)."""
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, finish in-flight, close."""
        self.engine.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.engine.drain()
        # In-flight responses are written by connection tasks; give them
        # a beat to flush, then drop idle keep-alive connections.
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=2.0)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.engine.aclose()

    # ----------------------------------------------------------------- #
    # connection handling
    # ----------------------------------------------------------------- #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:
                    _status, doc = error_doc(exc.status, str(exc))
                    await self._write_json(writer, exc.status, doc,
                                           close=True)
                    return
                if parsed is None:  # clean EOF between requests
                    return
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, ctype = await self._route(method, path, body)
                await self._write_response(writer, status, payload, ctype,
                                           close=not keep_alive,
                                           head_only=method == "HEAD")
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_json(self, writer: asyncio.StreamWriter, status: int,
                          doc: Dict[str, Any], *, close: bool) -> None:
        await self._write_response(writer, status, doc, JSON_CONTENT_TYPE,
                                   close=close)

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: Union[Dict[str, Any], str],
                              content_type: str, *, close: bool,
                              head_only: bool = False) -> None:
        extra_headers = pop_headers(payload)
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode()
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in extra_headers.items())
        head = (
            f"HTTP/1.1 {status} {HTTP_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        # HEAD advertises the GET representation's length but sends no body.
        writer.write(head if head_only else head + body)
        await writer.drain()

    # ----------------------------------------------------------------- #
    # routing
    # ----------------------------------------------------------------- #

    async def _route(
        self, method: str, path: str, body: bytes,
    ) -> Tuple[int, Union[Dict[str, Any], str], str]:
        """Dispatch one request; returns (status, payload, content type).

        The only non-JSON payload is the Prometheus exposition of
        ``/v1/metrics?format=prometheus``.
        """
        path, _, query = path.partition("?")
        if path == "/v1/metrics" and method in ("GET", "HEAD"):
            fmt = (parse_qs(query).get("format") or ["json"])[-1]
            if fmt == "prometheus":
                return (200, self.engine.render_prometheus(),
                        PROMETHEUS_CONTENT_TYPE)
            if fmt != "json":
                status, doc = self._error(
                    400, f"unknown metrics format {fmt!r}; "
                         f"use 'json' or 'prometheus'")
                return status, doc, JSON_CONTENT_TYPE
        status, doc = await self._route_json(method, path, body)
        return status, doc, JSON_CONTENT_TYPE

    async def _route_json(self, method: str, path: str,
                          body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/v1/solve":
            if method != "POST":
                return self._error(405, "use POST for /v1/solve",
                                   allow="POST")
            return await self._solve(body)
        if path == "/v1/graphs":
            if method != "POST":
                return self._error(405, "use POST for /v1/graphs",
                                   allow="POST")
            return self._register_graph(body)
        if path.startswith("/v1/graphs/"):
            ref = path[len("/v1/graphs/"):]
            if ref.endswith("/deltas"):
                ref = ref[:-len("/deltas")]
                if method != "POST":
                    return self._error(
                        405, "use POST for /v1/graphs/<ref>/deltas",
                        allow="POST")
                return self._register_delta(ref, body)
            if method in ("GET", "HEAD"):
                return self._describe_graph(ref)
            if method == "DELETE":
                return self._evict_graph(ref)
            return self._error(405, "use GET or DELETE for /v1/graphs/<ref>",
                               allow="GET, HEAD, DELETE")
        if method not in ("GET", "HEAD"):
            return self._error(405, f"use GET for {path}",
                               allow="GET, HEAD")
        if path == "/v1/health":
            return 200, {
                "schema": SCHEMA_VERSION,
                "status": "draining" if self.engine.draining else "ok",
                "version": __version__,
                "worker_id": self.engine.worker_id,
                "backend": self.engine.backend,
            }
        if path == "/v1/ready":
            if self.engine.ready:
                status, state = 200, "ready"
            else:
                status = 503
                state = "draining" if self.engine.draining else "warming"
            return status, {
                "schema": SCHEMA_VERSION,
                "status": state,
                "worker_id": self.engine.worker_id,
                "backend": self.engine.backend,
            }
        if path == "/v1/metrics":
            return 200, self.engine.metrics_snapshot()
        if path == "/v1/algorithms":
            return 200, {
                "schema": SCHEMA_VERSION,
                "algorithms": describe_algorithms(),
            }
        return self._error(404, f"no route {path!r}")

    # ----------------------------------------------------------------- #
    # the graph plane: register once, solve by reference
    # ----------------------------------------------------------------- #

    def _register_graph(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/graphs`` — ingest a graph into the engine's
        content-addressed store and return its ``graph_ref``.

        Two body encodings, distinguished by content sniffing (the binary
        blob format is magic-prefixed, so no header plumbing is needed):

        * the binary CSR blob of :func:`repro.graphs.io.to_bytes`;
        * a JSON graph document (inline ``nodes``/``edges`` or a
          generator ``spec``, exactly the forms ``/v1/solve`` accepts
          inline).
        """
        from repro import blob

        store = self.engine.graph_store
        if body[:8] == blob.MAGIC:
            # Size admission without materializing: the blob header
            # carries the node count.
            try:
                from repro.graphs.store import _blob_meta

                declared = int(_blob_meta(body).get("n", 0))
            except (GraphFormatError, TypeError, ValueError) as exc:
                return self._error(400, f"bad graph blob: {exc}")
            if declared > MAX_GRAPH_NODES:
                return self._error(
                    413, f"graph declares {declared} nodes; this server "
                         f"accepts at most {MAX_GRAPH_NODES}")
            try:
                ref = store.put_bytes(body)
            except GraphFormatError as exc:
                return self._error(400, str(exc))
        else:
            try:
                doc = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return self._error(
                    400, f"graph body is neither a repro blob nor valid "
                         f"JSON: {exc}")
            oversized = self._graph_too_large({"graph": doc})
            if oversized is not None:
                return self._error(413, oversized)
            from repro.api import graph_from_doc

            try:
                graph = graph_from_doc(doc)
            except SchemaError as exc:
                return self._error(400, str(exc))
            if graph.n > MAX_GRAPH_NODES:
                return self._error(
                    413, f"graph has {graph.n} nodes; this server accepts "
                         f"at most {MAX_GRAPH_NODES}")
            ref = store.put(graph)
        return 200, {
            "schema": SCHEMA_VERSION,
            "graph_ref": ref.ref,
            "n": ref.n,
            "m": ref.m,
        }

    def _register_delta(self, ref: str,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/graphs/<ref>/deltas`` — apply an edit script to a
        stored graph and register the child under its own fingerprint.

        The body is ``{"ops": [...]}`` (or a bare ops list) in the
        :class:`~repro.graphs.delta.GraphDelta` vocabulary.  Responds
        with the child's ``graph_ref`` — byte-identical to registering
        the from-scratch edited graph — plus the lineage.  Malformed
        ops → 400, unknown/evicted parent → 404, edits contradicting
        the parent's state → 409.
        """
        try:
            if not self.engine.ref_alive(ref):
                return self._error(404, f"unknown graph_ref {ref!r}",
                                   detail=ref)
        except GraphFormatError as exc:
            return self._error(400, str(exc))
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return self._error(400, f"delta body is not valid JSON: {exc}")
        try:
            delta = GraphDelta.from_doc(doc)
        except DeltaConflictError as exc:
            # Op-shape problems are a bad request; only edits that
            # contradict the parent's actual state are conflicts.
            return self._error(400, str(exc))
        try:
            child = self.engine.graph_store.put_delta(ref, delta)
        except UnknownGraphRef as exc:
            return self._error(404, str(exc), detail=ref)
        except DeltaConflictError as exc:
            return self._error(409, str(exc), detail=delta.fingerprint())
        except GraphFormatError as exc:
            return self._error(400, str(exc))
        return 200, {
            "schema": SCHEMA_VERSION,
            "graph_ref": child.ref,
            "parent": ref,
            "n": child.n,
            "m": child.m,
            "ops": len(delta),
            "weight_only": delta.weight_only,
            "delta_fingerprint": delta.fingerprint(),
        }

    def _describe_graph(self, ref: str) -> Tuple[int, Dict[str, Any]]:
        try:
            if not self.engine.ref_alive(ref):
                return self._error(404, f"unknown graph_ref {ref!r}",
                                   detail=ref)
            info = self.engine.graph_store.describe(ref)
        except UnknownGraphRef as exc:
            return self._error(404, str(exc), detail=ref)
        except GraphFormatError as exc:
            return self._error(400, str(exc))
        return 200, {"schema": SCHEMA_VERSION, "graph_ref": ref,
                     "n": info["n"], "m": info["m"],
                     "nbytes": info["nbytes"]}

    def _evict_graph(self, ref: str) -> Tuple[int, Dict[str, Any]]:
        try:
            result = self.engine.evict_graph(ref)
        except GraphFormatError as exc:
            return self._error(400, str(exc))
        doc = {"schema": SCHEMA_VERSION, "graph_ref": ref,
               "evicted": result["evicted"]}
        if result.get("deferred"):
            # An in-flight solve still holds the arena; the ref is
            # logically gone (new lookups 404) and physically removed
            # when the last pinned solve resolves.
            doc["deferred"] = True
        return 200, doc

    async def _solve(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        request: Optional[SolveRequest] = None
        body_key = ""
        if self._parse_cache is not None:
            body_key = hashlib.sha256(body).hexdigest()
            request = self._parse_cache.get(body_key)
        if request is None:
            try:
                doc = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return self._error(400, f"request is not valid JSON: {exc}")
            # Admission control before the graph materializes: a request
            # may declare its size either inline (nodes list) or via a
            # generator spec; both are checked up front so an oversized
            # graph is a clean 413, not a memory blow-up deep in the
            # engine.
            oversized = self._graph_too_large(doc)
            if oversized is not None:
                return self._error(413, oversized)
            parent = self._delta_parent(doc)
            if parent is not None and not self._ref_is_alive(parent):
                # A delta names its parent by ref; a logically evicted
                # parent must 404 even while a pinned in-flight solve
                # keeps the bytes mapped.
                return self._error(404, f"unknown graph_ref {parent!r}",
                                   detail=parent)
            try:
                request = SolveRequest.from_doc(
                    doc, store=self.engine.graph_store)
            except UnknownGraphRef as exc:
                return self._error(404, str(exc))
            except DeltaConflictError as exc:
                # The edit script contradicts the parent's actual state
                # (duplicate node, missing edge, ...): the request is
                # well-formed but unappliable — a conflict, not a
                # schema error.
                return self._error(409, str(exc))
            except SchemaError as exc:
                return self._error(400, str(exc))
            if self._parse_cache is not None:
                self._parse_cache.put(body_key, request)
        if isinstance(request.graph, GraphRef):
            # Re-check liveness on parse-cache hits: the ref may have
            # been evicted since the request was first parsed.
            if not self.engine.ref_alive(request.graph.ref):
                return self._error(
                    404, f"unknown graph_ref {request.graph.ref!r}")
            if request.graph.n > MAX_GRAPH_NODES:
                return self._error(
                    413, f"graph {request.graph.ref[:12]}… has "
                         f"{request.graph.n} nodes; this server accepts "
                         f"at most {MAX_GRAPH_NODES}")
        try:
            served = await self.engine.submit(request)
        except UnknownAlgorithmError as exc:
            return self._error(400, str(exc))
        except RequestRejected as exc:
            status = 503 if exc.reason == "draining" else 429
            return self._error(status, str(exc))
        except DeadlineExceeded as exc:
            return self._error(504, str(exc))
        # Serialization is the last serving stage a request pays; timed
        # here (the engine never sees the wire form) and folded into the
        # same stage histogram as the engine-side stages.
        t0 = perf_counter()
        report_doc = served.report.to_doc()
        serialize_s = perf_counter() - t0
        stages = dict(served.stages)
        stages["serialize"] = serialize_s
        self.engine.stats.observe_stages({"serialize": serialize_s})
        served_doc: Dict[str, Any] = {
            "cached": served.cached,
            "coalesced": served.coalesced,
            "seconds": served.seconds,
            "trace_id": served.trace_id,
            "stages": stages,
        }
        if served.primary_trace_id:
            served_doc["primary_trace_id"] = served.primary_trace_id
        if served.cache_tier:
            served_doc["cache_tier"] = served.cache_tier
        if served.solve_mode:
            served_doc["solve_mode"] = served.solve_mode
            if served.dirty_frontier >= 0:
                served_doc["dirty_frontier"] = served.dirty_frontier
        if self.engine.worker_id:
            served_doc["worker_id"] = self.engine.worker_id
        envelope: Dict[str, Any] = {
            # The response echoes the schema the *request* spoke — v1
            # clients keep reading v1-shaped envelopes (plus a
            # deprecation marker) through the shim.
            "schema": request.schema_version,
            "report": report_doc,
            "served": served_doc,
        }
        if request.schema_version == SCHEMA_V1:
            envelope["deprecated"] = True
        return 200, envelope

    def _ref_is_alive(self, ref: str) -> bool:
        try:
            return self.engine.ref_alive(ref)
        except GraphFormatError:
            # Malformed ref strings fail schema validation downstream
            # with a better message.
            return True

    @staticmethod
    def _delta_parent(doc: Any) -> Optional[str]:
        """The parent ref named by a schema-v2 delta-form request doc,
        or ``None`` for every other shape."""
        if not isinstance(doc, dict):
            return None
        graph = doc.get("graph")
        if not isinstance(graph, dict):
            return None
        delta = graph.get("delta")
        if isinstance(delta, dict) and isinstance(delta.get("parent"), str):
            return delta["parent"]
        return None

    @staticmethod
    def _graph_too_large(doc: Any) -> Optional[str]:
        """A 413 message if the request's graph declares more than
        ``MAX_GRAPH_NODES`` nodes, else ``None`` (including documents too
        malformed to judge — schema validation owns those)."""
        if not isinstance(doc, dict):
            return None
        graph = doc.get("graph")
        if not isinstance(graph, dict):
            return None
        # Schema-v2 tagged union: the size-bearing shapes live one level
        # down under "inline"; "ref" sizes are checked post-parse and
        # "delta" sizes are bounded by the parent (already admitted).
        if isinstance(graph.get("inline"), dict):
            graph = graph["inline"]
        declared: Optional[int] = None
        if "spec" in graph:
            declared = declared_nodes(str(graph["spec"]))
        elif isinstance(graph.get("nodes"), list):
            declared = len(graph["nodes"])
        if declared is not None and declared > MAX_GRAPH_NODES:
            return (f"graph declares {declared} nodes; this server accepts "
                    f"at most {MAX_GRAPH_NODES}")
        return None

    @staticmethod
    def _error(status: int, message: str, *, detail: str = "",
               allow: Optional[str] = None) -> Tuple[int, Dict[str, Any]]:
        return error_doc(status, message, detail=detail, allow=allow)


async def _serve_async(server: SolverServer, *, banner: bool = True) -> None:
    port = await server.start()
    if banner:
        print(f"repro-serve listening on http://{server.host}:{port} "
              f"(schema {SCHEMA_VERSION})", flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # non-Unix loops
            pass
    try:
        await stop.wait()
        if banner:
            print("repro-serve draining in-flight requests...", flush=True)
        await server.shutdown()
        if banner:
            print("repro-serve drained; bye", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8008,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    max_queue: int = 64,
    max_batch: int = 8,
    banner: bool = True,
    memory_cache: int = 0,
    worker_id: str = "",
    backend: str = "per-node",
    graph_store: Optional[str] = None,
) -> int:
    """Blocking entry point of ``repro serve``.

    Runs until SIGTERM/SIGINT, then drains in-flight requests before
    returning.  ``port=0`` binds an ephemeral port (printed in the
    startup banner — how the CI smoke finds it).  ``memory_cache`` sizes
    the in-memory LRU report cache (0 disables it); ``worker_id`` tags
    this process in health payloads and served envelopes when it runs as
    a fleet worker; ``backend`` is the execution backend used for
    requests that do not select one; ``graph_store`` points the
    content-addressed graph store at a directory (shared across a fleet
    so a graph registered on any worker resolves on all of them).
    """
    engine = SolverEngine(workers=workers, cache_dir=cache_dir,
                          max_queue=max_queue, max_batch=max_batch,
                          memory_cache=memory_cache, worker_id=worker_id,
                          backend=backend, graph_store=graph_store)
    server = SolverServer(engine, host=host, port=port)
    asyncio.run(_serve_async(server, banner=banner))
    return 0
