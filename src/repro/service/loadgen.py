"""Closed-loop load generator for ``repro serve`` — ``repro loadgen``.

Spawns a fleet of concurrent HTTP clients that draw solve requests from
a finite pool (generator-zoo instances × certifiable algorithms × a few
seeds) and hammer a running service for a fixed duration.  Because the
pool is finite and clients loop over it, the run is guaranteed to
re-submit keys the service has already seen — exercising both the
request coalescer (concurrent twins) and the disk cache (sequential
repeats).

After the run every *unique* returned report is re-verified offline:
the independent set is checked structurally and, since the default pool
only uses guarantee-carrying algorithms (Theorems 1/2/3) on instances
small enough for the exact solver, :func:`repro.core.verify.certify_result`
confirms the approximation bound against true OPT.

Results (throughput, p50/p95/p99 latency, per-stage server-side latency
breakdown, trace coverage, status mix, coalesce/cache provenance,
verification tally) go to ``BENCH_service.json``.  With an
:class:`~repro.service.slo.SLOSpec` the document also carries
``certify_result``-style SLO verdicts under ``"slo"`` — what
``make slo-check`` gates CI on.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api import SolveReport, SolveRequest
from repro.graphs.specs import graph_from_spec, weights_from_spec
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs.aggregate import percentile

__all__ = [
    "DEFAULT_ALGORITHMS",
    "DEFAULT_SPECS",
    "build_request_pool",
    "generate_arrivals",
    "generate_churn",
    "register_pool_graphs",
    "run_churn",
    "run_loadgen",
    "run_open_loop",
]

# Instances stay under the exact solver's node limit so every unique
# report can be certified against true OPT after the run.
DEFAULT_SPECS: Tuple[Tuple[str, str], ...] = (
    ("gnp:24,0.15", "uniform:1,20"),
    ("gnp:40,0.08", "integers:50"),
    ("regular:30,3", "uniform:1,10"),
    ("tree:40", "integers:100"),
    ("cycle:36", "uniform:1,5"),
    ("grid:6,6", "unit"),
    ("caterpillar:18,1", "uniform:1,8"),
)

# Only pipelines that stamp guarantee_factor metadata, so certify_result
# has a bound to check.
DEFAULT_ALGORITHMS: Tuple[str, ...] = ("thm1", "thm2", "thm3")


@dataclass
class PoolEntry:
    """One request in the pool plus the graph needed to re-verify it."""

    request: SolveRequest
    graph: WeightedGraph
    body: bytes


@dataclass
class _Tally:
    sent: int = 0
    completed: int = 0
    ok: int = 0
    cached: int = 0
    coalesced: int = 0
    status_counts: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    transport_errors: int = 0
    reports: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    report_bytes: Dict[str, set] = field(default_factory=dict)
    # Server-reported telemetry: per-stage latency samples and how many
    # 200s carried a trace id (should be all of them).
    stage_latencies: Dict[str, List[float]] = field(default_factory=dict)
    with_trace_id: int = 0


def build_request_pool(
    *,
    specs: Tuple[Tuple[str, str], ...] = DEFAULT_SPECS,
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS,
    seeds: Tuple[int, ...] = (1, 2),
    eps: float = 0.5,
    timeout_s: float = 60.0,
) -> List[PoolEntry]:
    """Materialize the finite request pool the client fleet cycles over."""
    pool: List[PoolEntry] = []
    for i, (gspec, wspec) in enumerate(specs):
        graph = weights_from_spec(wspec, graph_from_spec(gspec, seed=i),
                                  seed=1000 + i)
        for algorithm in algorithms:
            for seed in seeds:
                request = SolveRequest(
                    graph=graph,
                    algorithm=algorithm,
                    seed=seed,
                    params={"eps": eps},
                    timeout_s=timeout_s,
                    label=f"loadgen:{gspec}",
                )
                pool.append(PoolEntry(
                    request=request,
                    graph=graph,
                    body=request.to_json().encode(),
                ))
    return pool


# --------------------------------------------------------------------- #
# minimal HTTP/1.1 client
# --------------------------------------------------------------------- #

class _Client:
    """One keep-alive connection; reconnects transparently on failure."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      body: bytes = b"") -> Tuple[int, bytes]:
        """Send one request; returns (status, raw response body)."""
        for attempt in (1, 2):
            if self._writer is None:
                await self._connect()
            assert self._reader is not None and self._writer is not None
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n"
            ).encode("latin-1")
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt == 2:
                    raise
        raise RuntimeError("unreachable")

    async def _read_response(self) -> Tuple[int, bytes]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed connection")
        status = int(status_line.split()[1])
        length = 0
        close_after = False
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            lname = name.strip().lower()
            if lname == "content-length":
                length = int(value.strip())
            elif lname == "connection" and value.strip().lower() == "close":
                close_after = True
        payload = await self._reader.readexactly(length) if length else b""
        if close_after:
            await self.close()
        return status, payload


# --------------------------------------------------------------------- #
# graph_ref mode
# --------------------------------------------------------------------- #

def _ref_body(request: SolveRequest, fingerprint: str) -> bytes:
    """The request body with the graph replaced by its schema-v2 ref.

    ``SolveRequest.key()`` hashes the graph *fingerprint*, which is
    exactly the ref — so the ref-carrying request is the same logical
    request (same cache key, same coalescing, byte-identical report) in
    a body a few hundred bytes long instead of the full node/edge dump.
    """
    doc = request.to_doc()
    doc["graph"] = {"ref": fingerprint}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


async def _register_async(host: str, port: int,
                          pool: List[PoolEntry]) -> Dict[str, str]:
    from repro.graphs import io as graph_io

    client = _Client(host, port)
    refs: Dict[str, str] = {}
    try:
        for entry in pool:
            fp = entry.graph.fingerprint()
            if fp in refs:
                continue
            status, payload = await client.request(
                "POST", "/v1/graphs", graph_io.to_bytes(entry.graph))
            if status != 200:
                raise ConnectionError(
                    f"graph registration failed: HTTP {status}: "
                    f"{payload[:200]!r}")
            refs[fp] = json.loads(payload)["graph_ref"]
    finally:
        await client.close()
    return refs


def register_pool_graphs(host: str, port: int,
                         pool: List[PoolEntry]) -> List[PoolEntry]:
    """Ingest-once-solve-many: register every unique pool graph via
    ``POST /v1/graphs`` (binary blob upload) and return a pool whose
    request bodies reference the stored graphs by ``graph_ref``.

    Request keys are unchanged (the ref *is* the fingerprint), so
    report verification and divergence tracking work identically on the
    rewritten pool.
    """
    refs = asyncio.run(_register_async(host, port, pool))
    return [
        PoolEntry(
            request=entry.request,
            graph=entry.graph,
            body=_ref_body(entry.request, refs[entry.graph.fingerprint()]),
        )
        for entry in pool
    ]


# --------------------------------------------------------------------- #
# churn: load against a mutating graph
# --------------------------------------------------------------------- #

# Spawn-key of the churn stream, mirroring the idiom of
# repro.faults.plans.fault_generator: mutation randomness is drawn from
# its own stream keyed disjointly from the arrival schedule (seed) and
# the pool picks (seed+1), so the same seed reproduces the same
# mutation history without perturbing either.
_CHURN_SPAWN_KEY = 0x6368726E  # "chrn"


def churn_rng(seed: int) -> random.Random:
    """The dedicated churn RNG for a run seeded with ``seed``."""
    return random.Random((seed << 32) ^ _CHURN_SPAWN_KEY)


def generate_churn(
    graph: WeightedGraph,
    *,
    epochs: int,
    edits_per_epoch: int = 4,
    crash_fraction: float = 0.25,
    weight_range: Tuple[int, int] = (1, 20),
    seed: int = 0,
) -> List[List[List[Any]]]:
    """Deterministic per-epoch edit scripts for a mutating-graph run.

    Composes the fault vocabulary of :mod:`repro.faults.plans` into
    graph mutations.  Each epoch is one :class:`~repro.graphs.delta.
    GraphDelta`-shaped op list, drawn from the churn stream:

    * **reweighting churn** (probability ``1 - crash_fraction``) —
      ``edits_per_epoch`` ``set_weight`` ops on live nodes, the
      weight-only shape the incremental re-solve path serves;
    * **crash** — a live node fail-stops: one ``remove_node`` op
      (neighbours keep running, exactly like a
      :class:`~repro.faults.plans.CrashSchedule` fail-stop);
    * **restart** — a previously crashed node comes back:
      ``add_node`` with its original weight plus ``add_edge`` to each
      of its original neighbours that is still alive.

    The schedule is a pure function of ``(graph, epochs,
    edits_per_epoch, crash_fraction, weight_range, seed)`` — replayable
    bit for bit, like every other seeded schedule in this module.
    """
    if epochs < 0:
        raise ValueError(f"epochs must be >= 0, got {epochs}")
    if not 0.0 <= crash_fraction <= 1.0:
        raise ValueError(
            f"crash_fraction must be in [0, 1], got {crash_fraction}")
    rng = churn_rng(seed)
    lo, hi = weight_range
    alive = sorted(graph.nodes)
    weights = {v: graph.weight(v) for v in alive}
    adjacency = {v: set(graph.neighbors(v)) for v in alive}
    down: List[Tuple[int, float, Tuple[int, ...]]] = []
    schedule: List[List[List[Any]]] = []
    for _ in range(epochs):
        roll = rng.random()
        if roll < crash_fraction / 2 and down:
            # restart: re-add the node, then re-wire the surviving edges
            v, w, edges = down.pop(rng.randrange(len(down)))
            ops: List[List[Any]] = [["add_node", v, w]]
            restored = [u for u in edges if u in weights]
            for u in sorted(restored):
                ops.append(["add_edge", v, u])
                adjacency.setdefault(u, set()).add(v)
            alive.append(v)
            alive.sort()
            weights[v] = w
            adjacency[v] = set(restored)
        elif roll < crash_fraction and len(alive) > 2:
            # crash: fail-stop one live node; remember it for restart
            v = alive.pop(rng.randrange(len(alive)))
            down.append((v, weights.pop(v),
                         tuple(sorted(adjacency.pop(v)))))
            for nbrs in adjacency.values():
                nbrs.discard(v)
            ops = [["remove_node", v]]
        else:
            # steady-state reweighting (weight-only — the incremental
            # path's case)
            ops = []
            for _ in range(max(1, edits_per_epoch)):
                v = alive[rng.randrange(len(alive))]
                w = float(rng.randint(lo, hi))
                weights[v] = w
                ops.append(["set_weight", v, w])
        schedule.append(ops)
    return schedule


async def _churn_async(host: str, port: int, graph: WeightedGraph,
                       schedule: List[List[List[Any]]], *,
                       algorithm: str, solve_seed: int,
                       params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.graphs import io as graph_io

    client = _Client(host, port)
    counts = {"epochs": 0, "incremental": 0, "full": 0, "failed": 0}
    frontiers: List[int] = []
    latencies: List[float] = []
    try:
        status, payload = await client.request(
            "POST", "/v1/graphs", graph_io.to_bytes(graph))
        if status != 200:
            raise ConnectionError(
                f"graph registration failed: HTTP {status}: "
                f"{payload[:200]!r}")
        parent = json.loads(payload)["graph_ref"]
        for ops in schedule:
            solve_doc = {
                "schema": "v2",
                "graph": {"delta": {"parent": parent, "ops": ops}},
                "algorithm": algorithm,
                "seed": solve_seed,
                "params": params,
            }
            t0 = time.monotonic()
            status, payload = await client.request(
                "POST", "/v1/solve",
                json.dumps(solve_doc, sort_keys=True,
                           separators=(",", ":")).encode())
            latencies.append(time.monotonic() - t0)
            counts["epochs"] += 1
            if status != 200:
                counts["failed"] += 1
                continue
            envelope = json.loads(payload)
            served = envelope.get("served", {})
            mode = served.get("solve_mode", "full")
            counts[mode if mode in counts else "full"] += 1
            if "dirty_frontier" in served:
                frontiers.append(served["dirty_frontier"])
            # advance the chain: register this epoch's delta so the next
            # epoch's parent is the mutated graph
            status, payload = await client.request(
                "POST", f"/v1/graphs/{parent}/deltas",
                json.dumps({"ops": ops}).encode())
            if status == 200:
                parent = json.loads(payload)["graph_ref"]
            else:
                counts["failed"] += 1
    finally:
        await client.close()
    return {
        "counts": counts,
        "frontiers": frontiers,
        "latencies": latencies,
        "final_ref": parent,
    }


def run_churn(
    *,
    host: str = "127.0.0.1",
    port: int = 8008,
    graph: Optional[WeightedGraph] = None,
    epochs: int = 20,
    edits_per_epoch: int = 4,
    crash_fraction: float = 0.25,
    algorithm: str = "mis-luby",
    seed: int = 0,
    solve_seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
    out_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Churn benchmark: a mutating graph under a deterministic edit
    schedule.

    Registers ``graph`` once, then walks :func:`generate_churn`'s
    schedule: each epoch submits a delta-form solve (``{"delta":
    {"parent": ..., "ops": ...}}``) and registers the epoch's delta via
    ``POST /v1/graphs/<ref>/deltas`` so the next epoch mutates the
    child.  The document reports how many epochs the service served
    incrementally versus with a full re-solve, plus dirty-frontier
    sizes — the serving-side view of the delta plane under sustained
    mutation.
    """
    if graph is None:
        graph = weights_from_spec(
            "uniform:1,20", graph_from_spec("gnp:64,0.08", seed=seed),
            seed=seed + 1)
    schedule = generate_churn(
        graph, epochs=epochs, edits_per_epoch=edits_per_epoch,
        crash_fraction=crash_fraction, seed=seed)
    result = asyncio.run(_churn_async(
        host, port, graph, schedule, algorithm=algorithm,
        solve_seed=solve_seed, params=dict(params or {})))
    counts = result["counts"]
    doc: Dict[str, Any] = {
        "schema": "v1",
        "kind": "service_churn",
        "config": {
            "host": host, "port": port, "epochs": epochs,
            "edits_per_epoch": edits_per_epoch,
            "crash_fraction": crash_fraction, "algorithm": algorithm,
            "seed": seed, "solve_seed": solve_seed,
            "graph_fingerprint": graph.fingerprint(),
            "n": graph.n, "m": graph.m,
        },
        "epochs": counts["epochs"],
        "incremental": counts["incremental"],
        "full": counts["full"],
        "failed": counts["failed"],
        "incremental_rate": (counts["incremental"] / counts["epochs"]
                             if counts["epochs"] else 0.0),
        "dirty_frontier": {
            "observed": len(result["frontiers"]),
            "max": max(result["frontiers"], default=0),
            "mean": (sum(result["frontiers"]) / len(result["frontiers"])
                     if result["frontiers"] else 0.0),
        },
        "latency": {
            "p50_s": percentile(result["latencies"], 50),
            "p95_s": percentile(result["latencies"], 95),
            "observed": len(result["latencies"]),
        },
        "final_ref": result["final_ref"],
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


# --------------------------------------------------------------------- #
# the closed loop
# --------------------------------------------------------------------- #

async def _client_loop(client_id: int, host: str, port: int,
                       pool: List[PoolEntry], deadline: float,
                       tally: _Tally, gate: asyncio.Event) -> None:
    client = _Client(host, port)
    # Clients start at staggered offsets but walk the same cyclic order,
    # so distinct clients regularly collide on the same key while it is
    # in flight — that collision is what the coalescer serves.  The
    # first request is the exception: every client fires it at the same
    # key the instant the gate opens, a deliberate coalesce burst.
    index = (client_id * 3) % max(len(pool), 1)
    first = True
    await gate.wait()
    try:
        while time.monotonic() < deadline:
            if first:
                entry, first = pool[0], False
            else:
                entry = pool[index % len(pool)]
                index += 1
            t0 = time.monotonic()
            try:
                status, payload = await client.request(
                    "POST", "/v1/solve", entry.body
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                tally.transport_errors += 1
                continue
            seconds = time.monotonic() - t0
            tally.sent += 1
            tally.status_counts[str(status)] = (
                tally.status_counts.get(str(status), 0) + 1
            )
            if status != 200:
                continue
            tally.completed += 1
            tally.latencies.append(seconds)
            envelope = json.loads(payload)
            served = envelope.get("served", {})
            if served.get("cached"):
                tally.cached += 1
            if served.get("coalesced"):
                tally.coalesced += 1
            if served.get("trace_id"):
                tally.with_trace_id += 1
            for stage, seconds in (served.get("stages") or {}).items():
                tally.stage_latencies.setdefault(stage, []).append(seconds)
            report_doc = envelope.get("report", {})
            if report_doc.get("ok"):
                tally.ok += 1
            key = entry.request.key()
            tally.reports.setdefault(key, report_doc)
            tally.report_bytes.setdefault(key, set()).add(
                json.dumps(report_doc, sort_keys=True, separators=(",", ":"))
            )
    finally:
        await client.close()


def _verify_reports(pool: List[PoolEntry],
                    tally: _Tally) -> Tuple[int, int, List[str]]:
    """Re-certify every unique report offline against its instance."""
    from repro.core.verify import certify_result

    by_key = {entry.request.key(): entry for entry in pool}
    verified = 0
    failures: List[str] = []
    for key, doc in tally.reports.items():
        entry = by_key.get(key)
        if entry is None:
            failures.append(f"{key[:12]}…: report for unknown pool key")
            continue
        report = SolveReport.from_doc(doc)
        if not report.ok:
            failures.append(f"{report.label}/{report.algorithm}: ok=False "
                            f"({report.error})")
            continue
        try:
            cert = certify_result(entry.graph, report)
        except Exception as exc:  # noqa: BLE001 — recorded, not fatal
            failures.append(f"{report.label}/{report.algorithm}: {exc}")
            continue
        if not cert.holds:
            failures.append(
                f"{report.label}/{report.algorithm}: bound violated "
                f"({cert.achieved:g} < {cert.required:g} vs {cert.reference})"
            )
            continue
        verified += 1
    return verified, len(tally.reports), failures


async def _run_async(host: str, port: int, *, clients: int,
                     duration_s: float, pool: List[PoolEntry]) -> _Tally:
    tally = _Tally()
    gate = asyncio.Event()
    deadline = time.monotonic() + duration_s
    tasks = [
        asyncio.ensure_future(
            _client_loop(i, host, port, pool, deadline, tally, gate)
        )
        for i in range(clients)
    ]
    gate.set()
    await asyncio.gather(*tasks)
    return tally


async def _fetch_metrics(host: str, port: int) -> Optional[Dict[str, Any]]:
    client = _Client(host, port)
    try:
        status, payload = await client.request("GET", "/v1/metrics")
        return json.loads(payload) if status == 200 else None
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        return None
    finally:
        await client.close()


# --------------------------------------------------------------------- #
# open-loop arrivals
# --------------------------------------------------------------------- #

def generate_arrivals(
    *,
    process: str = "poisson",
    rate: float,
    duration_s: float,
    seed: int = 0,
    burst_size: int = 8,
) -> List[float]:
    """Deterministic arrival offsets (seconds from t=0) for one run.

    Open-loop load is defined by *when requests arrive*, independent of
    when earlier requests complete — a closed loop throttles itself to
    the service's pace and therefore cannot see overload.  Three
    processes:

    * ``poisson`` — exponential inter-arrival gaps at ``rate`` req/s,
      the memoryless baseline.
    * ``bursty`` — bursts of ``burst_size`` simultaneous arrivals at
      Poisson-spaced epochs, mean rate still ``rate`` (what coalescers
      and admission queues actually face).
    * ``uniform`` — fixed ``1/rate`` spacing, the smoothest possible
      offered load (the lower bound on queueing).

    The schedule is a pure function of ``(process, rate, duration_s,
    seed, burst_size)`` — a private :class:`random.Random` keyed by
    ``seed``, never global state — so a sweep cell can be replayed
    bit-for-bit.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    rng = random.Random(seed)
    arrivals: List[float] = []
    t = 0.0
    if process == "poisson":
        while True:
            t += rng.expovariate(rate)
            if t >= duration_s:
                break
            arrivals.append(t)
    elif process == "uniform":
        step = 1.0 / rate
        i = 1
        while i * step < duration_s:
            arrivals.append(i * step)
            i += 1
    elif process == "bursty":
        epoch_rate = rate / burst_size
        while True:
            t += rng.expovariate(epoch_rate)
            if t >= duration_s:
                break
            arrivals.extend([t] * burst_size)
    else:
        raise ValueError(
            f"unknown arrival process {process!r}; "
            f"use 'poisson', 'bursty', or 'uniform'")
    return arrivals


@dataclass
class _OpenTally(_Tally):
    """Closed-loop tally plus the open-loop bookkeeping."""

    rejected: int = 0          # HTTP 429/503 — the overload signal
    late_starts: List[float] = field(default_factory=list)
    gave_up: int = 0           # still unfinished at the wall-clock cap


async def _fire_one(pool_conns: List[_Client], host: str, port: int,
                    entry: PoolEntry, scheduled: float,
                    tally: _OpenTally, timeout_s: float) -> None:
    """One open-loop request: latency counts from the *scheduled*
    arrival, so client-side send delay (coordinated omission) is part of
    the measurement, not hidden by it."""
    client = pool_conns.pop() if pool_conns else _Client(host, port)
    started = time.monotonic()
    tally.late_starts.append(max(0.0, started - scheduled))
    try:
        status, payload = await asyncio.wait_for(
            client.request("POST", "/v1/solve", entry.body),
            timeout=timeout_s)
    except asyncio.TimeoutError:
        tally.gave_up += 1
        await client.close()
        return
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        tally.transport_errors += 1
        await client.close()
        return
    seconds = time.monotonic() - scheduled
    tally.sent += 1
    tally.status_counts[str(status)] = (
        tally.status_counts.get(str(status), 0) + 1)
    if len(pool_conns) < 64:
        pool_conns.append(client)
    else:
        await client.close()
    if status in (429, 503):
        tally.rejected += 1
        return
    if status != 200:
        return
    tally.completed += 1
    tally.latencies.append(seconds)
    envelope = json.loads(payload)
    served = envelope.get("served", {})
    if served.get("cached"):
        tally.cached += 1
    if served.get("coalesced"):
        tally.coalesced += 1
    if served.get("trace_id"):
        tally.with_trace_id += 1
    report_doc = envelope.get("report", {})
    if report_doc.get("ok"):
        tally.ok += 1
    key = entry.request.key()
    tally.reports.setdefault(key, report_doc)
    tally.report_bytes.setdefault(key, set()).add(
        json.dumps(report_doc, sort_keys=True, separators=(",", ":")))


async def _run_open_loop_async(
    host: str, port: int, pool: List[PoolEntry], arrivals: List[float],
    picks: List[int], *, duration_s: float, timeout_s: float,
) -> Tuple[_OpenTally, float]:
    tally = _OpenTally()
    conns: List[_Client] = []
    tasks: List[asyncio.Task] = []
    t0 = time.monotonic()
    # The hard wall-clock cap: schedule for duration_s, then allow a
    # bounded grace for stragglers before they are counted as gave_up.
    cap = t0 + duration_s + min(timeout_s, 2.0 * duration_s)
    for offset, pick in zip(arrivals, picks):
        now = time.monotonic()
        if now - t0 >= duration_s:
            break
        delay = (t0 + offset) - now
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(_fire_one(
            conns, host, port, pool[pick], t0 + offset, tally, timeout_s)))
    if tasks:
        done, pending = await asyncio.wait(
            tasks, timeout=max(0.1, cap - time.monotonic()))
        for task in pending:
            task.cancel()
            tally.gave_up += 1
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    elapsed = time.monotonic() - t0
    for client in conns:
        await client.close()
    return tally, elapsed


def run_open_loop(
    *,
    host: str = "127.0.0.1",
    port: int = 8008,
    rate: float = 50.0,
    duration_s: float = 5.0,
    arrival: str = "poisson",
    arrival_seed: int = 0,
    burst_size: int = 8,
    timeout_s: float = 30.0,
    pool: Optional[List[PoolEntry]] = None,
    out_path: Optional[str] = None,
    graph_ref: bool = False,
) -> Dict[str, Any]:
    """Open-loop benchmark: offer ``rate`` req/s for ``duration_s``.

    Unlike :func:`run_loadgen`'s closed loop, arrivals here are
    generated up front (:func:`generate_arrivals`, deterministic under
    ``arrival_seed``) and fired on schedule whether or not earlier
    requests came back — achieved throughput below offered load, growing
    latency from *scheduled* arrival time, and 429s are all visible.
    ``duration_s`` is also a wall-clock cap: no new request starts after
    it, and stragglers get at most a bounded grace before being counted
    in ``gave_up``.
    """
    if pool is None:
        pool = build_request_pool()
    if not pool:
        raise ValueError("request pool is empty")
    if graph_ref:
        pool = register_pool_graphs(host, port, pool)
    arrivals = generate_arrivals(process=arrival, rate=rate,
                                 duration_s=duration_s, seed=arrival_seed,
                                 burst_size=burst_size)
    # Pool picks come from their own stream (seed+1) so the request mix
    # is deterministic too but independent of the gap sequence.
    pick_rng = random.Random(arrival_seed + 1)
    picks = [pick_rng.randrange(len(pool)) for _ in arrivals]
    tally, elapsed = asyncio.run(_run_open_loop_async(
        host, port, pool, arrivals, picks,
        duration_s=duration_s, timeout_s=timeout_s))
    offered = len(arrivals) / duration_s
    doc: Dict[str, Any] = {
        "schema": "v1",
        "kind": "service_open_loop",
        "config": {
            "host": host, "port": port, "arrival": arrival, "rate": rate,
            "duration_s": duration_s, "arrival_seed": arrival_seed,
            "burst_size": burst_size if arrival == "bursty" else None,
            "timeout_s": timeout_s, "pool_size": len(pool),
            "graph_ref": graph_ref,
        },
        "elapsed_s": elapsed,
        "offered": len(arrivals),
        "offered_rps": offered,
        "sent": tally.sent,
        "completed": tally.completed,
        "ok": tally.ok,
        "rejected": tally.rejected,
        "gave_up": tally.gave_up,
        "transport_errors": tally.transport_errors,
        "status_counts": tally.status_counts,
        "achieved_rps": (tally.completed / elapsed) if elapsed > 0 else 0.0,
        "goodput_ratio": (tally.completed / len(arrivals)) if arrivals else 0.0,
        "latency": {
            "p50_s": percentile(tally.latencies, 50),
            "p95_s": percentile(tally.latencies, 95),
            "p99_s": percentile(tally.latencies, 99),
            "max_s": max(tally.latencies, default=0.0),
            "observed": len(tally.latencies),
        },
        "send_delay": {
            "p99_s": percentile(tally.late_starts, 99),
            "max_s": max(tally.late_starts, default=0.0),
        },
        "served": {
            "cached": tally.cached,
            "coalesced": tally.coalesced,
            "with_trace_id": tally.with_trace_id,
        },
        "unique_reports": len(tally.reports),
        "divergent_reports": sum(1 for blobs in tally.report_bytes.values()
                                 if len(blobs) > 1),
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


def run_loadgen(
    *,
    host: str = "127.0.0.1",
    port: int = 8008,
    clients: int = 8,
    duration_s: float = 5.0,
    out_path: Optional[str] = "BENCH_service.json",
    pool: Optional[List[PoolEntry]] = None,
    verify: bool = True,
    slo: Optional[Any] = None,
    graph_ref: bool = False,
) -> Dict[str, Any]:
    """Drive a running service and write the benchmark document.

    ``slo`` is an :class:`~repro.service.slo.SLOSpec` (or a path to a
    spec JSON file) evaluated against the client-observed measurements;
    the verdicts land in the document under ``"slo"``.

    Returns the document (also written to ``out_path`` unless ``None``).
    """
    from repro.service.slo import SLOSpec, load_slo_spec

    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if isinstance(slo, str):
        slo = load_slo_spec(slo)
    if slo is not None and not isinstance(slo, SLOSpec):
        raise TypeError(f"slo must be an SLOSpec or a path, "
                        f"got {type(slo).__name__}")
    if pool is None:
        pool = build_request_pool()
    if not pool:
        raise ValueError("request pool is empty")
    if graph_ref:
        # Ingest-once-solve-many: every unique graph goes over the wire
        # exactly once; the loop then solves by reference.
        pool = register_pool_graphs(host, port, pool)

    t0 = time.monotonic()
    tally = asyncio.run(
        _run_async(host, port, clients=clients, duration_s=duration_s,
                   pool=pool)
    )
    elapsed = time.monotonic() - t0
    server_metrics = asyncio.run(_fetch_metrics(host, port))

    if verify:
        verified, unique, failures = _verify_reports(pool, tally)
    else:
        verified, unique, failures = 0, len(tally.reports), []
    divergent = sum(1 for blobs in tally.report_bytes.values()
                    if len(blobs) > 1)

    doc: Dict[str, Any] = {
        "schema": "v1",
        "kind": "service_loadgen",
        "config": {
            "host": host,
            "port": port,
            "clients": clients,
            "duration_s": duration_s,
            "pool_size": len(pool),
            "graph_ref": graph_ref,
        },
        "elapsed_s": elapsed,
        "sent": tally.sent,
        "completed": tally.completed,
        "ok": tally.ok,
        "transport_errors": tally.transport_errors,
        "status_counts": tally.status_counts,
        "throughput_rps": (tally.completed / elapsed) if elapsed > 0 else 0.0,
        "latency": {
            "p50_s": percentile(tally.latencies, 50),
            "p95_s": percentile(tally.latencies, 95),
            "p99_s": percentile(tally.latencies, 99),
            "max_s": max(tally.latencies, default=0.0),
            "observed": len(tally.latencies),
            "stages": {
                stage: {
                    "p50_s": percentile(samples, 50),
                    "p95_s": percentile(samples, 95),
                    "max_s": max(samples, default=0.0),
                    "observed": len(samples),
                }
                for stage, samples in sorted(tally.stage_latencies.items())
            },
        },
        "served": {
            "cached": tally.cached,
            "coalesced": tally.coalesced,
            "with_trace_id": tally.with_trace_id,
        },
        "unique_reports": unique,
        "divergent_reports": divergent,
        "verification": {
            "enabled": verify,
            "verified": verified,
            "failures": failures,
        },
        "server_metrics": server_metrics,
    }
    if slo is not None:
        report = slo.evaluate(
            latencies_s=tally.latencies,
            sent=tally.sent,
            completed=tally.completed,
            throughput_rps=doc["throughput_rps"],
        )
        doc["slo"] = report.to_doc()
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc
