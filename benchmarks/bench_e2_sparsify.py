"""E2 — Theorem 9: weighted sparsification (Lemmas 3 and 5)."""

import pytest

from repro.bench import experiment_e2_sparsify
from repro.core import sample_subgraph, sparsified_approx
from repro.graphs import random_regular, skewed_heavy_set


@pytest.mark.experiment("E2")
def test_e2_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e2_sparsify,
        kwargs={"sizes": (200, 400, 800), "trials": 3},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["delta_h_is_O_log_n"]


def test_sampling_single_run(benchmark):
    g = skewed_heavy_set(random_regular(500, 60, seed=1), fraction=0.02, seed=2)
    outcome = benchmark(lambda: sample_subgraph(g, seed=3))
    assert outcome.subgraph.n > 0


def test_sparsified_pipeline_single_run(benchmark):
    g = skewed_heavy_set(random_regular(400, 50, seed=4), fraction=0.02, seed=5)
    result = benchmark(lambda: sparsified_approx(g, seed=6))
    assert result.weight(g) > 0
