"""Failure-safe `make slo-check` driver: gate CI on tail-latency SLOs.

Two gates, both against ``benchmarks/slo_spec.json`` (override with
``--spec``):

1. **Offline** — re-evaluate the committed ``BENCH_service.json``
   baseline document.  Catches a regression that slipped into the
   committed numbers, and catches someone tightening the spec below
   what the baseline actually measures.
2. **Live** — start ``repro serve`` on an ephemeral port, run a short
   loadgen burst in-process with the spec attached, and gate on the
   fresh verdicts.  Skipped with ``--offline-only``.

The live burst's full benchmark document (SLO verdicts included) is
written to ``--report`` (default ``slo_report.json``; CI uploads it as
an artifact).  Exits non-zero if any gate's objective is violated.

Run as ``python benchmarks/slo_check.py`` (the Makefile sets
``PYTHONPATH=src``).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"listening on http://([0-9.]+):(\d+)")

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_SPEC = os.path.join(_HERE, "slo_spec.json")
DEFAULT_BASELINE = os.path.join(os.path.dirname(_HERE), "BENCH_service.json")


def _start_server(scratch: str):
    log_path = os.path.join(scratch, "serve.log")
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache", os.path.join(scratch, "cache")],
        stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with open(log_path, encoding="utf-8") as fh:
            match = BANNER.search(fh.read())
        if match:
            return proc, log, log_path, match.group(1), int(match.group(2))
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    log.close()
    with open(log_path, encoding="utf-8") as fh:
        raise AssertionError(f"server did not start:\n{fh.read()}")


def _offline_gate(spec, baseline_path: str) -> bool:
    """Verdicts against the committed benchmark document."""
    if not os.path.exists(baseline_path):
        print(f"offline gate: no baseline at {baseline_path} — skipped")
        return True
    with open(baseline_path, encoding="utf-8") as fh:
        bench = json.load(fh)
    report = spec.evaluate_doc(bench)
    print(f"offline gate ({os.path.basename(baseline_path)}):")
    print(report.render())
    return report.holds


def _live_gate(spec, *, clients: int, duration_s: float,
               report_path: str) -> bool:
    """Fresh loadgen burst against a just-started server."""
    from repro.service import run_loadgen

    scratch = tempfile.mkdtemp(prefix="slo-check-")
    proc = log = None
    try:
        proc, log, log_path, host, port = _start_server(scratch)
        doc = run_loadgen(
            host=host, port=port, clients=clients, duration_s=duration_s,
            out_path=report_path, verify=False, slo=spec,
        )
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30.0)
        log.close()
        if rc != 0:
            with open(log_path, encoding="utf-8") as fh:
                print(f"server exit {rc}:\n{fh.read()}")
            return False

        from repro.service.slo import SLOCheck, SLOReport
        verdicts = SLOReport(
            spec_name=doc["slo"]["spec"],
            checks=[SLOCheck(**c) for c in doc["slo"]["checks"]],
        )
        lat = doc["latency"]
        print(f"live gate: {doc['completed']}/{doc['sent']} requests, "
              f"{doc['throughput_rps']:.0f} req/s, "
              f"p50 {lat['p50_s'] * 1e3:.1f} ms / "
              f"p95 {lat['p95_s'] * 1e3:.1f} ms / "
              f"p99 {lat['p99_s'] * 1e3:.1f} ms, "
              f"{doc['served']['with_trace_id']} traced")
        print(verdicts.render())
        if doc["completed"] == 0:
            print("live gate: no requests completed")
            return False
        if doc["served"]["with_trace_id"] != doc["completed"]:
            print(f"live gate: only {doc['served']['with_trace_id']} of "
                  f"{doc['completed']} responses carried a trace id")
            return False
        return verdicts.holds
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        if log is not None and not log.closed:
            log.close()
        shutil.rmtree(scratch, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--spec", default=DEFAULT_SPEC,
                        help="SLO spec JSON (benchmarks/slo_spec.json)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed BENCH_service.json for the "
                             "offline gate")
    parser.add_argument("--report", default="slo_report.json",
                        help="where the live burst's document goes")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="live burst seconds")
    parser.add_argument("--offline-only", action="store_true",
                        help="skip the live server burst")
    args = parser.parse_args()

    from repro.service.slo import load_slo_spec
    spec = load_slo_spec(args.spec)

    ok = _offline_gate(spec, args.baseline)
    if not args.offline_only:
        ok = _live_gate(spec, clients=args.clients,
                        duration_s=args.duration,
                        report_path=args.report) and ok
    print(f"slo-check: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
