"""E14 — degradation under unreliable delivery (fault-injection sweep).

The paper's guarantees assume the reliable synchronous model; this
benchmark measures what Theorem 8 (good nodes) and Luby's MIS are worth
when that assumption breaks: validity rate, weight retention versus the
fault-free baseline, and the cost of a resilience sweep through the
batch engine (the fault plan is part of the cache key, so warm re-runs
are near-free).
"""

import os
import time

import pytest

from repro.faults import MessageLoss, composite, resilience_sweep
from repro.faults.harness import BASELINE
from repro.graphs import gnp, uniform_weights
from repro.simulator import run
from repro.simulator.network import Network


def _instance(seed: int = 0):
    return uniform_weights(gnp(80, 0.06, seed=seed), 1, 20, seed=seed)


LOSS_AXIS = [None, MessageLoss(0.02), MessageLoss(0.05), MessageLoss(0.1),
             MessageLoss(0.2)]


@pytest.mark.experiment("E14")
def test_e14_degradation_curve(benchmark):
    """The headline sweep: validity and retention vs. loss rate."""
    graph = _instance()

    def sweep():
        return resilience_sweep(graph, ["thm8", "mis-luby"], LOSS_AXIS,
                                trials=5, master_seed=0)

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    base = report.cell("thm8", BASELINE)
    assert base.valid == base.trials
    assert base.mean_retention == pytest.approx(1.0)
    print("\nE14 degradation (valid fraction / weight retention):")
    print(report.render())


@pytest.mark.experiment("E14")
def test_e14_sweep_cold_vs_warm_cache(tmp_path):
    """Fault plans key the cache: a warm re-run pays ~nothing."""
    graph = _instance(seed=1)
    cache = str(tmp_path / "cache")
    t0 = time.perf_counter()
    cold = resilience_sweep(graph, ["mis-luby"], LOSS_AXIS, trials=5,
                            master_seed=3, cache_dir=cache)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = resilience_sweep(graph, ["mis-luby"], LOSS_AXIS, trials=5,
                            master_seed=3, cache_dir=cache)
    warm_s = time.perf_counter() - t0
    assert [c.to_doc() for c in warm.cells] == [c.to_doc() for c in cold.cells]
    assert all(o.cached for o in warm.batch.outcomes)
    print(f"\nE14 cache: cold {cold_s:.2f}s, warm {warm_s:.2f}s "
          f"(speedup x{cold_s / max(warm_s, 1e-9):.1f})")


@pytest.mark.experiment("E14")
def test_e14_parallel_sweep_matches_serial(benchmark):
    graph = _instance(seed=2)
    jobs = min(4, os.cpu_count() or 1)
    serial = resilience_sweep(graph, ["mis-luby"], LOSS_AXIS, trials=5,
                              master_seed=7)
    parallel = benchmark.pedantic(
        resilience_sweep,
        args=(graph, ["mis-luby"], LOSS_AXIS),
        kwargs={"trials": 5, "master_seed": 7, "n_jobs": jobs},
        iterations=1,
        rounds=1,
    )
    assert ([c.to_doc() for c in parallel.cells]
            == [c.to_doc() for c in serial.cells])


def test_faulty_run_overhead(benchmark):
    """Per-run cost of threading delivery through a fault session."""
    graph = _instance(seed=4)
    from repro.mis.luby import LubyMIS

    plan = composite(MessageLoss(0.05))
    net = Network.of(graph)
    baseline = run(net, LubyMIS, seed=5)
    res = benchmark(lambda: run(net, LubyMIS, seed=5, faults=plan))
    assert res.metrics.fault_dropped_messages > 0
    # Overhead shows up in wall-clock only; accounting stays exact.
    assert (res.metrics.total_bits
            == res.metrics.delivered_bits + res.metrics.dropped_bits
            + res.metrics.fault_dropped_bits)
    assert baseline.metrics.fault_dropped_messages == 0
