"""E4 — Theorem 1: deterministic (1+ε)Δ, certified against exact OPT."""

import pytest

from repro.bench import experiment_e4_theorem1
from repro.core import theorem1_maxis
from repro.graphs import gnp, uniform_weights


@pytest.mark.experiment("E4")
def test_e4_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e4_theorem1,
        kwargs={"n": 60, "eps_values": (1.0, 0.5, 0.25), "trials": 3},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["all_certificates_hold"]


def test_theorem1_deterministic_blackbox(benchmark):
    g = uniform_weights(gnp(120, 0.06, seed=1), 1, 40, seed=2)
    result = benchmark(lambda: theorem1_maxis(g, 0.5, seed=3))
    assert result.size > 0
