"""E13 — message complexity of every pipeline."""

import pytest

from repro.bench import experiment_e13_message_complexity


@pytest.mark.experiment("E13")
def test_e13_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e13_message_complexity,
        kwargs={"sizes": (100, 200, 400)},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["messages_per_edge_bounded"]
