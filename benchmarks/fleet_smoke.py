"""Failure-safe `make fleet-smoke` driver.

End-to-end exercise of the sharded solver fleet through the real CLI,
the way CI runs it:

1. start ``repro fleet`` (router + 2 worker subprocesses) on an
   ephemeral port (parsed from its startup banner) with a fresh shared
   disk cache;
2. check ``GET /v1/ready`` (all shards warm) and ``GET /v1/health``
   (both workers alive, worker_id/backend in each payload);
3. **coalescing survives sharding**: fire concurrent duplicate requests
   for a handful of unique fingerprints through the router and assert
   the fleet-wide ``executed`` counter equals the number of *unique*
   fingerprints — every duplicate was coalesced or served by a cache
   tier on the single worker that owns its shard;
4. assert one fixed-seed routed response is byte-identical to
   ``repro.api.solve``;
5. run ``repro loadgen --arrival poisson`` (open loop, seeded) against
   the fleet, which re-checks report consistency and writes the
   latency/goodput document;
6. SIGTERM the router and assert the whole fleet drains and exits 0.

All scratch state (worker caches, logs, the benchmark document) lives
in a temporary directory removed in a ``finally`` block.  The benchmark
document is copied to ``bench_fleet_current.json`` in the working
directory only when ``--keep-bench`` is passed (CI uploads it as an
artifact next to the committed ``BENCH_fleet.json`` saturation sweep).

Run as ``python benchmarks/fleet_smoke.py`` (the Makefile sets
``PYTHONPATH=src``); exits non-zero with diagnostics on any violation.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"repro-fleet listening on http://([0-9.]+):(\d+)")


def _start_fleet(scratch: str, workers: int):
    log_path = os.path.join(scratch, "fleet.log")
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--port", "0",
         "--workers", str(workers),
         "--cache", os.path.join(scratch, "cache"),
         "--scratch", os.path.join(scratch, "fleet")],
        stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        with open(log_path, encoding="utf-8") as fh:
            match = BANNER.search(fh.read())
        if match:
            return proc, log, log_path, match.group(1), int(match.group(2))
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    log.close()
    with open(log_path, encoding="utf-8") as fh:
        raise AssertionError(f"fleet did not start:\n{fh.read()}")


def _http(host: str, port: int, method: str, path: str,
          body: bytes = b"") -> tuple:
    """One plain-socket HTTP request; returns (status, parsed body)."""
    import socket

    with socket.create_connection((host, port), timeout=60.0) as sock:
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n"
                f"\r\n").encode()
        sock.sendall(head + body)
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(payload) if payload else None


def _request_bodies(unique: int) -> list:
    from repro.api import SolveRequest
    from repro.graphs import gnp, uniform_weights

    graph = uniform_weights(gnp(30, 0.12, seed=3), 1, 20, seed=4)
    return [
        SolveRequest(graph=graph, algorithm="thm2", seed=seed,
                     params={"eps": 0.5}).to_json().encode()
        for seed in range(unique)
    ]


def _check_coalescing_survives_sharding(host: str, port: int) -> dict:
    """K unique fingerprints x N concurrent duplicates -> K executions."""
    unique, dup = 3, 6
    bodies = [body for body in _request_bodies(unique) for _ in range(dup)]
    with concurrent.futures.ThreadPoolExecutor(max_workers=len(bodies)) as ex:
        results = list(ex.map(
            lambda b: _http(host, port, "POST", "/v1/solve", b), bodies))
    for status, doc in results:
        assert status == 200, (status, doc)
    status, metrics = _http(host, port, "GET", "/v1/metrics")
    assert status == 200, (status, metrics)
    assert metrics["executed"] == unique, (
        f"coalescing broke across shards: {unique} unique fingerprints but "
        f"{metrics['executed']} solver executions fleet-wide "
        f"(coalesced={metrics['coalesced']}, "
        f"memory={metrics['memory_cache_hits']}, "
        f"disk={metrics['cache_hits']})")
    spared = (metrics["coalesced"] + metrics["memory_cache_hits"]
              + metrics["cache_hits"])
    assert spared == unique * (dup - 1), metrics
    return metrics


def _check_byte_identity(host: str, port: int) -> None:
    from repro.api import SolveRequest, solve
    from repro.graphs import gnp, uniform_weights

    graph = uniform_weights(gnp(30, 0.12, seed=5), 1, 20, seed=6)
    request = SolveRequest(graph=graph, algorithm="thm2", seed=7,
                           params={"eps": 0.5})
    status, envelope = _http(host, port, "POST", "/v1/solve",
                             request.to_json().encode())
    assert status == 200, (status, envelope)
    wire = json.dumps(envelope["report"], sort_keys=True,
                      separators=(",", ":"))
    direct = solve(graph, "thm2", seed=7, eps=0.5).to_json()
    assert wire == direct, (
        f"routed report diverged from repro.api.solve:\n{wire}\n{direct}"
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rate", type=float, default=40.0,
                        help="open-loop offered rate (req/s)")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="loadgen seconds")
    parser.add_argument("--keep-bench", action="store_true",
                        help="copy the bench doc to ./bench_fleet_current"
                             ".json")
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="fleet-smoke-")
    proc = log = None
    try:
        proc, log, log_path, host, port = _start_fleet(scratch, args.workers)

        status, doc = _http(host, port, "GET", "/v1/ready")
        assert status == 200 and doc["status"] == "ready", (status, doc)
        assert doc["workers_ready"] == args.workers, doc

        status, doc = _http(host, port, "GET", "/v1/health")
        assert status == 200 and doc["status"] == "ok", (status, doc)
        assert doc["workers_alive"] == args.workers, doc
        for worker_id, entry in doc["workers"].items():
            assert entry["worker_id"] == worker_id, doc["workers"]
            assert entry["backend"], doc["workers"]

        metrics = _check_coalescing_survives_sharding(host, port)
        _check_byte_identity(host, port)

        bench_path = os.path.join(scratch, "bench_fleet.json")
        load = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen",
             "--host", host, "--port", str(port),
             "--arrival", "poisson", "--arrival-seed", "0",
             "--rate", str(args.rate),
             "--duration", str(args.duration),
             "--out", bench_path],
            capture_output=True, text=True,
        )
        print(load.stdout, end="")
        assert load.returncode == 0, (
            f"loadgen failed (rc={load.returncode}):\n"
            f"{load.stdout}\n{load.stderr}"
        )
        bench = json.loads(open(bench_path, encoding="utf-8").read())
        assert bench["completed"] > 0, bench
        assert bench["divergent_reports"] == 0, bench

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60.0)
        log.close()
        log_text = open(log_path, encoding="utf-8").read()
        assert rc == 0, f"fleet exit {rc}:\n{log_text}"
        assert "repro-fleet drained" in log_text, log_text

        if args.keep_bench:
            shutil.copy(bench_path, "bench_fleet_current.json")
        burst = metrics["requests"] + metrics["coalesced"]
        print(f"fleet-smoke ok: {args.workers} workers, "
              f"{metrics['executed']} executions for "
              f"{burst} sharded requests "
              f"(coalesced={metrics['coalesced']}, "
              f"memory={metrics['memory_cache_hits']}), "
              f"{bench['completed']} open-loop requests at goodput "
              f"{bench['goodput_ratio']:.2f}, drain clean")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        if log is not None and not log.closed:
            log.close()
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
