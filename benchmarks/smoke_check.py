"""Failure-safe `make bench-smoke` driver.

Runs a tiny batched sweep twice through the real CLI — a cold run that
must compute every job and a warm rerun that must serve every job from
the on-disk cache with identical aggregate traffic — then round-trips
the ``--emit-metrics`` JSONL through the sweep aggregator.  All scratch
state (cache directory, JSON captures, metrics stream) lives in a
temporary directory and is removed in a ``finally`` block, so an
assertion failure cannot leave ``.bench-smoke-*`` litter behind for the
next run to trip over.

Run as ``python benchmarks/smoke_check.py`` (the Makefile sets
``PYTHONPATH=src``); exits non-zero with the offending payloads printed
on any violated invariant.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

SWEEP_ARGS = [
    "sweep",
    "--algorithm", "ranking",
    "--graph", "gnp:60,0.08",
    "--weights", "uniform:1,20",
    "--seeds", "6",
    "--jobs", "2",
    "--json",
]


def _run_sweep(cache_dir: str, emit_path: str) -> dict:
    cmd = [sys.executable, "-m", "repro", *SWEEP_ARGS,
           "--cache", cache_dir, "--emit-metrics", emit_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise AssertionError(
            f"sweep failed (rc={proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="bench-smoke-")
    try:
        cache = os.path.join(scratch, "cache")
        cold_metrics = os.path.join(scratch, "cold.jsonl")
        warm_metrics = os.path.join(scratch, "warm.jsonl")

        cold = _run_sweep(cache, cold_metrics)
        warm = _run_sweep(cache, warm_metrics)

        assert cold["failed"] == warm["failed"] == 0, (cold, warm)
        assert cold["cached"] == 0, cold
        assert warm["cached"] == warm["jobs"], warm
        assert warm["total_bits"] == cold["total_bits"], (cold, warm)

        # The per-job JSONL stream must aggregate back into the same cell
        # shape the summary reports (PYTHONPATH=src puts repro in reach).
        from repro.obs import aggregate_jsonl

        for path, summary in ((cold_metrics, cold), (warm_metrics, warm)):
            cells = aggregate_jsonl(path)
            assert len(cells) == 1, cells
            (cell,) = cells.values()
            assert cell["jobs"] == summary["jobs"], (cell, summary)
            assert cell["failed"] == 0, cell
            assert cell["p50_rounds"] <= cell["p95_rounds"], cell

        print(f"bench-smoke ok: {warm['jobs']} jobs, warm run fully cached, "
              f"emit-metrics round-trip aggregated")
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
