"""Failure-safe `make service-smoke` driver.

End-to-end exercise of the solver service through the real CLI, the way
CI runs it:

1. start ``repro serve`` as a subprocess on an ephemeral port (parsed
   from its startup banner);
2. check ``GET /v1/health``;
3. ``POST /v1/solve`` one fixed-seed request and assert the returned
   report is byte-identical to ``repro.api.solve`` for the same request;
4. run ``repro loadgen`` (8 concurrent clients, a few seconds) against
   it, which re-certifies every unique report offline and writes the
   latency/throughput document;
5. SIGTERM the server and assert it drains and exits 0.

All scratch state (server cache, logs, the benchmark document) lives in
a temporary directory removed in a ``finally`` block.  The benchmark
document is copied to ``BENCH_service.json`` in the working directory
only when ``--keep-bench`` is passed (CI uploads it as an artifact).

Run as ``python benchmarks/service_smoke.py`` (the Makefile sets
``PYTHONPATH=src``); exits non-zero with diagnostics on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"listening on http://([0-9.]+):(\d+)")


def _start_server(scratch: str):
    log_path = os.path.join(scratch, "serve.log")
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache", os.path.join(scratch, "cache")],
        stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with open(log_path, encoding="utf-8") as fh:
            match = BANNER.search(fh.read())
        if match:
            return proc, log, log_path, match.group(1), int(match.group(2))
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    log.close()
    with open(log_path, encoding="utf-8") as fh:
        raise AssertionError(f"server did not start:\n{fh.read()}")


def _http(host: str, port: int, method: str, path: str,
          body: bytes = b"") -> tuple:
    """One plain-socket HTTP request; returns (status, parsed body)."""
    import socket

    with socket.create_connection((host, port), timeout=30.0) as sock:
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n"
                f"\r\n").encode()
        sock.sendall(head + body)
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(payload) if payload else None


def _check_byte_identity(host: str, port: int) -> None:
    # PYTHONPATH=src puts repro in reach of the driver itself.
    from repro.api import SolveRequest, solve
    from repro.graphs import gnp, uniform_weights

    graph = uniform_weights(gnp(30, 0.12, seed=3), 1, 20, seed=4)
    request = SolveRequest(graph=graph, algorithm="thm2", seed=7,
                           params={"eps": 0.5})
    status, envelope = _http(host, port, "POST", "/v1/solve",
                             request.to_json().encode())
    assert status == 200, (status, envelope)
    wire = json.dumps(envelope["report"], sort_keys=True,
                      separators=(",", ":"))
    direct = solve(graph, "thm2", seed=7, eps=0.5).to_json()
    assert wire == direct, (
        f"HTTP report diverged from repro.api.solve:\n{wire}\n{direct}"
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--duration", type=float, default=5.0,
                        help="loadgen seconds")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--keep-bench", action="store_true",
                        help="copy the benchmark doc to ./BENCH_service.json")
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="service-smoke-")
    proc = log = None
    try:
        proc, log, log_path, host, port = _start_server(scratch)

        status, doc = _http(host, port, "GET", "/v1/health")
        assert status == 200 and doc["status"] == "ok", (status, doc)

        _check_byte_identity(host, port)

        bench_path = os.path.join(scratch, "BENCH_service.json")
        load = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen",
             "--host", host, "--port", str(port),
             "--clients", str(args.clients),
             "--duration", str(args.duration),
             "--out", bench_path],
            capture_output=True, text=True,
        )
        print(load.stdout, end="")
        assert load.returncode == 0, (
            f"loadgen failed (rc={load.returncode}):\n"
            f"{load.stdout}\n{load.stderr}"
        )
        bench = json.loads(open(bench_path, encoding="utf-8").read())
        assert bench["completed"] > 0, bench
        assert bench["served"]["cached"] + bench["served"]["coalesced"] > 0, \
            bench["served"]
        v = bench["verification"]
        assert v["verified"] == bench["unique_reports"] > 0, v

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30.0)
        log.close()
        log_text = open(log_path, encoding="utf-8").read()
        assert rc == 0, f"server exit {rc}:\n{log_text}"
        assert "drained" in log_text, log_text

        if args.keep_bench:
            shutil.copy(bench_path, "BENCH_service.json")
        print(f"service-smoke ok: {bench['completed']} requests at "
              f"{bench['throughput_rps']:.0f} req/s, "
              f"{bench['served']['cached']} cached / "
              f"{bench['served']['coalesced']} coalesced, "
              f"{v['verified']}/{bench['unique_reports']} reports certified, "
              f"drain clean")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        if log is not None and not log.closed:
            log.close()
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
