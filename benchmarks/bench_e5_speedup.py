"""E5 — the headline comparison: Theorem 2 vs Bar-Yehuda et al. [8].

The paper's claim is an exponential round speed-up by dropping the
``log W`` factor (and running MIS on an O(log n)-degree sample).  The
report shows baseline rounds growing ∝ log2 W while Theorem 2 is flat.
"""

import pytest

from repro.bench import experiment_e5_speedup
from repro.core import bar_yehuda_maxis, theorem2_maxis
from repro.graphs import gnp, integer_weights


@pytest.mark.experiment("E5")
def test_e5_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e5_speedup,
        kwargs={"n": 300, "scales": (1, 100, 10_000, 1_000_000)},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["baseline_grows_with_W"]
    assert report.findings["theorem2_flat_in_W"]


@pytest.mark.experiment("E5")
def test_e5_report_batched(benchmark, report_sink, tmp_path):
    """The W-grid through the batch engine with a warm-cache second run:
    findings match the serial path and the rerun is fully memoized."""
    kwargs = {"n": 300, "scales": (1, 100, 10_000, 1_000_000)}
    cache = str(tmp_path / "e5-cache")
    serial = experiment_e5_speedup(**kwargs)
    report = benchmark.pedantic(
        experiment_e5_speedup,
        kwargs={**kwargs, "n_jobs": 2, "cache_dir": cache},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.rows == serial.rows
    assert report.findings == serial.findings
    # Warm rerun: every job must come from the cache, and nothing changes.
    rerun = experiment_e5_speedup(**kwargs, n_jobs=2, cache_dir=cache)
    assert rerun.rows == report.rows


@pytest.fixture(scope="module")
def big_w_graph():
    return integer_weights(gnp(250, 12.0 / 250, seed=1), 10 ** 6, seed=2)


def test_baseline_bar_yehuda(benchmark, big_w_graph):
    result = benchmark(lambda: bar_yehuda_maxis(big_w_graph, seed=3))
    assert result.size > 0


def test_theorem2_same_instance(benchmark, big_w_graph):
    result = benchmark(lambda: theorem2_maxis(big_w_graph, 0.5, seed=3))
    assert result.size > 0
