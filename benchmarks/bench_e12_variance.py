"""E12 — weighted ranking's variance blow-up (the [17] caveat in §1).

This is the repo's flagship seed sweep (2000 ranking trials on one star),
so it doubles as the batch-engine benchmark: the batched driver runs the
same experiment with worker processes and reports the wall-clock speedup
over the serial path.
"""

import os
import time

import pytest

from repro.bench import experiment_e12_ranking_variance
from repro.core import boppana_is
from repro.graphs import star


@pytest.mark.experiment("E12")
def test_e12_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e12_ranking_variance,
        kwargs={"n_leaves": 200, "trials": 2000},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["expectation_met_on_average"]
    assert report.findings["no_concentration"]
    assert report.findings["sparsified_always_ok"]


@pytest.mark.experiment("E12")
def test_e12_report_batched(benchmark, report_sink):
    """Same sweep through the batch engine: identical findings, and the
    parallel wall-clock is reported against a serial reference run."""
    jobs = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    serial = experiment_e12_ranking_variance(n_leaves=200, trials=2000)
    serial_seconds = time.perf_counter() - t0
    report = benchmark.pedantic(
        experiment_e12_ranking_variance,
        kwargs={"n_leaves": 200, "trials": 2000, "n_jobs": jobs},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.rows == serial.rows
    assert report.findings == serial.findings
    batched_seconds = benchmark.stats.stats.mean
    print(f"\nE12 sweep: serial {serial_seconds:.2f}s, "
          f"n_jobs={jobs} {batched_seconds:.2f}s "
          f"(speedup x{serial_seconds / max(batched_seconds, 1e-9):.2f})")


def test_ranking_on_star_throughput(benchmark):
    g = star(300).with_weights({0: 1e6, **{i: 1.0 for i in range(1, 301)}})
    result = benchmark(lambda: boppana_is(g, seed=1))
    assert result.rounds == 1
