"""E12 — weighted ranking's variance blow-up (the [17] caveat in §1)."""

import pytest

from repro.bench import experiment_e12_ranking_variance
from repro.core import boppana_is
from repro.graphs import star


@pytest.mark.experiment("E12")
def test_e12_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e12_ranking_variance,
        kwargs={"n_leaves": 200, "trials": 2000},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["expectation_met_on_average"]
    assert report.findings["no_concentration"]
    assert report.findings["sparsified_always_ok"]


def test_ranking_on_star_throughput(benchmark):
    g = star(300).with_weights({0: 1e6, **{i: 1.0 for i in range(1, 301)}})
    result = benchmark(lambda: boppana_is(g, seed=1))
    assert result.rounds == 1
