"""E8 — Proposition 3: distributional equivalence of Boppana and SeqBoppana."""

import pytest

from repro.bench import experiment_e8_sequential_view
from repro.core import seq_boppana, seq_boppana0
from repro.graphs import gnp


@pytest.mark.experiment("E8")
def test_e8_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e8_sequential_view,
        kwargs={"trials": 4000},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["tv_within_noise"]


def test_seq_boppana_throughput(benchmark):
    g = gnp(400, 0.05, seed=1)
    result = benchmark(lambda: seq_boppana(g, seed=2))
    assert len(result) > 0


def test_seq_boppana0_throughput(benchmark):
    g = gnp(400, 0.05, seed=1)
    result = benchmark(lambda: seq_boppana0(g, seed=2))
    assert len(result) > 0
