#!/usr/bin/env python
"""Perf-gate entry point (thin wrapper over :mod:`repro.bench.perf_gate`).

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py                  # measure
    PYTHONPATH=src python benchmarks/perf_gate.py \
        --baseline BENCH_runner.json --tolerance 1.5               # gate
    PYTHONPATH=src python benchmarks/perf_gate.py --out BENCH_runner.json
                                                                   # rebaseline

Equivalent to ``python -m repro bench`` / ``make bench-perf``; kept next
to the other benchmark drivers so it is discoverable from the
``benchmarks/`` directory.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.perf_gate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
