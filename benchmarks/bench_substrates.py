"""Micro-benchmarks for the substrates (not tied to one experiment).

These track the costs that bound how far the experiment sweeps can scale:
graph generation, the simulator's per-round overhead, the four MIS black
boxes, exact arboricity, and the exact MaxWIS solver.
"""

import pytest

from repro.core import exact_max_weight_is
from repro.graphs import arboricity, gnp, grid_2d, random_regular, uniform_weights
from repro.mis import coloring_mis, ghaffari_mis, local_minima_mis, luby_mis
from repro.primitives import bfs_tree


def test_gnp_generation(benchmark):
    g = benchmark(lambda: gnp(2000, 0.005, seed=1))
    assert g.n == 2000


def test_induced_subgraph(benchmark):
    g = gnp(2000, 0.005, seed=1)
    keep = [v for v in g.nodes if v % 2 == 0]
    h = benchmark(lambda: g.induced_subgraph(keep))
    assert h.n == 1000


@pytest.mark.parametrize("name,fn", [
    ("luby", luby_mis),
    ("ghaffari", ghaffari_mis),
    ("deterministic", local_minima_mis),
    ("coloring", coloring_mis),
])
def test_mis_blackbox(benchmark, name, fn):
    g = gnp(500, 0.02, seed=2)
    res = benchmark(lambda: fn(g, seed=3))
    assert res.size > 0


def test_exact_arboricity(benchmark):
    g = gnp(120, 0.1, seed=4)
    alpha = benchmark(lambda: arboricity(g))
    assert alpha >= 1


def test_exact_maxwis_solver(benchmark):
    g = uniform_weights(gnp(45, 0.15, seed=5), 1, 10, seed=6)
    _, opt = benchmark(lambda: exact_max_weight_is(g))
    assert opt > 0


def test_bfs_convergecast(benchmark):
    g = grid_2d(20, 20)
    res = benchmark(lambda: bfs_tree(g, 0))
    assert res.aggregate == 400.0


def test_simulator_round_overhead(benchmark):
    """One thousand node-rounds of a trivial protocol."""
    from repro.simulator import NodeAlgorithm, run

    class Tick(NodeAlgorithm):
        def on_start(self, ctx):
            ctx.broadcast(1)

        def on_round(self, ctx, inbox):
            if ctx.round_index >= 10:
                ctx.halt(None)
            else:
                ctx.broadcast(1)

    g = random_regular(100, 4, seed=7)
    result = benchmark(lambda: run(g, Tick))
    assert result.metrics.rounds == 10


def test_weighted_greedy_adversarial_chain(benchmark):
    """The Θ(n)-round instance for heaviest-first greedy."""
    from repro.core import greedy_chain_graph, weighted_greedy_maxis

    chain = greedy_chain_graph(300)
    res = benchmark(lambda: weighted_greedy_maxis(chain))
    assert res.rounds >= 300


def test_theorem2_on_greedy_chain(benchmark):
    """Theorem 2 on the same chain: rounds stay logarithmic-ish."""
    from repro.core import greedy_chain_graph, theorem2_maxis

    chain = greedy_chain_graph(300)
    res = benchmark(lambda: theorem2_maxis(chain, 0.5, seed=1))
    assert res.rounds < 150
