"""E6 — Theorem 3: the arboricity algorithm vs the Δ-based pipeline."""

import pytest

from repro.bench import experiment_e6_arboricity
from repro.core import low_arboricity_maxis
from repro.graphs import caterpillar, uniform_weights


@pytest.mark.experiment("E6")
def test_e6_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e6_arboricity,
        kwargs={"hub_degrees": (20, 40, 80), "n": 300},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["arboricity_algorithm_nontrivial"]
    # On every row with 8(1+ε)α < (1+ε)Δ the guarantee winner is arboricity.
    for row in report.rows:
        if row["factor_arb"] < row["factor_delta"]:
            assert row["guarantee_winner"] == "arboricity"


def test_arboricity_pipeline_on_caterpillar(benchmark):
    g = uniform_weights(caterpillar(40, 12), 1, 20, seed=1)
    result = benchmark(lambda: low_arboricity_maxis(g, 0.5, alpha=1, seed=2))
    assert result.weight(g) > 0
