"""E9 — Theorem 4 / Figure 1: the cycle-of-cliques RandMIS reduction.

Regenerates the paper's only figure as numbers: gaps on the cycle of
cliques stay small (so the sequential fill is cheap), while plain ranking
on the bare cycle leaves gaps that grow with n0.
"""

import pytest

from repro.bench import experiment_e9_lower_bound
from repro.core import boppana_is
from repro.graphs import cycle_of_cliques
from repro.lowerbound import rand_mis


@pytest.mark.experiment("E9")
def test_e9_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e9_lower_bound,
        kwargs={"cycle_sizes": (20, 40, 80)},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["all_reductions_correct"]


def test_cycle_of_cliques_construction(benchmark):
    instance = benchmark(lambda: cycle_of_cliques(40, 40))
    assert instance.graph.n == 1600


def test_rand_mis_reduction(benchmark):
    outcome = benchmark(
        lambda: rand_mis(30, lambda g, seed=None: boppana_is(g, seed=seed), seed=1)
    )
    assert outcome.effective_rounds >= 1
