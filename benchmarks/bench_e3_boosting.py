"""E3 — Theorem 10 + Proposition 2: local-ratio boosting."""

import pytest

from repro.bench import experiment_e3_boosting
from repro.core import theorem1_maxis
from repro.graphs import gnp, uniform_weights


@pytest.mark.experiment("E3")
def test_e3_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e3_boosting,
        kwargs={"n": 150, "eps_values": (2.0, 1.0, 0.5, 0.25)},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["stack_property_holds"]
    assert report.findings["remark_bound_holds"]


@pytest.mark.parametrize("eps", [1.0, 0.25])
def test_boosted_pipeline(benchmark, eps):
    g = uniform_weights(gnp(150, 10.0 / 150, seed=1), 1, 50, seed=2)
    result = benchmark(lambda: theorem1_maxis(g, eps, mis="luby", seed=3))
    assert result.weight(g) >= g.total_weight() / ((1 + eps) * (g.max_degree + 1))
