"""Failure-safe `make delta-smoke` driver.

End-to-end exercise of the delta plane against an in-process
:class:`~repro.service.SolverEngine` (memory cache on — the tier the
incremental path derives from), the way a warm worker serves it:

1. build the 10^5-node cell, register it, and run the parent's full
   solve once so its report sits in the memory tier;
2. **byte identity**: a weight-only delta-form solve must be served
   incrementally (``solve_mode == "incremental"``) and its report must
   be byte-identical to ``repro.api.solve`` of the equivalent
   from-scratch child — the acceptance pin;
3. measure the re-solve cells at <= 1% edit distance: per epoch, a
   fresh weight-only edit script is (a) applied and re-solved in full
   through the engine (register child, solve by ref — what a
   delta-unaware service would do on every mutation) and (b) submitted
   as a delta-form request served from the parent's cached report; the
   incremental path must be at least ``--min-speedup`` (default 3x)
   faster on the p50;
4. sanity: a topology edit falls back to the full path
   (``solve_mode == "full"``), so the speedup never comes at the cost
   of soundness.

All scratch state (graph store, result cache, the measured document)
lives in a temporary directory removed in a ``finally`` block.  The
document is copied to ``BENCH_delta.json`` in the working directory
only when ``--keep-bench`` is passed (CI uploads it as an artifact next
to the committed baseline).

Run as ``python benchmarks/delta_smoke.py`` (the Makefile sets
``PYTHONPATH=src``); exits non-zero with diagnostics on any violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path


def _summary(samples):
    return {
        "p50_s": statistics.median(samples),
        "mean_s": statistics.fmean(samples),
        "min_s": min(samples),
        "max_s": max(samples),
    }


def _edit_script(graph, rng, n_ops):
    """A weight-only edit script touching ``n_ops`` distinct nodes."""
    nodes = rng.sample(list(graph.nodes), n_ops)
    return [["set_weight", v, float(rng.randint(1, 50))]
            for v in nodes]


async def _run_cell(args, scratch):
    from repro.api import SolveRequest, solve
    from repro.graphs import gnp, uniform_weights
    from repro.graphs.delta import GraphDelta, apply_delta
    from repro.service import SolverEngine

    n, p = args.nodes, args.degree / args.nodes
    print(f"[delta-smoke] building gnp({n}, {p:g}) ...", flush=True)
    parent = uniform_weights(gnp(n, p, seed=11), 1, 20, seed=12)
    n_ops = max(1, int(n * args.edit_distance))
    print(f"[delta-smoke] n={parent.n} m={parent.m} "
          f"edit_ops={n_ops} ({100 * args.edit_distance:.2g}% of nodes)",
          flush=True)

    engine = SolverEngine(workers=2, memory_cache=64,
                          cache_dir=str(Path(scratch) / "cache"),
                          graph_store=str(Path(scratch) / "graphs"),
                          backend=args.backend)
    await engine.start()
    try:
        store = engine.graph_store
        parent_ref = store.put(parent)

        def request_for(graph_doc):
            return SolveRequest.from_doc(
                {"schema": "v2", "graph": graph_doc,
                 "algorithm": args.algorithm, "seed": args.seed},
                store=store)

        # -- 1. warm the parent's report into the memory tier --------- #
        t0 = time.perf_counter()
        warm = await engine.submit(request_for({"ref": parent_ref.ref}))
        warm_s = time.perf_counter() - t0
        assert warm.report.ok, warm.report.error
        print(f"[delta-smoke] parent full solve: {warm_s:.3f}s "
              f"(|IS|={len(warm.report.independent_set)})", flush=True)

        # -- 2. byte identity: incremental == from-scratch ------------ #
        rng = random.Random(args.seed)
        ops = _edit_script(parent, rng, n_ops)
        child = apply_delta(parent, GraphDelta.of(ops))
        served = await engine.submit(request_for(
            {"delta": {"parent": parent_ref.ref, "ops": ops}}))
        if served.solve_mode != "incremental":
            raise AssertionError(
                f"weight-only delta took mode {served.solve_mode!r}, "
                "expected incremental (is the memory cache on?)")
        local = solve(child, args.algorithm, seed=args.seed,
                      backend=args.backend)
        if served.report.to_json() != local.to_json():
            raise AssertionError(
                "incremental report is not byte-identical to the "
                "from-scratch solve of the equivalent child")
        print("[delta-smoke] byte identity: incremental == from-scratch "
              f"(dirty_frontier={served.dirty_frontier})", flush=True)

        # -- 3. the re-solve cells ------------------------------------ #
        full_s, inc_s, frontiers = [], [], []
        for epoch in range(args.epochs):
            # Full path: what a delta-unaware service pays per edit —
            # register the edited graph, re-solve it from scratch.
            # Distinct scripts per epoch so nothing cache-hits.
            ops_full = _edit_script(parent, rng, n_ops)
            t0 = time.perf_counter()
            child_ref = store.put_delta(parent_ref.ref,
                                        GraphDelta.of(ops_full))
            out = await engine.submit(request_for({"ref": child_ref.ref}))
            full_s.append(time.perf_counter() - t0)
            assert out.report.ok and out.solve_mode == ""

            # Incremental path: the same class of edit, delta-form.
            ops_inc = _edit_script(parent, rng, n_ops)
            t0 = time.perf_counter()
            out = await engine.submit(request_for(
                {"delta": {"parent": parent_ref.ref, "ops": ops_inc}}))
            inc_s.append(time.perf_counter() - t0)
            assert out.report.ok and out.solve_mode == "incremental"
            frontiers.append(out.dirty_frontier)
            print(f"[delta-smoke] epoch {epoch}: full={full_s[-1]:.3f}s "
                  f"incremental={inc_s[-1]:.4f}s", flush=True)

        # -- 4. topology edits stay sound ----------------------------- #
        u = parent.nodes[0]
        v = next(w for w in parent.nodes
                 if w != u and w not in parent.neighbors(u))
        out = await engine.submit(request_for(
            {"delta": {"parent": parent_ref.ref,
                       "ops": [["add_edge", u, v]]}}))
        assert out.solve_mode == "full", (
            f"topology edit served as {out.solve_mode!r}")
        print("[delta-smoke] topology edit fell back to the full path",
              flush=True)

        speedup = statistics.median(full_s) / statistics.median(inc_s)
        snapshot = engine.metrics_snapshot()
        return {
            "schema": "v1",
            "kind": "delta_smoke",
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "config": {
                "n": parent.n,
                "m": parent.m,
                "algorithm": args.algorithm,
                "backend": args.backend,
                "seed": args.seed,
                "epochs": args.epochs,
                "edit_ops": n_ops,
                "edit_distance": args.edit_distance,
                "min_speedup": args.min_speedup,
            },
            "parent_full_solve_s": warm_s,
            "full": _summary(full_s),
            "incremental": _summary(inc_s),
            "speedup_p50": speedup,
            "dirty_frontier": {
                "min": min(frontiers),
                "max": max(frontiers),
                "mean": statistics.fmean(frontiers),
            },
            "incremental_served": snapshot["incremental_served"],
            "incremental_fallback": snapshot["incremental_fallback"],
            "byte_identical": True,
        }
    finally:
        await engine.aclose()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=100_000,
                        help="cell size (default: the 10^5-node cell)")
    parser.add_argument("--degree", type=float, default=6.0,
                        help="expected average degree of the gnp cell")
    parser.add_argument("--edit-distance", type=float, default=0.01,
                        help="fraction of nodes each edit script touches")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--algorithm", default="mis-luby",
                        help="must be weight-oblivious for the "
                        "incremental path")
    parser.add_argument("--backend", default="columnar")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--keep-bench", action="store_true",
                        help="copy the measured document to "
                        "BENCH_delta.json in the working directory")
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="delta_smoke_")
    try:
        doc = asyncio.run(_run_cell(args, scratch))
        out_path = Path(scratch) / "BENCH_delta.json"
        out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
        print(f"[delta-smoke] speedup p50: {doc['speedup_p50']:.1f}x "
              f"(full {doc['full']['p50_s']:.3f}s vs incremental "
              f"{doc['incremental']['p50_s']:.4f}s)", flush=True)
        if args.keep_bench:
            shutil.copy(out_path, "BENCH_delta.json")
            print("[delta-smoke] wrote BENCH_delta.json", flush=True)
        if doc["speedup_p50"] < args.min_speedup:
            print(f"[delta-smoke] FAIL: speedup {doc['speedup_p50']:.2f}x "
                  f"< required {args.min_speedup}x", file=sys.stderr)
            return 1
        print("[delta-smoke] OK", flush=True)
        return 0
    except AssertionError as exc:
        print(f"[delta-smoke] FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
