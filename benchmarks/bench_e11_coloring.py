"""E11 — §8 / Open Question 2: colouring-based MaxIS pays Ω(D) rounds."""

import pytest

from repro.bench import experiment_e11_coloring_diameter
from repro.coloring import distributed_color_class_maxis, greedy_coloring, random_coloring
from repro.graphs import grid_2d, uniform_weights


@pytest.mark.experiment("E11")
def test_e11_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e11_coloring_diameter,
        kwargs={"lengths": (20, 40, 80)},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["coloring_rounds_grow_with_diameter"]
    assert report.findings["theorem2_diameter_independent"]


def test_random_coloring_throughput(benchmark):
    g = grid_2d(10, 30)
    res = benchmark(lambda: random_coloring(g, seed=1))
    assert res.num_colors <= g.max_degree + 1


def test_color_class_selection_throughput(benchmark):
    g = uniform_weights(grid_2d(2, 50), 1, 9, seed=2)
    colors = greedy_coloring(g)
    res = benchmark(lambda: distributed_color_class_maxis(g, colors))
    assert res.weight(g) > 0
