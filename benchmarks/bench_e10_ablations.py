"""E10 — ablations of the paper's design choices (DESIGN.md §3)."""

import pytest

from repro.bench import experiment_e10_ablations
from repro.core import good_nodes_approx
from repro.graphs import gnp, uniform_weights


@pytest.mark.experiment("E10")
def test_e10_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e10_ablations,
        kwargs={"n": 300},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["weight_term_needed"]


@pytest.mark.parametrize("mis_name", ["luby", "ghaffari", "deterministic"])
def test_mis_blackbox_swap(benchmark, mis_name):
    g = uniform_weights(gnp(200, 0.05, seed=1), 1, 20, seed=2)
    result = benchmark(lambda: good_nodes_approx(g, mis=mis_name, seed=3))
    assert result.weight(g) >= g.total_weight() / (4 * (g.max_degree + 1))
