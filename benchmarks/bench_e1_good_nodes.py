"""E1 — Theorem 8: the good-nodes O(Δ)-approximation.

Regenerates the w(I) >= w(V)/(4(Δ+1)) table across sizes and weight
schemes, and micro-benchmarks one good-nodes run.
"""

import pytest

from repro.bench import experiment_e1_good_nodes
from repro.core import good_nodes_approx
from repro.graphs import gnp, uniform_weights


@pytest.mark.experiment("E1")
def test_e1_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e1_good_nodes,
        kwargs={"sizes": (100, 200, 400), "trials": 3},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["bound_always_holds"]


def test_good_nodes_single_run(benchmark):
    g = uniform_weights(gnp(300, 8.0 / 300, seed=1), 1, 100, seed=2)
    result = benchmark(lambda: good_nodes_approx(g, seed=3))
    assert result.weight(g) >= g.total_weight() / (4 * (g.max_degree + 1))
