"""E7 — Theorems 5/11: the ranking algorithm and its boosted form."""

import pytest

from repro.bench import experiment_e7_ranking
from repro.core import boppana_is, low_degree_maxis
from repro.graphs import random_regular


@pytest.mark.experiment("E7")
def test_e7_report(benchmark, report_sink):
    report = benchmark.pedantic(
        experiment_e7_ranking,
        kwargs={"n": 600, "degrees": (4, 8, 16), "trials": 10},
        iterations=1,
        rounds=1,
    )
    report_sink(report)
    assert report.findings["boosted_bound_holds"]


def test_one_round_ranking(benchmark):
    g = random_regular(1000, 8, seed=1)
    result = benchmark(lambda: boppana_is(g, seed=2))
    assert result.rounds == 1


def test_boosted_theorem5(benchmark):
    g = random_regular(600, 6, seed=3)
    result = benchmark(lambda: low_degree_maxis(g, 0.5, seed=4))
    assert result.size >= 600 / (1.5 * 7)
