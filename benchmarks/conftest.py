"""Shared fixtures for the benchmark suite.

Each ``bench_eN_*.py`` regenerates one experiment from DESIGN.md §3 (the
paper has no tables of its own — E1–E13 are the theorem-by-theorem
measurement suite).  Reports are printed so ``pytest benchmarks/
--benchmark-only -s`` doubles as the EXPERIMENTS.md regeneration tool.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(name): marks a benchmark as regenerating one experiment"
    )


@pytest.fixture
def report_sink(capsys):
    """Print an ExperimentReport outside of captured output."""

    def _print(report):
        with capsys.disabled():
            print()
            print(report.render())

    return _print
