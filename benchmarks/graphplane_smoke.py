"""Failure-safe `make graphplane-smoke` driver.

End-to-end exercise of the zero-copy graph plane through the real CLI,
the way CI runs it:

1. start ``repro serve --graph-store`` on an ephemeral port (parsed
   from its startup banner);
2. ``POST /v1/graphs`` a binary graph blob and assert the returned ref
   is the graph's fingerprint; describe it back header-only;
3. **byte identity**: solve the same request once with the graph in the
   body and once as a ``graph_ref``, and assert both envelope reports
   are identical to each other and to ``repro.api.solve``;
4. measure the ingest-once-solve-many cells (10^4- and 10^5-node
   graphs): fresh solves (distinct seeds) over one registered graph
   through the multi-MB-body path vs the ~200-byte ref path — the body
   path re-pays JSON graph parsing and worker-pool graph pickling on
   every request, the ref path attaches the shared CSR arena once —
   plus cached-repeat latencies and in-process JSON-parse vs
   store-attach timings; assert the ref path is at least
   ``--min-speedup`` (default 5x) faster on the 10^5 fresh-solve cell;
5. evict the ref and assert a subsequent ref solve 404s;
6. SIGTERM the server, assert a clean drain, and assert its shm arena
   segments are gone from ``/dev/shm``;
7. crash-reclaim: boot a second server, register a graph, ``SIGKILL``
   it, and assert the resource tracker unlinks the orphaned segment.

All scratch state (server cache, graph store, logs, the benchmark
document) lives in a temporary directory removed in a ``finally``
block.  The measured document is copied to ``BENCH_graphplane.json`` in
the working directory only when ``--keep-bench`` is passed (CI uploads
it as an artifact next to the committed baseline).

Run as ``python benchmarks/graphplane_smoke.py`` (the Makefile sets
``PYTHONPATH=src``); exits non-zero with diagnostics on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"repro-serve listening on http://([0-9.]+):(\d+)")


def _start_server(scratch: str, tag: str = "serve"):
    log_path = os.path.join(scratch, f"{tag}.log")
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--memory-cache", "256",
         "--cache", os.path.join(scratch, f"cache-{tag}"),
         "--graph-store", os.path.join(scratch, f"graphs-{tag}")],
        stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        with open(log_path, encoding="utf-8") as fh:
            match = BANNER.search(fh.read())
        if match:
            return proc, log, log_path, match.group(1), int(match.group(2))
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    log.close()
    with open(log_path, encoding="utf-8") as fh:
        raise AssertionError(f"server did not start:\n{fh.read()}")


def _http(host: str, port: int, method: str, path: str,
          body: bytes = b"") -> tuple:
    """One plain-socket HTTP request; returns (status, parsed body)."""
    import socket

    with socket.create_connection((host, port), timeout=120.0) as sock:
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n"
                f"\r\n").encode()
        sock.sendall(head + body)
        raw = b""
        while True:
            chunk = sock.recv(1 << 20)
            if not chunk:
                break
            raw += chunk
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(payload) if payload else None


def _shm_path(fingerprint: str) -> str:
    from repro.graphs.store import shm_segment_name

    return os.path.join("/dev/shm", shm_segment_name(fingerprint))


# --------------------------------------------------------------------- #
# smoke: registration, byte identity, eviction
# --------------------------------------------------------------------- #

def _check_registry_and_byte_identity(host: str, port: int) -> str:
    from repro.api import SolveRequest, solve
    from repro.graphs import gnp, uniform_weights
    from repro.graphs import io as graph_io

    graph = uniform_weights(gnp(30, 0.12, seed=5), 1, 20, seed=6)
    fp = graph.fingerprint()

    status, reg = _http(host, port, "POST", "/v1/graphs",
                        graph_io.to_bytes(graph))
    assert status == 200, (status, reg)
    assert reg["graph_ref"] == fp, reg
    assert reg["n"] == graph.n and reg["m"] == graph.m, reg

    status, info = _http(host, port, "GET", f"/v1/graphs/{fp}")
    assert status == 200 and info["n"] == graph.n, (status, info)

    body_doc = SolveRequest(graph=graph, algorithm="thm2", seed=7,
                            params={"eps": 0.5}).to_doc()
    ref_doc = dict(body_doc)
    ref_doc["graph"] = {"graph_ref": fp}

    s1, env1 = _http(host, port, "POST", "/v1/solve",
                     json.dumps(body_doc).encode())
    s2, env2 = _http(host, port, "POST", "/v1/solve",
                     json.dumps(ref_doc).encode())
    assert s1 == s2 == 200, (s1, s2, env1, env2)
    assert env1["report"] == env2["report"], (
        "graph_ref solve diverged from body solve:\n"
        f"{env1['report']}\n{env2['report']}")
    wire = json.dumps(env1["report"], sort_keys=True, separators=(",", ":"))
    direct = solve(graph, "thm2", seed=7, eps=0.5).to_json()
    assert wire == direct, (
        f"served report diverged from repro.api.solve:\n{wire}\n{direct}")

    status, out = _http(host, port, "DELETE", f"/v1/graphs/{fp}")
    assert status == 200 and out["evicted"] is True, (status, out)
    status, err = _http(host, port, "POST", "/v1/solve",
                        json.dumps(ref_doc).encode())
    assert status == 404, (
        f"evicted ref still solvable (status {status}): {err}")
    return fp


# --------------------------------------------------------------------- #
# measured cells: ingest-once-solve-many vs solve-with-body
# --------------------------------------------------------------------- #

def _build_cell_graph(n: int):
    from repro.graphs import random_tree, uniform_weights

    return uniform_weights(random_tree(n, seed=1), 1, 100, seed=2)


def _percentiles(samples: list) -> dict:
    ordered = sorted(samples)
    return {
        "p50_s": statistics.median(ordered),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "mean_s": statistics.fmean(ordered),
    }


def _solve_docs(graph, fp: str, seed: int):
    from repro.api import SolveRequest

    body_doc = SolveRequest(graph=graph, algorithm="mis-det", seed=seed,
                            backend="columnar").to_doc()
    ref_doc = dict(body_doc)
    ref_doc["graph"] = {"graph_ref": fp}
    return json.dumps(body_doc).encode(), json.dumps(ref_doc).encode()


def _measure_cell(host: str, port: int, n: int, repeats: int) -> dict:
    """One ingest-once-solve-many cell for an ``n``-node graph.

    The gated scenario is *fresh* solves: ``repeats`` requests with
    distinct seeds against the same graph.  The body path ships and
    re-parses the multi-MB JSON graph and re-pickles it to the worker
    pool on every request; the ref path ships a ~200-byte envelope and
    attaches the shared CSR arena once.  (Disjoint seed ranges keep the
    two paths from warming each other's report cache — same seed means
    same request key on both paths, by design.)

    Cached repeats of one request are also recorded for context — there
    the identical response envelope dominates both paths, so the
    graph-plane win is smaller.  The cold ref solve's stage breakdown
    (``graph_attach`` vs ``solve``) is recorded from the served
    envelope.
    """
    from repro.graphs import io as graph_io

    graph = _build_cell_graph(n)
    fp = graph.fingerprint()
    blob_bytes = graph_io.to_bytes(graph)
    body, ref_body = _solve_docs(graph, fp, seed=7)

    t0 = time.perf_counter()
    status, reg = _http(host, port, "POST", "/v1/graphs", blob_bytes)
    ingest_s = time.perf_counter() - t0
    assert status == 200 and reg["graph_ref"] == fp, (status, reg)

    t0 = time.perf_counter()
    status, cold_env = _http(host, port, "POST", "/v1/solve", ref_body)
    cold_ref_s = time.perf_counter() - t0
    assert status == 200, (status, cold_env)

    t0 = time.perf_counter()
    status, warm_env = _http(host, port, "POST", "/v1/solve", body)
    warm_body_s = time.perf_counter() - t0
    assert status == 200, (status, warm_env)
    assert warm_env["report"] == cold_env["report"], (
        f"body/ref reports diverged on the {n}-node cell")
    assert warm_env["served"]["cached"], warm_env["served"]

    # Fresh solves: every request has a previously unseen seed, so every
    # request executes the solver — what differs between the paths is
    # purely how the graph reaches it.
    fresh_body, fresh_ref = [], []
    for i in range(repeats):
        fresh, _ = _solve_docs(graph, fp, seed=100 + i)
        t0 = time.perf_counter()
        status, env = _http(host, port, "POST", "/v1/solve", fresh)
        fresh_body.append(time.perf_counter() - t0)
        assert status == 200 and not env["served"]["cached"], env["served"]
    for i in range(repeats):
        _, fresh = _solve_docs(graph, fp, seed=200 + i)
        t0 = time.perf_counter()
        status, env = _http(host, port, "POST", "/v1/solve", fresh)
        fresh_ref.append(time.perf_counter() - t0)
        assert status == 200 and not env["served"]["cached"], env["served"]

    # Cached repeats of one request (context, not gated): both paths are
    # memory-cache hits and return the same response envelope.
    cached_body, cached_ref = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        status, env = _http(host, port, "POST", "/v1/solve", body)
        cached_body.append(time.perf_counter() - t0)
        assert status == 200 and env["served"]["cached"], env["served"]
        t0 = time.perf_counter()
        status, env = _http(host, port, "POST", "/v1/solve", ref_body)
        cached_ref.append(time.perf_counter() - t0)
        assert status == 200 and env["served"]["cached"], env["served"]

    # In-process companion numbers: rebuilding the graph from its JSON
    # document (what every body solve used to pay) vs attaching the CSR
    # arrays zero-copy from a fresh store over the same root (mmap path;
    # the store's own shm segments would register in this process's
    # resource tracker and warn at exit).
    t0 = time.perf_counter()
    rebuilt = graph_io.from_doc(json.loads(body)["graph"])
    parse_s = time.perf_counter() - t0
    assert rebuilt.fingerprint() == fp

    from repro.graphs.store import GraphStore

    store_root = tempfile.mkdtemp(prefix="graphplane-cell-")
    try:
        with GraphStore(store_root, use_shm=False) as writer:
            writer.put(graph)
        with GraphStore(store_root, use_shm=False) as reader:
            t0 = time.perf_counter()
            attached = reader.attach(fp)
            attach_s = time.perf_counter() - t0
            assert attached.fingerprint() == fp
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    fresh_body_stats = _percentiles(fresh_body)
    fresh_ref_stats = _percentiles(fresh_ref)
    return {
        "n": graph.n,
        "m": graph.m,
        "body_bytes": len(body),
        "ref_bytes": len(ref_body),
        "blob_bytes": len(blob_bytes),
        "ingest_s": ingest_s,
        "cold_ref_solve_s": cold_ref_s,
        "cold_ref_stages": cold_env["served"].get("stages", {}),
        "warm_body_first_s": warm_body_s,
        "repeats": repeats,
        "fresh_body": fresh_body_stats,
        "fresh_ref": fresh_ref_stats,
        "speedup_p50": (fresh_body_stats["p50_s"]
                        / max(fresh_ref_stats["p50_s"], 1e-9)),
        "cached_body": _percentiles(cached_body),
        "cached_ref": _percentiles(cached_ref),
        "inprocess": {
            "json_parse_s": parse_s,
            "store_attach_s": attach_s,
            "speedup": parse_s / max(attach_s, 1e-9),
        },
    }


# --------------------------------------------------------------------- #
# crash reclaim
# --------------------------------------------------------------------- #

def _check_crash_reclaims_arena(scratch: str) -> bool:
    """SIGKILL a server mid-flight; its shm segments must still vanish
    (the stdlib resource tracker outlives the process and unlinks what
    the dead store owned).  Returns False when /dev/shm is unavailable
    (mmap-only platforms have nothing to leak)."""
    if not os.path.isdir("/dev/shm"):
        return False
    from repro.graphs import gnp, uniform_weights
    from repro.graphs import io as graph_io

    graph = uniform_weights(gnp(24, 0.2, seed=8), 1, 9, seed=9)
    proc, log, log_path, host, port = _start_server(scratch, tag="crash")
    try:
        status, reg = _http(host, port, "POST", "/v1/graphs",
                            graph_io.to_bytes(graph))
        assert status == 200, (status, reg)
        seg = _shm_path(graph.fingerprint())
        assert os.path.exists(seg), f"no arena segment exported at {seg}"
    finally:
        proc.kill()
        proc.wait(timeout=10.0)
        log.close()
    deadline = time.monotonic() + 15.0
    seg = _shm_path(graph.fingerprint())
    while time.monotonic() < deadline:
        if not os.path.exists(seg):
            return True
        time.sleep(0.2)
    raise AssertionError(
        f"arena segment {seg} leaked after SIGKILL (resource tracker "
        f"did not reclaim it); server log:\n"
        + open(log_path, encoding="utf-8").read())


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=10,
                        help="measured solves per path per cell")
    parser.add_argument("--cells", default="10000,100000",
                        help="comma-separated node counts")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required ref-vs-body repeat speedup on the "
                             "largest cell")
    parser.add_argument("--keep-bench", action="store_true",
                        help="copy the bench doc to ./BENCH_graphplane.json")
    args = parser.parse_args()
    cells = [int(x) for x in args.cells.split(",") if x]

    scratch = tempfile.mkdtemp(prefix="graphplane-smoke-")
    proc = log = None
    try:
        proc, log, log_path, host, port = _start_server(scratch)

        status, doc = _http(host, port, "GET", "/v1/health")
        assert status == 200 and doc["status"] == "ok", (status, doc)

        smoke_fp = _check_registry_and_byte_identity(host, port)
        print("graph plane smoke ok: register/describe/solve-by-ref/"
              "evict byte-identical", flush=True)

        measured = []
        for n in cells:
            cell = _measure_cell(host, port, n, args.repeats)
            measured.append(cell)
            print(f"cell n={cell['n']}: ingest {cell['ingest_s'] * 1e3:.1f} ms "
                  f"({cell['blob_bytes']} B blob), fresh-solve p50 "
                  f"body {cell['fresh_body']['p50_s'] * 1e3:.1f} ms "
                  f"({cell['body_bytes']} B) vs ref "
                  f"{cell['fresh_ref']['p50_s'] * 1e3:.1f} ms "
                  f"({cell['ref_bytes']} B) -> {cell['speedup_p50']:.1f}x; "
                  f"cached p50 {cell['cached_body']['p50_s'] * 1e3:.2f} vs "
                  f"{cell['cached_ref']['p50_s'] * 1e3:.2f} ms; "
                  f"in-process parse {cell['inprocess']['json_parse_s'] * 1e3:.0f} ms "
                  f"vs attach {cell['inprocess']['store_attach_s'] * 1e3:.2f} ms",
                  flush=True)
        gate = measured[-1]
        assert gate["speedup_p50"] >= args.min_speedup, (
            f"ref path only {gate['speedup_p50']:.2f}x faster than body "
            f"path on the {gate['n']}-node cell "
            f"(required {args.min_speedup:.1f}x): {gate}")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60.0)
        log.close()
        log_text = open(log_path, encoding="utf-8").read()
        assert rc == 0, f"server exit {rc}:\n{log_text}"
        assert "repro-serve drained" in log_text, log_text
        if os.path.isdir("/dev/shm"):
            for cell in measured:
                graph = _build_cell_graph(cell["n"])
                seg = _shm_path(graph.fingerprint())
                assert not os.path.exists(seg), (
                    f"arena segment {seg} leaked after drain")
            assert not os.path.exists(_shm_path(smoke_fp)), (
                "smoke graph arena segment leaked after drain")

        crash_checked = _check_crash_reclaims_arena(scratch)
        if crash_checked:
            print("crash reclaim ok: SIGKILLed server's arena segments "
                  "unlinked by the resource tracker", flush=True)

        bench = {
            "schema": "v1",
            "kind": "graphplane",
            "config": {
                "cells": cells,
                "repeats": args.repeats,
                "min_speedup": args.min_speedup,
                "algorithm": "mis-det",
                "backend": "columnar",
            },
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "cells": measured,
            "drain_clean": True,
            "crash_reclaim_checked": crash_checked,
        }
        bench_path = os.path.join(scratch, "bench_graphplane.json")
        with open(bench_path, "w", encoding="utf-8") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if args.keep_bench:
            shutil.copy(bench_path, "BENCH_graphplane.json")
        print(f"graphplane-smoke ok: {len(measured)} cells, largest "
              f"{gate['n']} nodes at {gate['speedup_p50']:.1f}x ref-vs-body "
              f"repeat speedup, drain clean", flush=True)
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        if log is not None and not log.closed:
            log.close()
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
