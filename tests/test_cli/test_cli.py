"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_graph_spec, parse_weight_spec
from repro.graphs import WeightedGraph


class TestGraphSpecs:
    def test_gnp(self):
        g = parse_graph_spec("gnp:50,0.1", seed=1)
        assert g.n == 50

    def test_regular(self):
        g = parse_graph_spec("regular:20,4", seed=1)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_tree(self):
        g = parse_graph_spec("tree:30", seed=1)
        assert g.m == 29

    def test_grid(self):
        assert parse_graph_spec("grid:3,4", seed=None).n == 12

    def test_cycle_and_path(self):
        assert parse_graph_spec("cycle:7", seed=None).m == 7
        assert parse_graph_spec("path:7", seed=None).m == 6

    def test_geometric(self):
        assert parse_graph_spec("geometric:40,0.2", seed=2).n == 40

    def test_caterpillar(self):
        assert parse_graph_spec("caterpillar:5,2", seed=None).n == 15

    def test_file(self, tmp_path):
        from repro.graphs import gnp
        from repro.graphs.io import save

        g = gnp(10, 0.3, seed=3)
        p = tmp_path / "g.wg"
        save(g, p)
        assert parse_graph_spec(f"file:{p}", seed=None) == g

    def test_unknown_kind(self):
        with pytest.raises(SystemExit, match="unknown graph kind"):
            parse_graph_spec("torus:3", seed=None)

    def test_bad_args(self):
        with pytest.raises(SystemExit, match="bad graph spec"):
            parse_graph_spec("gnp:abc", seed=None)


class TestWeightSpecs:
    @pytest.fixture
    def g(self) -> WeightedGraph:
        return parse_graph_spec("cycle:20", seed=None)

    def test_unit(self, g):
        assert parse_weight_spec("unit", g, seed=1).total_weight() == 20

    def test_uniform(self, g):
        w = parse_weight_spec("uniform:5,6", g, seed=1)
        assert all(5 <= w.weight(v) < 6 for v in w.nodes)

    def test_integers(self, g):
        w = parse_weight_spec("integers:9", g, seed=1)
        assert all(1 <= w.weight(v) <= 9 for v in w.nodes)

    def test_skewed(self, g):
        w = parse_weight_spec("skewed:0.1,100", g, seed=1)
        assert w.max_weight() == 100

    def test_degree(self, g):
        w = parse_weight_spec("degree", g, seed=None)
        assert all(w.weight(v) == 3.0 for v in w.nodes)

    def test_keep(self, g):
        assert parse_weight_spec("keep", g, seed=None) is g

    def test_unknown(self, g):
        with pytest.raises(SystemExit, match="unknown weight scheme"):
            parse_weight_spec("zipf", g, seed=None)


class TestCommands:
    def test_run_text_output(self, capsys):
        rc = main(["run", "--algorithm", "thm8", "--graph", "gnp:60,0.1",
                   "--weights", "uniform:1,10", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds:" in out
        assert "independent_set_weight:" in out

    def test_run_json_output(self, capsys):
        rc = main(["run", "--algorithm", "ranking", "--graph", "cycle:15",
                   "--weights", "unit", "--json", "--show-set"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "ranking"
        assert payload["rounds"] == 1
        assert isinstance(payload["independent_set"], list)

    @pytest.mark.parametrize("algo", ["thm1", "thm2", "thm9", "bar-yehuda",
                                      "mis-luby", "mis-det"])
    def test_run_all_algorithms(self, capsys, algo):
        rc = main(["run", "--algorithm", algo, "--graph", "gnp:40,0.1",
                   "--weights", "integers:50", "--seed", "5", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["independent_set_size"] >= 1

    def test_info(self, capsys):
        rc = main(["info", "--graph", "grid:4,5", "--weights", "unit"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n: 20" in out
        assert "arboricity: 2" in out

    def test_info_skips_arboricity_when_large(self, capsys):
        rc = main(["info", "--graph", "grid:4,5", "--arboricity-limit", "5"])
        assert rc == 0
        assert "arboricity" not in capsys.readouterr().out

    def test_experiments_unknown_name(self):
        with pytest.raises(SystemExit, match="unknown experiments"):
            main(["experiments", "E99"])

    def test_experiments_named(self, capsys):
        rc = main(["experiments", "E3"])
        assert rc == 0
        assert "Theorem 10" in capsys.readouterr().out

    def test_experiments_with_jobs_flag(self, capsys):
        rc = main(["experiments", "E5", "--jobs", "2"])
        assert rc == 0
        assert "Theorem 2" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_json(self, capsys):
        rc = main(["sweep", "--algorithm", "ranking", "--graph", "gnp:50,0.08",
                   "--weights", "uniform:1,20", "--seeds", "5", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 5
        assert payload["ok"] == 5
        assert payload["failed"] == 0
        assert payload["mean_rounds"] >= 1.0

    def test_sweep_cold_then_warm_cache(self, capsys, tmp_path):
        argv = ["sweep", "--algorithm", "ranking", "--graph", "cycle:20",
                "--weights", "unit", "--seeds", "4", "--jobs", "2",
                "--cache", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cached"] == 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cached"] == 4
        assert warm["total_bits"] == cold["total_bits"]
        assert warm["mean_weight"] == cold["mean_weight"]


class TestVerifyCommand:
    def test_verify_small_uses_exact(self, capsys):
        rc = main(["verify", "--algorithm", "thm1", "--graph", "gnp:35,0.15",
                   "--weights", "uniform:1,10", "--eps", "0.5", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact OPT" in out
        assert "HOLDS" in out

    def test_verify_large_falls_back_to_fraction(self, capsys):
        rc = main(["verify", "--algorithm", "thm2", "--graph", "gnp:150,0.05",
                   "--weights", "integers:50", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "too large for exact" in out
        assert "HOLDS" in out

    def test_verify_exact_limit_flag(self, capsys):
        rc = main(["verify", "--algorithm", "thm8", "--graph", "gnp:35,0.15",
                   "--weights", "unit", "--exact-limit", "10"])
        assert rc == 0
        assert "too large" in capsys.readouterr().out

    def test_experiments_json_dir(self, capsys, tmp_path):
        rc = main(["experiments", "E3", "--json-dir", str(tmp_path)])
        assert rc == 0
        saved = (tmp_path / "E3.json").read_text()
        from repro.bench import ExperimentReport

        rep = ExperimentReport.from_json(saved)
        assert rep.experiment == "E3"
        assert rep.findings["stack_property_holds"]

    def test_verify_reports_violation_with_exit_code(self, capsys, tmp_path):
        # One-round ranking ignores weights; on a heavy-hub star it misses
        # the hub for seed 0 and cannot meet a (1+eps)Δ certificate.
        from repro.graphs import star
        from repro.graphs.io import save

        g = star(5).with_weights({0: 1000.0, **{i: 1.0 for i in range(1, 6)}})
        p = tmp_path / "hub.wg"
        save(g, p)
        rc = main(["verify", "--algorithm", "ranking", "--graph", f"file:{p}",
                   "--weights", "keep", "--eps", "0.5", "--seed", "0"])
        assert rc == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestObservabilityCli:
    def _record(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        rc = main(["run", "--algorithm", "thm2", "--graph", "gnp:30,0.12",
                   "--weights", "uniform:1,20", "--seed", "3",
                   "--record", str(path), "--json"])
        assert rc == 0
        capsys.readouterr()
        return path

    def test_run_record_writes_meta_events_result(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        types = [r["type"] for r in records]
        assert types[0] == "meta"
        assert types[-1] == "result"
        assert "event" in types and "round_profile" in types
        assert records[-1]["metrics"]["span"]["name"] == "theorem2"

    def test_run_phases_prints_span_table(self, capsys):
        rc = main(["run", "--algorithm", "thm1", "--graph", "gnp:25,0.15",
                   "--weights", "uniform:1,10", "--seed", "2", "--phases"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "theorem1" in out
        assert "boost" in out
        assert "share" in out

    def test_run_phases_without_span(self, capsys):
        rc = main(["run", "--algorithm", "mis-luby", "--graph", "cycle:12",
                   "--weights", "unit", "--phases"])
        assert rc == 0
        # MIS black boxes carry a single leaf span, so a table still prints.
        assert "mis[" in capsys.readouterr().out

    def test_inspect_phases(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        rc = main(["inspect", str(path), "--format", "phases"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "theorem2" in out and "boost" in out

    def test_inspect_timeline(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        rc = main(["inspect", str(path), "--format", "timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "round 0:" in out and "msgs" in out

    def test_inspect_chrome_trace_sums_to_rounds(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        result = [json.loads(ln) for ln in path.read_text().splitlines()][-1]
        rc = main(["inspect", str(path), "--format", "chrome-trace"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        root = doc["traceEvents"][0]
        assert root["dur"] == result["metrics"]["rounds"]
        # Depth-1 sequential slices tile the root exactly.
        depth1 = [e for e in doc["traceEvents"] if e["tid"] == 1]
        assert max(e["ts"] + e["dur"] for e in depth1) == root["dur"]

    def test_inspect_missing_file_and_empty(self, tmp_path):
        with pytest.raises((SystemExit, OSError)):
            main(["inspect", str(tmp_path / "nope.jsonl")])
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="no records"):
            main(["inspect", str(empty)])

    def test_sweep_emit_metrics_round_trip(self, tmp_path, capsys):
        emit = tmp_path / "jobs.jsonl"
        rc = main(["sweep", "--algorithm", "ranking", "--graph", "gnp:40,0.1",
                   "--weights", "uniform:1,20", "--seeds", "5", "--jobs", "2",
                   "--emit-metrics", str(emit), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        records = [json.loads(ln) for ln in emit.read_text().splitlines()]
        assert len(records) == 5
        assert all(r["type"] == "job" for r in records)
        assert all("fingerprint" in r["graph"] for r in records)

        rc = main(["inspect", str(emit), "--format", "sweep", "--json"])
        assert rc == 0
        cells = json.loads(capsys.readouterr().out)
        assert len(cells) == 1
        assert cells[0]["jobs"] == 5
        assert cells[0]["p50_rounds"] >= 1.0
        assert summary["cells"][0]["p50_bits"] == cells[0]["p50_bits"]

    def test_experiments_emit_metrics(self, tmp_path, capsys):
        emit = tmp_path / "e5.jsonl"
        rc = main(["experiments", "E5", "--emit-metrics", str(emit)])
        assert rc == 0
        capsys.readouterr()
        records = [json.loads(ln) for ln in emit.read_text().splitlines()]
        assert records
        assert all(r["type"] == "job" for r in records)
        labels = {r["label"] for r in records}
        assert len(labels) >= 1


class TestFaultCli:
    def test_run_with_loss_reports_fault_counters(self, capsys):
        rc = main(["run", "--algorithm", "mis-luby", "--graph", "gnp:30,0.1",
                   "--weights", "unit", "--seed", "4", "--loss", "0.2",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"] == "loss(0.2)"
        assert payload["fault_dropped_messages"] > 0
        # Under faults independence is reported, not asserted.
        assert payload["independent"] in (True, False)

    def test_run_with_crash_spec(self, capsys):
        rc = main(["run", "--algorithm", "mis-luby", "--graph", "cycle:12",
                   "--weights", "unit", "--seed", "0", "--crash", "2@1",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashed_nodes"] == 1

    def test_run_rejects_bad_fault_flag(self):
        with pytest.raises(SystemExit, match="bad fault flag"):
            main(["run", "--algorithm", "mis-luby", "--graph", "cycle:12",
                  "--weights", "unit", "--loss", "1.5"])

    def test_run_record_carries_fault_meta(self, tmp_path, capsys):
        path = tmp_path / "faulty.jsonl"
        rc = main(["run", "--algorithm", "thm2", "--graph", "gnp:25,0.12",
                   "--weights", "uniform:1,20", "--seed", "3",
                   "--loss", "0.15", "--record", str(path), "--json"])
        assert rc == 0
        capsys.readouterr()
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert records[0]["faults"] == "loss(0.15)"
        kinds = {r.get("kind") for r in records if r.get("type") == "event"}
        assert "fault_drop" in kinds

    def test_inspect_phases_shows_fault_columns(self, tmp_path, capsys):
        path = tmp_path / "faulty.jsonl"
        rc = main(["run", "--algorithm", "thm2", "--graph", "gnp:25,0.12",
                   "--weights", "uniform:1,20", "--seed", "3",
                   "--loss", "0.15", "--record", str(path), "--json"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["inspect", str(path), "--format", "phases"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lost" in out and "theorem2" in out

    def test_resilience_table_and_exit_code(self, capsys):
        rc = main(["resilience", "--algorithm", "mis-luby",
                   "--graph", "gnp:25,0.1", "--weights", "uniform:1,10",
                   "--loss", "0,0.1", "--trials", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loss(0.1)" in out and "retention" in out

    def test_resilience_emit_metrics_feeds_inspect_sweep(self, tmp_path,
                                                         capsys):
        emit = tmp_path / "res.jsonl"
        rc = main(["resilience", "--algorithm", "mis-luby",
                   "--graph", "gnp:25,0.1", "--weights", "uniform:1,10",
                   "--loss", "0,0.1", "--trials", "2", "--seed", "1",
                   "--emit-metrics", str(emit), "--json"])
        assert rc == 0
        cells_doc = json.loads(capsys.readouterr().out)
        assert [c["plan"] for c in cells_doc] == ["none", "loss(0.1)"]

        records = [json.loads(ln) for ln in emit.read_text().splitlines()]
        assert sum(r["type"] == "job" for r in records) == 4
        assert sum(r["type"] == "resilience_cell" for r in records) == 2

        # The per-job stream aggregates into one sweep cell per
        # (algorithm, fault plan): the plan is part of the identity.
        rc = main(["inspect", str(emit), "--format", "sweep", "--json"])
        assert rc == 0
        cells = json.loads(capsys.readouterr().out)
        names = {c["algorithm"] for c in cells}
        assert names == {"mis-luby", "mis-luby+loss(0.1)"}
        assert all(c["jobs"] == 2 for c in cells)

    def test_resilience_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithms"):
            main(["resilience", "--algorithm", "nope", "--loss", "0,0.1",
                  "--trials", "1"])

    def test_inspect_truncated_jsonl_fails_gracefully(self, tmp_path):
        bad = tmp_path / "truncated.jsonl"
        bad.write_text('{"type": "job", "ok": true}\n{"type": "jo')
        with pytest.raises(SystemExit, match="malformed JSONL"):
            main(["inspect", str(bad), "--format", "sweep"])

    def test_inspect_non_object_record_fails_gracefully(self, tmp_path):
        bad = tmp_path / "list.jsonl"
        bad.write_text("[1, 2, 3]\n")
        with pytest.raises(SystemExit, match="expected a JSON object"):
            main(["inspect", str(bad), "--format", "sweep"])

    def test_run_reports_algorithm_failure_under_faults(self, capsys):
        # Delay makes thm2's phase-typed sparsify inbox mix payload
        # types; the CLI reports the failure instead of tracebacking.
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "thm2", "--graph", "gnp:80,0.06",
                  "--weights", "integers:50", "--seed", "5",
                  "--loss", "0.1", "--delay", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["faults"] == "loss(0.1)+delay(1)"
        assert "TypeError" in payload["error"]


class TestBench:
    def test_bench_tiny_measures_and_writes(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main(["bench", "--tiny", "--repeats", "1",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "gnp60/thm8" in text and "gnp60/coloring" in text
        import json as _json

        doc = _json.loads(out.read_text())
        assert doc["matrix"] == "tiny"
        assert len(doc["cells"]) == 4

    def test_bench_gate_passes_against_itself(self, capsys, tmp_path):
        from repro.cli import main

        base = tmp_path / "base.json"
        assert main(["bench", "--tiny", "--repeats", "1",
                     "--out", str(base)]) == 0
        capsys.readouterr()
        rc = main(["bench", "--tiny", "--repeats", "1",
                   "--baseline", str(base), "--tolerance", "10"])
        assert rc == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_bench_missing_baseline_skips_gate(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(["bench", "--tiny", "--repeats", "1",
                   "--baseline", str(tmp_path / "nope.json")])
        assert rc == 0
        assert "gate skipped" in capsys.readouterr().out


class TestAlgorithmsCommand:
    def test_lists_registry_with_signatures(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "thm2(seed=None, policy=None, eps=0.5, **params)" in out
        assert "mis-luby(" in out

    def test_json_output_matches_registry(self, capsys):
        import json as _json

        from repro.cli import main
        from repro.registry import algorithm_registry

        assert main(["algorithms", "--json"]) == 0
        entries = _json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} == set(algorithm_registry())
